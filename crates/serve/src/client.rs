//! A minimal blocking HTTP/1.1 client for the integration-test and
//! bench harnesses.
//!
//! Hand-rolled for the same reason the server is: the workspace is
//! hermetic. It speaks exactly the subset the server emits —
//! `Content-Length`-framed responses with a handful of headers — and
//! supports keep-alive so the bench harness can measure per-request
//! latency without paying a TCP handshake each time.

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// One parsed response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClientResponse {
    /// The status code from the status line.
    pub status: u16,
    /// Headers in arrival order, names lowercased.
    pub headers: Vec<(String, String)>,
    /// The (possibly empty) body.
    pub body: Vec<u8>,
}

impl ClientResponse {
    /// The first header with this (case-insensitive) name.
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, v)| v.as_str())
    }

    /// The body as UTF-8 (panics on invalid bytes — fine for tests).
    pub fn text(&self) -> &str {
        std::str::from_utf8(&self.body).expect("response body was not utf-8")
    }
}

/// A keep-alive connection to one server.
#[derive(Debug)]
pub struct Client {
    stream: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Client {
    /// The default read timeout: generous, so a hung server fails a
    /// test instead of wedging it. Chaos suites that need tight
    /// deadlines use [`Client::connect_with_timeout`] with the
    /// server's advertised
    /// [`crate::server::ServeConfig::client_timeout`] instead.
    pub const DEFAULT_READ_TIMEOUT: Duration = Duration::from_secs(30);

    /// Connects to `addr` with [`Client::DEFAULT_READ_TIMEOUT`].
    ///
    /// # Errors
    ///
    /// Connection or socket-option errors.
    pub fn connect(addr: SocketAddr) -> std::io::Result<Client> {
        Client::connect_with_timeout(addr, Client::DEFAULT_READ_TIMEOUT)
    }

    /// Connects to `addr` with an explicit read timeout — typically
    /// the server's advertised
    /// [`crate::server::ServeConfig::client_timeout`], so client
    /// patience tracks the server's own stall deadlines instead of a
    /// hard-coded constant.
    ///
    /// # Errors
    ///
    /// Connection or socket-option errors.
    pub fn connect_with_timeout(addr: SocketAddr, timeout: Duration) -> std::io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_read_timeout(Some(timeout))?;
        stream.set_nodelay(true)?;
        let reader = BufReader::new(stream.try_clone()?);
        Ok(Client { stream, reader })
    }

    /// Sends one request and reads one response on the persistent
    /// connection.
    ///
    /// # Errors
    ///
    /// I/O errors, or `InvalidData` when the response violates the
    /// server's framing subset.
    pub fn request(
        &mut self,
        method: &str,
        target: &str,
        headers: &[(&str, &str)],
        body: &[u8],
    ) -> std::io::Result<ClientResponse> {
        let mut req = format!("{method} {target} HTTP/1.1\r\nHost: synthattr\r\n");
        for (name, value) in headers {
            req.push_str(&format!("{name}: {value}\r\n"));
        }
        req.push_str(&format!("Content-Length: {}\r\n\r\n", body.len()));
        self.stream.write_all(req.as_bytes())?;
        self.stream.write_all(body)?;
        self.stream.flush()?;
        read_response(&mut self.reader)
    }
}

/// One-shot request on a fresh connection (the common test idiom).
///
/// # Errors
///
/// Same as [`Client::request`].
pub fn request(
    addr: SocketAddr,
    method: &str,
    target: &str,
    headers: &[(&str, &str)],
    body: &[u8],
) -> std::io::Result<ClientResponse> {
    Client::connect(addr)?.request(method, target, headers, body)
}

fn invalid(what: &str) -> std::io::Error {
    std::io::Error::new(std::io::ErrorKind::InvalidData, what.to_string())
}

fn read_line(reader: &mut impl BufRead) -> std::io::Result<String> {
    let mut line = String::new();
    if reader.read_line(&mut line)? == 0 {
        return Err(invalid("connection closed mid-response"));
    }
    while line.ends_with('\n') || line.ends_with('\r') {
        line.pop();
    }
    Ok(line)
}

fn read_response(reader: &mut impl BufRead) -> std::io::Result<ClientResponse> {
    let status_line = read_line(reader)?;
    let mut parts = status_line.splitn(3, ' ');
    let version = parts.next().unwrap_or_default();
    if !version.starts_with("HTTP/1.") {
        return Err(invalid("bad status line"));
    }
    let status: u16 = parts
        .next()
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| invalid("bad status code"))?;

    let mut headers = Vec::new();
    let mut content_length = 0usize;
    loop {
        let line = read_line(reader)?;
        if line.is_empty() {
            break;
        }
        let (name, value) = line.split_once(':').ok_or_else(|| invalid("bad header"))?;
        let name = name.trim().to_ascii_lowercase();
        let value = value.trim().to_string();
        if name == "content-length" {
            content_length = value.parse().map_err(|_| invalid("bad content-length"))?;
        }
        headers.push((name, value));
    }

    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body)?;
    Ok(ClientResponse {
        status,
        headers,
        body,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn parses_a_framed_response() {
        let raw = b"HTTP/1.1 200 OK\r\nContent-Type: application/json\r\nContent-Length: 2\r\nConnection: keep-alive\r\n\r\n{}";
        let resp = read_response(&mut Cursor::new(&raw[..])).unwrap();
        assert_eq!(resp.status, 200);
        assert_eq!(resp.header("content-type"), Some("application/json"));
        assert_eq!(resp.text(), "{}");
    }

    #[test]
    fn rejects_garbage_status_lines() {
        let raw = b"SMTP nope\r\n\r\n";
        assert!(read_response(&mut Cursor::new(&raw[..])).is_err());
    }

    #[test]
    fn truncated_bodies_error_instead_of_hanging() {
        let raw = b"HTTP/1.1 200 OK\r\nContent-Length: 10\r\n\r\nshort";
        assert!(read_response(&mut Cursor::new(&raw[..])).is_err());
    }
}
