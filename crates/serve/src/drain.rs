//! Graceful-drain bookkeeping: one flag, one deadline, a few
//! counters, and the statistics [`crate::server::RunningServer`]
//! hands back from `shutdown()`.
//!
//! Like [`crate::conn`], the core is clock-explicit — `begin`,
//! `force_deadline_passed`, and friends take the server's monotonic
//! `now_ms` — so drain arithmetic is unit-testable without threads.
//! The protocol it coordinates (implemented in `server.rs`):
//!
//! 1. `begin` flips the flag; `/healthz` starts reporting
//!    `"drain_state":"draining"`.
//! 2. The acceptor stops accepting and closes the work queue.
//! 3. Workers finish in-flight requests: every complete buffered
//!    request on every remaining connection is answered, the final
//!    response per connection carries `Connection: close`.
//! 4. Past `begin + force_deadline_ms`, stragglers are force-closed
//!    so shutdown always terminates.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

/// Shared drain state. Constructed once per server.
#[derive(Debug)]
pub struct DrainState {
    draining: AtomicBool,
    /// `now_ms` when the drain began (valid once `draining`).
    began_ms: AtomicU64,
    /// Hard deadline after `began_ms` for force-closing stragglers.
    force_deadline_ms: u64,
    /// Connections retired during the drain (gracefully or not).
    drained_connections: AtomicU64,
    /// Responses written to in-flight requests during the drain.
    final_responses: AtomicU64,
    /// Connections force-closed at the hard deadline.
    forced_closes: AtomicU64,
}

impl DrainState {
    /// A fresh, not-draining state with the given hard deadline.
    pub fn new(force_deadline_ms: u64) -> Self {
        DrainState {
            draining: AtomicBool::new(false),
            began_ms: AtomicU64::new(0),
            force_deadline_ms,
            drained_connections: AtomicU64::new(0),
            final_responses: AtomicU64::new(0),
            forced_closes: AtomicU64::new(0),
        }
    }

    /// Starts the drain at `now_ms`. Idempotent: the first call wins
    /// and anchors the hard deadline.
    pub fn begin(&self, now_ms: u64) {
        if !self.draining.swap(true, Ordering::SeqCst) {
            self.began_ms.store(now_ms, Ordering::SeqCst);
        }
    }

    /// Whether a drain is in progress.
    pub fn is_draining(&self) -> bool {
        self.draining.load(Ordering::SeqCst)
    }

    /// The `/healthz` `drain_state` value.
    pub fn state_name(&self) -> &'static str {
        if self.is_draining() {
            "draining"
        } else {
            "active"
        }
    }

    /// Whether the hard deadline has passed (never true before
    /// `begin`).
    pub fn force_deadline_passed(&self, now_ms: u64) -> bool {
        self.is_draining()
            && now_ms.saturating_sub(self.began_ms.load(Ordering::SeqCst)) >= self.force_deadline_ms
    }

    /// Milliseconds left until the hard deadline (0 once passed).
    pub fn deadline_remaining_ms(&self, now_ms: u64) -> u64 {
        if !self.is_draining() {
            return self.force_deadline_ms;
        }
        let elapsed = now_ms.saturating_sub(self.began_ms.load(Ordering::SeqCst));
        self.force_deadline_ms.saturating_sub(elapsed)
    }

    /// One connection retired during the drain.
    pub fn note_drained(&self) {
        self.drained_connections.fetch_add(1, Ordering::Relaxed);
    }

    /// `n` in-flight requests answered during the drain.
    pub fn note_final_responses(&self, n: u64) {
        self.final_responses.fetch_add(n, Ordering::Relaxed);
    }

    /// One straggler force-closed at the hard deadline.
    pub fn note_forced(&self) {
        self.forced_closes.fetch_add(1, Ordering::Relaxed);
    }

    /// The statistics snapshot `shutdown()` returns.
    pub fn stats(&self, drain_ms: u64) -> DrainStats {
        let forced = self.forced_closes.load(Ordering::Relaxed);
        DrainStats {
            drained_connections: self.drained_connections.load(Ordering::Relaxed),
            final_responses: self.final_responses.load(Ordering::Relaxed),
            forced_closes: forced,
            drain_ms,
            clean: forced == 0,
        }
    }
}

/// What `shutdown()` reports about the drain it performed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DrainStats {
    /// Connections retired during the drain.
    pub drained_connections: u64,
    /// In-flight requests answered after the drain began.
    pub final_responses: u64,
    /// Connections force-closed at the hard deadline.
    pub forced_closes: u64,
    /// Wall-clock milliseconds the shutdown took end to end.
    pub drain_ms: u64,
    /// `true` when nothing had to be force-closed: every in-flight
    /// request got its response.
    pub clean: bool,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn begin_is_idempotent_and_anchors_the_deadline_once() {
        let d = DrainState::new(100);
        assert!(!d.is_draining());
        assert_eq!(d.state_name(), "active");
        assert!(!d.force_deadline_passed(1_000_000), "never before begin");

        d.begin(50);
        assert!(d.is_draining());
        assert_eq!(d.state_name(), "draining");
        // A second begin at a later clock must not move the anchor.
        d.begin(140);
        assert!(!d.force_deadline_passed(149), "anchored at 50, not 140");
        assert!(d.force_deadline_passed(150));
        assert_eq!(d.deadline_remaining_ms(100), 50);
        assert_eq!(d.deadline_remaining_ms(999), 0);
    }

    #[test]
    fn stats_reflect_the_counters_and_cleanliness() {
        let d = DrainState::new(100);
        d.begin(0);
        d.note_drained();
        d.note_drained();
        d.note_final_responses(7);
        let clean = d.stats(42);
        assert_eq!(clean.drained_connections, 2);
        assert_eq!(clean.final_responses, 7);
        assert_eq!(clean.forced_closes, 0);
        assert_eq!(clean.drain_ms, 42);
        assert!(clean.clean, "no forced closes → clean drain");

        d.note_forced();
        assert!(!d.stats(43).clean, "a forced close taints the drain");
    }
}
