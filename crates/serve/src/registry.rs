//! The per-year model registry.
//!
//! Training a year's oracle is the expensive part of serving (corpus
//! generation + forest training); the registry does it **at most once
//! per year** through [`synthattr_core::pipeline::year_oracle`] — the
//! exact code path the offline pipeline trains through, so a served
//! verdict is byte-identical to the offline one — and shares the
//! result `Arc`-style across every worker thread. Slots are
//! `OnceLock`s keyed by year: the first request for a year trains
//! while concurrent requests for the same year block on the same slot
//! (no duplicate training), and requests for other years proceed
//! independently.

use std::collections::BTreeMap;
use std::sync::{Arc, OnceLock};
use synthattr_core::config::ExperimentConfig;
use synthattr_core::pipeline::year_oracle;
use synthattr_core::{AuthorshipModel, PipelineError};
use synthattr_gpt::pool::YearPool;

/// One year's trained serving state: the oracle forest plus the
/// calibrated transformation pool (for `/transform`).
#[derive(Debug)]
pub struct YearModel {
    /// The experiment year.
    pub year: u32,
    /// The trained non-ChatGPT oracle.
    pub model: AuthorshipModel,
    /// The year's calibrated LLM style pool.
    pub pool: YearPool,
}

/// Train-once, share-everywhere storage for [`YearModel`]s.
#[derive(Debug)]
pub struct ModelRegistry {
    config: ExperimentConfig,
    slots: BTreeMap<u32, OnceLock<Arc<YearModel>>>,
}

impl ModelRegistry {
    /// A registry serving exactly `years`, all trained lazily from
    /// `config`.
    ///
    /// # Errors
    ///
    /// [`PipelineError::UnsupportedYear`] if any year is outside the
    /// paper's 2017–2019 range — checked here so that [`get`] can
    /// treat an in-registry year as always trainable.
    ///
    /// [`get`]: ModelRegistry::get
    pub fn new(config: ExperimentConfig, years: &[u32]) -> Result<Self, PipelineError> {
        let mut slots = BTreeMap::new();
        for &year in years {
            if !(2017..=2019).contains(&year) {
                return Err(PipelineError::UnsupportedYear(year));
            }
            slots.insert(year, OnceLock::new());
        }
        Ok(ModelRegistry { config, slots })
    }

    /// The configuration models are trained from.
    pub fn config(&self) -> &ExperimentConfig {
        &self.config
    }

    /// Every year this registry serves.
    pub fn years(&self) -> Vec<u32> {
        self.slots.keys().copied().collect()
    }

    /// Years whose model is already trained (for `/healthz`).
    pub fn loaded(&self) -> Vec<u32> {
        self.slots
            .iter()
            .filter(|(_, slot)| slot.get().is_some())
            .map(|(&y, _)| y)
            .collect()
    }

    /// The model for `year`, training it on first use. `None` if the
    /// year is not in the registry (the caller's 404).
    ///
    /// # Panics
    ///
    /// Panics if training itself fails, which for an in-range year
    /// means the corpus generator produced unparseable code — an
    /// internal bug, not a client condition.
    pub fn get(&self, year: u32) -> Option<Arc<YearModel>> {
        let slot = self.slots.get(&year)?;
        let model = slot.get_or_init(|| {
            let model = year_oracle(year, &self.config)
                .unwrap_or_else(|e| panic!("registry training failed for {year}: {e}"));
            Arc::new(YearModel {
                year,
                model,
                pool: YearPool::calibrated(year, self.config.seed),
            })
        });
        Some(Arc::clone(model))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn smoke_registry() -> ModelRegistry {
        ModelRegistry::new(ExperimentConfig::smoke(), &[2017, 2018]).unwrap()
    }

    #[test]
    fn rejects_out_of_range_years_at_construction() {
        let err = ModelRegistry::new(ExperimentConfig::smoke(), &[2018, 2042]).unwrap_err();
        assert_eq!(err, PipelineError::UnsupportedYear(2042));
    }

    #[test]
    fn trains_once_and_shares_the_arc() {
        let reg = smoke_registry();
        assert!(reg.loaded().is_empty(), "lazy: nothing trained up front");
        let a = reg.get(2018).unwrap();
        let b = reg.get(2018).unwrap();
        assert!(Arc::ptr_eq(&a, &b), "repeat gets share one model");
        assert_eq!(reg.loaded(), vec![2018]);
        assert_eq!(reg.years(), vec![2017, 2018]);
    }

    #[test]
    fn unknown_year_is_none_not_a_panic() {
        assert!(smoke_registry().get(2019).is_none());
    }

    #[test]
    fn concurrent_gets_race_to_one_model() {
        let reg = smoke_registry();
        let models: Vec<Arc<YearModel>> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..4).map(|_| s.spawn(|| reg.get(2017).unwrap())).collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        for m in &models[1..] {
            assert!(Arc::ptr_eq(&models[0], m));
        }
    }
}
