//! The attribution server: listener, worker pool, routing, handlers.
//!
//! Threading is the classic accept/worker split built on
//! [`synthattr_util::pool`]: the acceptor thread pushes accepted
//! connections into a blocking [`WorkQueue`], and `workers` threads
//! (resolved by the same `SYNTHATTR_WORKERS` machinery as the offline
//! pipeline) pop and serve them — keep-alive and pipelining included.
//! All request handling is pure of the transport
//! ([`ServerState::handle_request`] maps a parsed request to a
//! response), which is what lets the unit suite drive every route
//! without a socket.
//!
//! Endpoints:
//!
//! * `POST /attribute?year=Y` — body: raw C++ source (`text/plain`);
//!   response: the oracle's ranked author verdict with probabilities.
//! * `POST /transform?year=Y&mode=nct|ct&steps=N&seed=S` — body: seed
//!   source; response: the simulated ChatGPT transformation chain.
//! * `GET /healthz` — circuit-breaker state, cache hit/eviction rates,
//!   registry load state, batching and traffic counters.
//!
//! Determinism: attribution is a pure function of (year, body) — the
//! registry trains through the offline pipeline's code path, feature
//! extraction is cached but pure, and batching only groups pure
//! per-row predictions — so responses are byte-identical across
//! worker counts, client counts, and restarts.

use std::io::{BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use synthattr_core::config::ExperimentConfig;
use synthattr_core::ArtifactCache;
use synthattr_faults::{BreakerConfig, CircuitBreaker};
use synthattr_gen::corpus::Origin;
use synthattr_gpt::chain::{try_run_ct, try_run_nct};
use synthattr_gpt::transform::Transformer;
use synthattr_gpt::GptError;
use synthattr_util::{pool, pool::WorkQueue, Pcg64};

use crate::batch::{BatchConfig, MicroBatcher};
use crate::http::{read_request, Limits, Request, Response};
use crate::json;
use crate::limit::{RateConfig, RateLimiter};
use crate::registry::ModelRegistry;

/// Upper bound on `steps` per `/transform` call, so one request cannot
/// monopolize a worker.
const MAX_TRANSFORM_STEPS: usize = 64;

/// Server tuning.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Experiment configuration models are trained from (seed, scale,
    /// forest, features) — the same struct the offline pipeline takes.
    pub experiment: ExperimentConfig,
    /// Years the registry serves.
    pub years: Vec<u32>,
    /// Worker thread count override (`None` = `SYNTHATTR_WORKERS` /
    /// available parallelism).
    pub workers: Option<usize>,
    /// Capacity of the shared artifact LRU.
    pub cache_capacity: usize,
    /// Micro-batching policy for `/attribute`.
    pub batch: BatchConfig,
    /// Per-client rate limits (`None` disables limiting).
    pub rate: Option<RateConfig>,
    /// Circuit-breaker tuning for the transform engine.
    pub breaker: BreakerConfig,
    /// Socket read timeout, ms — the slow-loris bound.
    pub read_timeout_ms: u64,
    /// HTTP input limits.
    pub limits: Limits,
    /// Train every registry year at bind time instead of lazily.
    pub preload: bool,
}

impl ServeConfig {
    /// Smoke-scale serving config: small corpus and forest, all three
    /// years, defaults everywhere else.
    pub fn smoke() -> Self {
        ServeConfig {
            experiment: ExperimentConfig::smoke(),
            years: vec![2017, 2018, 2019],
            workers: None,
            cache_capacity: 256,
            batch: BatchConfig::default(),
            rate: Some(RateConfig::default()),
            breaker: BreakerConfig::default(),
            read_timeout_ms: 2_000,
            limits: Limits::default(),
            preload: false,
        }
    }
}

/// Per-route traffic counters (relaxed atomics; observability only).
#[derive(Debug, Default)]
pub struct ServeStats {
    /// Requests routed, any endpoint.
    pub requests: AtomicU64,
    /// `/attribute` requests served 200.
    pub attribute_ok: AtomicU64,
    /// `/transform` requests served 200.
    pub transform_ok: AtomicU64,
    /// `/healthz` reads.
    pub healthz: AtomicU64,
    /// Requests refused with 429.
    pub rate_limited: AtomicU64,
    /// 4xx responses (including parse rejections).
    pub client_errors: AtomicU64,
    /// 5xx responses.
    pub server_errors: AtomicU64,
    /// Handler panics caught and converted to 500s.
    pub panics: AtomicU64,
}

/// Everything the workers share. Handlers live here, transport-free.
#[derive(Debug)]
pub struct ServerState {
    config: ServeConfig,
    registry: ModelRegistry,
    batchers: Mutex<std::collections::HashMap<u32, Arc<MicroBatcher>>>,
    cache: Mutex<ArtifactCache>,
    limiter: Option<Mutex<RateLimiter>>,
    breaker: Mutex<CircuitBreaker>,
    stats: ServeStats,
    started: Instant,
    shutdown: AtomicBool,
}

impl ServerState {
    /// Builds the shared state (trains nothing unless `preload`).
    ///
    /// # Errors
    ///
    /// [`synthattr_core::PipelineError::UnsupportedYear`] via the
    /// registry if `config.years` leaves the paper's 2017–2019 range.
    pub fn new(config: ServeConfig) -> Result<Self, synthattr_core::PipelineError> {
        let registry = ModelRegistry::new(config.experiment.clone(), &config.years)?;
        let state = ServerState {
            cache: Mutex::new(ArtifactCache::bounded(config.cache_capacity)),
            limiter: config.rate.clone().map(|r| Mutex::new(RateLimiter::new(r))),
            breaker: Mutex::new(CircuitBreaker::new(config.breaker.clone())),
            batchers: Mutex::new(std::collections::HashMap::new()),
            stats: ServeStats::default(),
            started: Instant::now(),
            shutdown: AtomicBool::new(false),
            registry,
            config,
        };
        if state.config.preload {
            for year in state.registry.years() {
                state.registry.get(year);
            }
        }
        Ok(state)
    }

    /// The server configuration.
    pub fn config(&self) -> &ServeConfig {
        &self.config
    }

    /// Traffic counters.
    pub fn stats(&self) -> &ServeStats {
        &self.stats
    }

    /// The transform-engine circuit breaker (exposed so operators and
    /// the regression suite can inspect or trip it directly).
    pub fn breaker(&self) -> MutexGuard<'_, CircuitBreaker> {
        self.breaker.lock().expect("breaker poisoned")
    }

    /// Milliseconds since the server started — the limiter's clock.
    fn now_ms(&self) -> u64 {
        self.started.elapsed().as_millis() as u64
    }

    /// The per-year batcher, created on first use.
    fn batcher(&self, year: u32) -> Option<Arc<MicroBatcher>> {
        let model = self.registry.get(year)?;
        let mut batchers = self.batchers.lock().expect("batchers poisoned");
        Some(Arc::clone(batchers.entry(year).or_insert_with(|| {
            Arc::new(MicroBatcher::new(model, self.config.batch.clone()))
        })))
    }

    /// Routes one parsed request. Pure of the transport: no socket in
    /// sight, which is how the unit suite drives every path.
    pub fn handle_request(&self, req: &Request) -> Response {
        self.stats.requests.fetch_add(1, Ordering::Relaxed);
        let response = match (req.method.as_str(), req.path.as_str()) {
            ("POST", "/attribute") => self.rate_limited(req, |s, r| s.attribute(r)),
            ("POST", "/transform") => self.rate_limited(req, |s, r| s.transform(r)),
            ("GET", "/healthz") => self.healthz(),
            (_, "/attribute" | "/transform" | "/healthz") => Response::json(
                405,
                format!("{{\"error\":{}}}", json::string("method not allowed")),
            ),
            _ => Response::json(404, format!("{{\"error\":{}}}", json::string("not found"))),
        };
        match response.status {
            429 => {
                self.stats.rate_limited.fetch_add(1, Ordering::Relaxed);
            }
            s if (400..500).contains(&s) => {
                self.stats.client_errors.fetch_add(1, Ordering::Relaxed);
            }
            s if s >= 500 => {
                self.stats.server_errors.fetch_add(1, Ordering::Relaxed);
            }
            _ => {}
        }
        response
    }

    /// Applies the per-client token bucket before running `handler`.
    fn rate_limited(
        &self,
        req: &Request,
        handler: fn(&ServerState, &Request) -> Response,
    ) -> Response {
        if let Some(limiter) = &self.limiter {
            let client = req.header("x-client-id").unwrap_or("anon");
            let now = self.now_ms();
            if !limiter.lock().expect("limiter poisoned").check(client, now) {
                return Response::json(
                    429,
                    format!("{{\"error\":{}}}", json::string("rate limit exceeded")),
                );
            }
        }
        handler(self, req)
    }

    /// Parses the `year` query parameter and resolves its model.
    fn year_model(&self, req: &Request) -> Result<Arc<crate::registry::YearModel>, Response> {
        let year_text = req.query_param("year").ok_or_else(|| {
            Response::json(
                400,
                format!("{{\"error\":{}}}", json::string("missing year parameter")),
            )
        })?;
        let year: u32 = year_text.parse().map_err(|_| {
            Response::json(
                400,
                format!("{{\"error\":{}}}", json::string("year must be an integer")),
            )
        })?;
        self.registry.get(year).ok_or_else(|| {
            Response::json(
                404,
                format!(
                    "{{\"error\":{},\"years\":{}}}",
                    json::string("year not served"),
                    json::array(self.registry.years().iter().map(|y| y.to_string()))
                ),
            )
        })
    }

    /// `POST /attribute?year=Y` — the body is raw C++ source.
    fn attribute(&self, req: &Request) -> Response {
        let model = match self.year_model(req) {
            Ok(m) => m,
            Err(resp) => return resp,
        };
        let source = match std::str::from_utf8(&req.body) {
            Ok(s) if !s.trim().is_empty() => s,
            Ok(_) => {
                return Response::json(400, format!("{{\"error\":{}}}", json::string("empty body")))
            }
            Err(_) => {
                return Response::json(
                    400,
                    format!(
                        "{{\"error\":{}}}",
                        json::string("body must be utf-8 source")
                    ),
                )
            }
        };

        // Shared LRU: identical sources across requests featurize once.
        // Only extractor-config-independent products plus features are
        // safe to share here; all registry years use one FeatureConfig,
        // and labels are computed from each year's forest below — never
        // from the artifact's per-model label slot.
        let artifact = self.cache.lock().expect("cache poisoned").intern(source);
        let features = match artifact.features(model.model.extractor()) {
            Ok(f) => f.to_vec(),
            Err(e) => {
                return Response::json(
                    422,
                    format!(
                        "{{\"error\":{},\"detail\":{}}}",
                        json::string("source rejected by the frontend"),
                        json::string(&e.to_string())
                    ),
                )
            }
        };

        let batcher = match self.batcher(model.year) {
            Some(b) => b,
            None => {
                return Response::json(
                    500,
                    format!("{{\"error\":{}}}", json::string("registry lost a year")),
                )
            }
        };
        let proba = batcher.submit(features);
        self.stats.attribute_ok.fetch_add(1, Ordering::Relaxed);
        Response::json(200, attribution_body(model.year, &proba))
    }

    /// `POST /transform?year=Y&mode=nct|ct&steps=N&seed=S`.
    fn transform(&self, req: &Request) -> Response {
        let model = match self.year_model(req) {
            Ok(m) => m,
            Err(resp) => return resp,
        };
        let mode = req.query_param("mode").unwrap_or("nct");
        let chaining = match mode {
            "nct" => false,
            "ct" => true,
            _ => {
                return Response::json(
                    400,
                    format!("{{\"error\":{}}}", json::string("mode must be nct or ct")),
                )
            }
        };
        let steps: usize = match req.query_param("steps").unwrap_or("3").parse() {
            Ok(n) if (1..=MAX_TRANSFORM_STEPS).contains(&n) => n,
            _ => {
                return Response::json(
                    400,
                    format!("{{\"error\":{}}}", json::string("steps must be in 1..=64")),
                )
            }
        };
        let seed: u64 = match req.query_param("seed").unwrap_or("0").parse() {
            Ok(s) => s,
            Err(_) => {
                return Response::json(
                    400,
                    format!("{{\"error\":{}}}", json::string("seed must be an integer")),
                )
            }
        };
        let source = match std::str::from_utf8(&req.body) {
            Ok(s) if !s.trim().is_empty() => s,
            _ => {
                return Response::json(
                    400,
                    format!(
                        "{{\"error\":{}}}",
                        json::string("body must be utf-8 source")
                    ),
                )
            }
        };

        // The breaker guards the transform engine. Open = shed load
        // with 503 (reads — /attribute, /healthz — are unaffected).
        if self.breaker().admit().is_err() {
            return Response::json(
                503,
                format!(
                    "{{\"error\":{},\"breaker\":{}}}",
                    json::string("transform engine shedding load"),
                    json::string(self.breaker().state_name())
                ),
            );
        }

        let transformer = Transformer::new(&model.pool);
        let mut rng = Pcg64::seed_from(seed, &["serve-transform", &model.year.to_string(), mode]);
        let run = if chaining {
            try_run_ct(&transformer, source, steps, Origin::Human, &mut rng)
        } else {
            try_run_nct(&transformer, source, steps, Origin::Human, &mut rng)
        };
        match run {
            Ok(samples) => {
                self.breaker().record_success();
                self.stats.transform_ok.fetch_add(1, Ordering::Relaxed);
                let steps_json = json::array(samples.iter().map(|s| {
                    format!(
                        "{{\"step\":{},\"pool\":{},\"source\":{}}}",
                        s.step,
                        s.pool_index,
                        json::string(&s.source)
                    )
                }));
                Response::json(
                    200,
                    format!(
                        "{{\"year\":{},\"mode\":{},\"seed\":{},\"steps\":{}}}",
                        model.year,
                        json::string(mode),
                        seed,
                        steps_json
                    ),
                )
            }
            // A parse rejection is the client's fault, not engine
            // health: it must not feed the breaker.
            Err(GptError::Parse(e)) => Response::json(
                422,
                format!(
                    "{{\"error\":{},\"detail\":{}}}",
                    json::string("seed rejected by the frontend"),
                    json::string(&e.to_string())
                ),
            ),
            Err(e) => {
                self.breaker().record_failure();
                Response::json(
                    500,
                    format!(
                        "{{\"error\":{},\"detail\":{}}}",
                        json::string("transform engine failure"),
                        json::string(&e.to_string())
                    ),
                )
            }
        }
    }

    /// `GET /healthz`. Always 200 — a degraded engine is reported, not
    /// hidden behind an error; reads keep flowing while the breaker
    /// sheds transform load.
    fn healthz(&self) -> Response {
        self.stats.healthz.fetch_add(1, Ordering::Relaxed);
        let breaker = self.breaker();
        let status = if breaker.is_open() { "degraded" } else { "ok" };
        let breaker_json = format!(
            "{{\"state\":{},\"trips\":{}}}",
            json::string(breaker.state_name()),
            breaker.trips()
        );
        drop(breaker);

        let cache = self.cache.lock().expect("cache poisoned");
        let hits = cache.hits();
        let misses = cache.misses();
        let hit_rate = if hits + misses == 0 {
            0.0
        } else {
            hits as f64 / (hits + misses) as f64
        };
        let cache_json = format!(
            "{{\"hits\":{},\"misses\":{},\"evictions\":{},\"entries\":{},\"capacity\":{},\"hit_rate\":{}}}",
            hits,
            misses,
            cache.evictions(),
            cache.len(),
            cache.capacity().unwrap_or(0),
            json::f64(hit_rate)
        );
        drop(cache);

        let (batches, batched_rows, max_batch) = {
            let batchers = self.batchers.lock().expect("batchers poisoned");
            batchers.values().fold((0u64, 0u64, 0u64), |acc, b| {
                let s = b.stats();
                (
                    acc.0 + s.batches.load(Ordering::Relaxed),
                    acc.1 + s.rows.load(Ordering::Relaxed),
                    acc.2.max(s.max_batch_seen.load(Ordering::Relaxed)),
                )
            })
        };
        let (rate_clients, rate_rejected) = match &self.limiter {
            None => (0, 0),
            Some(l) => {
                let l = l.lock().expect("limiter poisoned");
                (l.clients(), l.rejected())
            }
        };
        let s = &self.stats;
        let body = format!(
            "{{\"status\":{},\"uptime_ms\":{},\"years\":{},\"loaded\":{},\"breaker\":{},\"cache\":{},\
             \"batch\":{{\"batches\":{},\"rows\":{},\"max_batch\":{}}},\
             \"rate\":{{\"clients\":{},\"rejected\":{}}},\
             \"requests\":{{\"total\":{},\"attribute_ok\":{},\"transform_ok\":{},\"healthz\":{},\
             \"rate_limited\":{},\"client_errors\":{},\"server_errors\":{},\"panics\":{}}}}}",
            json::string(status),
            self.now_ms(),
            json::array(self.registry.years().iter().map(|y| y.to_string())),
            json::array(self.registry.loaded().iter().map(|y| y.to_string())),
            breaker_json,
            cache_json,
            batches,
            batched_rows,
            max_batch,
            rate_clients,
            rate_rejected,
            s.requests.load(Ordering::Relaxed),
            s.attribute_ok.load(Ordering::Relaxed),
            s.transform_ok.load(Ordering::Relaxed),
            s.healthz.load(Ordering::Relaxed),
            s.rate_limited.load(Ordering::Relaxed),
            s.client_errors.load(Ordering::Relaxed),
            s.server_errors.load(Ordering::Relaxed),
            s.panics.load(Ordering::Relaxed),
        );
        Response::json(200, body)
    }
}

/// Serializes one attribution verdict. Public so the e2e suite can
/// build its expected bytes from an *offline* oracle's probabilities
/// and compare them byte-for-byte against served responses.
pub fn attribution_body(year: u32, proba: &[f32]) -> String {
    // Descending probability; ties break to the lowest label, matching
    // the forest's own argmax, so `label` always equals `ranking[0]`.
    let mut order: Vec<usize> = (0..proba.len()).collect();
    order.sort_by(|&a, &b| {
        proba[b]
            .partial_cmp(&proba[a])
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.cmp(&b))
    });
    let label = order.first().copied().unwrap_or(0);
    let ranking = json::array(
        order
            .iter()
            .take(5)
            .map(|&i| format!("{{\"author\":{},\"p\":{}}}", i, json::f32(proba[i]))),
    );
    format!(
        "{{\"year\":{},\"label\":{},\"ranking\":{},\"probabilities\":{}}}",
        year,
        label,
        ranking,
        json::array(proba.iter().map(|&p| json::f32(p)))
    )
}

/// A bound, not-yet-running server.
#[derive(Debug)]
pub struct Server {
    listener: TcpListener,
    state: Arc<ServerState>,
    workers: usize,
}

impl Server {
    /// Binds `addr` (use port 0 for an ephemeral port) and builds the
    /// shared state.
    ///
    /// # Errors
    ///
    /// Socket errors from [`TcpListener::bind`]; registry
    /// configuration errors surface as `InvalidInput`.
    pub fn bind(addr: &str, config: ServeConfig) -> std::io::Result<Server> {
        let workers = pool::resolve_workers(config.workers);
        let state = ServerState::new(config)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidInput, e.to_string()))?;
        Ok(Server {
            listener: TcpListener::bind(addr)?,
            state: Arc::new(state),
            workers,
        })
    }

    /// The bound address.
    ///
    /// # Errors
    ///
    /// Propagates [`TcpListener::local_addr`].
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// The shared state (stats, breaker, config).
    pub fn state(&self) -> Arc<ServerState> {
        Arc::clone(&self.state)
    }

    /// Runs the accept loop on the calling thread, serving on
    /// `workers` pool threads, until [`RunningServer::shutdown`] (or
    /// a listener error). Normally reached through [`Server::spawn`].
    pub fn run(self) -> std::io::Result<()> {
        let queue: WorkQueue<TcpStream> = WorkQueue::new();
        let state = &self.state;
        let timeout = Duration::from_millis(state.config.read_timeout_ms.max(1));
        let limits = &state.config.limits;
        std::thread::scope(|scope| {
            for _ in 0..self.workers {
                scope.spawn(|| {
                    while let Some(stream) = queue.pop() {
                        // A handler panic must cost one connection,
                        // not the worker: count it and keep serving.
                        let result = catch_unwind(AssertUnwindSafe(|| {
                            serve_connection(state, stream, timeout, limits)
                        }));
                        if result.is_err() {
                            state.stats.panics.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                });
            }
            for stream in self.listener.incoming() {
                if state.shutdown.load(Ordering::SeqCst) {
                    break;
                }
                if let Ok(stream) = stream {
                    queue.push(stream);
                }
            }
            queue.close();
        });
        Ok(())
    }

    /// Starts the server on a background thread and returns a handle
    /// for shutdown.
    ///
    /// # Errors
    ///
    /// Propagates [`Server::local_addr`].
    pub fn spawn(self) -> std::io::Result<RunningServer> {
        let addr = self.local_addr()?;
        let state = self.state();
        let thread = std::thread::spawn(move || self.run());
        Ok(RunningServer {
            addr,
            state,
            thread,
        })
    }
}

/// A live server: address, shared state, and the accept-loop thread.
#[derive(Debug)]
pub struct RunningServer {
    addr: SocketAddr,
    state: Arc<ServerState>,
    thread: JoinHandle<std::io::Result<()>>,
}

impl RunningServer {
    /// The bound address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The shared state (stats, breaker, config).
    pub fn state(&self) -> Arc<ServerState> {
        Arc::clone(&self.state)
    }

    /// Stops accepting, drains the workers, and joins the server
    /// thread.
    pub fn shutdown(self) {
        self.state.shutdown.store(true, Ordering::SeqCst);
        // The accept loop blocks in `incoming()`; a throwaway
        // connection wakes it to observe the flag.
        let _ = TcpStream::connect(self.addr);
        let _ = self.thread.join();
    }
}

/// Serves one connection: keep-alive loop, per-request routing,
/// defensive error mapping.
fn serve_connection(state: &ServerState, stream: TcpStream, timeout: Duration, limits: &Limits) {
    if stream.set_read_timeout(Some(timeout)).is_err() {
        return;
    }
    // Small request/response exchanges stall ~40 ms per round trip
    // under Nagle + delayed ACK; responses are written in one buffer
    // anyway, so just disable coalescing.
    let _ = stream.set_nodelay(true);
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(read_half);
    let mut writer = stream;
    loop {
        match read_request(&mut reader, limits) {
            Ok(None) => return,
            Ok(Some(req)) => {
                let mut response = state.handle_request(&req);
                if !req.keep_alive {
                    response.close = true;
                }
                if response.write_to(&mut writer).is_err() || response.close {
                    return;
                }
            }
            Err(err) => {
                // Closed/Io get no response; everything else maps to
                // its 4xx/5xx, then the connection drops (framing
                // state is unrecoverable after a bad request).
                if err.status() != 0 {
                    state.stats.requests.fetch_add(1, Ordering::Relaxed);
                    state.stats.client_errors.fetch_add(1, Ordering::Relaxed);
                    let _ = Response::from_error(&err).write_to(&mut writer);
                    let _ = writer.flush();
                }
                return;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn single_year_config() -> ServeConfig {
        let mut config = ServeConfig::smoke();
        config.years = vec![2018];
        config.rate = None;
        config
    }

    fn state(config: ServeConfig) -> ServerState {
        ServerState::new(config).unwrap()
    }

    fn req(method: &str, path: &str, query: &[(&str, &str)], body: &str) -> Request {
        Request {
            method: method.to_string(),
            path: path.to_string(),
            query: query
                .iter()
                .map(|(k, v)| (k.to_string(), v.to_string()))
                .collect(),
            headers: Vec::new(),
            body: body.as_bytes().to_vec(),
            keep_alive: true,
        }
    }

    const SOURCE: &str = "int main() { int total = 3; return total; }";

    #[test]
    fn router_maps_unknown_paths_and_methods() {
        let s = state(single_year_config());
        assert_eq!(s.handle_request(&req("GET", "/nope", &[], "")).status, 404);
        assert_eq!(
            s.handle_request(&req("GET", "/attribute", &[], "")).status,
            405,
            "known path, wrong method"
        );
        assert_eq!(
            s.handle_request(&req("POST", "/healthz", &[], "")).status,
            405
        );
        assert_eq!(s.stats().client_errors.load(Ordering::Relaxed), 3);
    }

    #[test]
    fn attribute_validates_year_and_body() {
        let s = state(single_year_config());
        let missing = s.handle_request(&req("POST", "/attribute", &[], SOURCE));
        assert_eq!(missing.status, 400, "missing year");
        let bad = s.handle_request(&req("POST", "/attribute", &[("year", "soon")], SOURCE));
        assert_eq!(bad.status, 400, "non-integer year");
        let unserved = s.handle_request(&req("POST", "/attribute", &[("year", "2019")], SOURCE));
        assert_eq!(unserved.status, 404, "in-range year not in the registry");
        let empty = s.handle_request(&req("POST", "/attribute", &[("year", "2018")], ""));
        assert_eq!(empty.status, 400, "empty body");
        let broken = s.handle_request(&req(
            "POST",
            "/attribute",
            &[("year", "2018")],
            "int main( {",
        ));
        assert_eq!(broken.status, 422, "unparseable source");
    }

    #[test]
    fn attribute_matches_the_offline_oracle_byte_for_byte() {
        let s = state(single_year_config());
        let served = s.handle_request(&req("POST", "/attribute", &[("year", "2018")], SOURCE));
        assert_eq!(served.status, 200);

        let oracle = synthattr_core::year_oracle(2018, &s.config().experiment).unwrap();
        let mut cache = ArtifactCache::new();
        let artifact = cache.intern(SOURCE);
        let features = artifact.features(oracle.extractor()).unwrap();
        let proba = oracle.forest().predict_proba(features);
        let expected = attribution_body(2018, &proba);
        assert_eq!(
            String::from_utf8(served.body).unwrap(),
            expected,
            "served verdict == offline pipeline verdict, byte for byte"
        );
    }

    #[test]
    fn rate_limiter_rejects_the_burst_overflow_with_429() {
        let mut config = single_year_config();
        config.rate = Some(RateConfig {
            burst: 2,
            per_second: 0,
        });
        let s = state(config);
        let attr = || req("POST", "/attribute", &[("year", "2018")], SOURCE);
        assert_eq!(s.handle_request(&attr()).status, 200);
        assert_eq!(s.handle_request(&attr()).status, 200);
        assert_eq!(s.handle_request(&attr()).status, 429, "burst exhausted");
        assert_eq!(s.stats().rate_limited.load(Ordering::Relaxed), 1);
        // A different client identity has its own bucket.
        let mut other = attr();
        other
            .headers
            .push(("x-client-id".to_string(), "fresh".to_string()));
        assert_eq!(s.handle_request(&other).status, 200);
        // /healthz is never rate-limited.
        assert_eq!(
            s.handle_request(&req("GET", "/healthz", &[], "")).status,
            200
        );
    }

    #[test]
    fn healthz_reports_degraded_when_the_breaker_opens_but_reads_still_flow() {
        let s = state(single_year_config());
        let healthy = s.handle_request(&req("GET", "/healthz", &[], ""));
        assert_eq!(healthy.status, 200);
        let text = String::from_utf8(healthy.body).unwrap();
        assert!(text.contains("\"status\":\"ok\""), "healthy body: {text}");

        // Trip the breaker the way real transform failures would.
        for _ in 0..s.config().breaker.failure_threshold {
            s.breaker().record_failure();
        }
        assert!(s.breaker().is_open());

        // Regression: a degraded engine must REPORT degraded, not fail
        // the health read or the attribution path.
        let degraded = s.handle_request(&req("GET", "/healthz", &[], ""));
        assert_eq!(degraded.status, 200, "healthz never errors on degradation");
        let text = String::from_utf8(degraded.body).unwrap();
        assert!(
            text.contains("\"status\":\"degraded\"") && text.contains("\"state\":\"open\""),
            "degraded body: {text}"
        );
        let attributed = s.handle_request(&req("POST", "/attribute", &[("year", "2018")], SOURCE));
        assert_eq!(attributed.status, 200, "reads flow while transforms shed");

        // Transforms shed with 503 while open.
        let shed = s.handle_request(&req("POST", "/transform", &[("year", "2018")], SOURCE));
        assert_eq!(shed.status, 503);
    }

    #[test]
    fn transform_is_deterministic_and_parse_rejects_skip_the_breaker() {
        let s = state(single_year_config());
        let t = || {
            req(
                "POST",
                "/transform",
                &[
                    ("year", "2018"),
                    ("mode", "ct"),
                    ("steps", "2"),
                    ("seed", "7"),
                ],
                SOURCE,
            )
        };
        let first = s.handle_request(&t());
        let second = s.handle_request(&t());
        assert_eq!(first.status, 200);
        assert_eq!(first.body, second.body, "same seed, same chain bytes");

        let trips_before = s.breaker().trips();
        let rejected = s.handle_request(&req(
            "POST",
            "/transform",
            &[("year", "2018")],
            "not c++ at all ~~~",
        ));
        assert_eq!(rejected.status, 422);
        assert_eq!(
            s.breaker().trips(),
            trips_before,
            "client parse errors never count against engine health"
        );

        let bad_mode = s.handle_request(&req(
            "POST",
            "/transform",
            &[("year", "2018"), ("mode", "detox")],
            SOURCE,
        ));
        assert_eq!(bad_mode.status, 400);
        let bad_steps = s.handle_request(&req(
            "POST",
            "/transform",
            &[("year", "2018"), ("steps", "0")],
            SOURCE,
        ));
        assert_eq!(bad_steps.status, 400);
    }

    #[test]
    fn attribution_body_ranks_descending_with_ties_to_the_lowest_label() {
        let body = attribution_body(2017, &[0.25, 0.5, 0.25, 0.0]);
        assert!(
            body.starts_with("{\"year\":2017,\"label\":1,"),
            "argmax wins: {body}"
        );
        let ranked = attribution_body(2019, &[0.4, 0.4, 0.2]);
        assert!(
            ranked.contains("\"label\":0") && ranked.contains("[{\"author\":0,"),
            "ties break to the lowest label, matching the forest: {ranked}"
        );
        assert!(
            ranked.contains("\"probabilities\":[0.4,0.4,0.2]"),
            "full vector serialized: {ranked}"
        );
    }
}
