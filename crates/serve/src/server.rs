//! The attribution server: listener, rotation loop, routing, handlers.
//!
//! Threading is an accept/worker split built on
//! [`synthattr_util::pool`], hardened for hostile connections: the
//! acceptor runs a **non-blocking** accept loop and parks each
//! accepted connection on a blocking [`WorkQueue`]; `workers` threads
//! (resolved by the same `SYNTHATTR_WORKERS` machinery as the offline
//! pipeline) **rotate** over the parked set. A worker pops a
//! connection, reads whatever it has to offer without blocking,
//! serves every complete pipelined request, and *parks the
//! connection back* the moment it stops yielding bytes — so a
//! slow-loris army holds open sockets, never worker threads. Budgets
//! ([`crate::conn::ConnPolicy`]: lifetime idle budget, header/body
//! progress deadlines, max requests per connection) are enforced by
//! the clock-explicit [`crate::conn::ConnGauge`] core; shutdown is a
//! graceful drain ([`crate::drain`]): stop accepting, answer every
//! in-flight request with `Connection: close` on the final response,
//! force-close stragglers only at a hard deadline, and report
//! [`DrainStats`] from [`RunningServer::shutdown`].
//!
//! All request handling stays pure of the transport
//! ([`ServerState::handle_request`] maps a parsed request to a
//! response), which is what lets the unit suite drive every route
//! without a socket.
//!
//! Endpoints:
//!
//! * `POST /attribute?year=Y` — body: raw C++ source (`text/plain`);
//!   response: the oracle's ranked author verdict with probabilities.
//! * `POST /transform?year=Y&mode=nct|ct&steps=N&seed=S` — body: seed
//!   source; response: the simulated ChatGPT transformation chain.
//! * `GET /healthz` — circuit-breaker state, cache hit/eviction rates,
//!   registry load state, batching, traffic, connection gauges,
//!   per-cause close counters, and the drain state.
//!
//! Determinism: attribution is a pure function of (year, body) — the
//! registry trains through the offline pipeline's code path, feature
//! extraction is cached but pure, and batching only groups pure
//! per-row predictions — so responses are byte-identical across
//! worker counts, client counts, rotation schedules, and restarts.

use std::io::{self, Cursor, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use synthattr_core::config::ExperimentConfig;
use synthattr_core::ArtifactCache;
use synthattr_faults::{BreakerConfig, CircuitBreaker};
use synthattr_gen::corpus::Origin;
use synthattr_gpt::chain::{try_run_ct, try_run_nct};
use synthattr_gpt::transform::Transformer;
use synthattr_gpt::GptError;
use synthattr_util::{pool, pool::WorkQueue, Pcg64};

use crate::batch::{BatchConfig, MicroBatcher};
use crate::conn::{CloseCause, ConnCounters, ConnGauge, ConnPolicy, Verdict};
use crate::drain::{DrainState, DrainStats};
use crate::http::{read_request, scan_request, HttpError, Limits, Request, Response, ScanStatus};
use crate::json;
use crate::limit::{RateConfig, RateLimiter};
use crate::registry::ModelRegistry;

/// Upper bound on `steps` per `/transform` call, so one request cannot
/// monopolize a worker.
const MAX_TRANSFORM_STEPS: usize = 64;

/// Server tuning.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Experiment configuration models are trained from (seed, scale,
    /// forest, features) — the same struct the offline pipeline takes.
    pub experiment: ExperimentConfig,
    /// Years the registry serves.
    pub years: Vec<u32>,
    /// Worker thread count override (`None` = `SYNTHATTR_WORKERS` /
    /// available parallelism).
    pub workers: Option<usize>,
    /// Capacity of the shared artifact LRU.
    pub cache_capacity: usize,
    /// Micro-batching policy for `/attribute`.
    pub batch: BatchConfig,
    /// Per-client rate limits (`None` disables limiting).
    pub rate: Option<RateConfig>,
    /// Circuit-breaker tuning for the transform engine.
    pub breaker: BreakerConfig,
    /// Per-connection budgets and rotation tuning — the slow-loris,
    /// staller, and zombie bounds.
    pub conn: ConnPolicy,
    /// Hard deadline for the graceful drain, ms: connections still
    /// open this long after `shutdown()` are force-closed.
    pub drain_deadline_ms: u64,
    /// HTTP input limits.
    pub limits: Limits,
    /// Train every registry year at bind time instead of lazily.
    pub preload: bool,
}

impl ServeConfig {
    /// Smoke-scale serving config: small corpus and forest, all three
    /// years, defaults everywhere else.
    pub fn smoke() -> Self {
        ServeConfig {
            experiment: ExperimentConfig::smoke(),
            years: vec![2017, 2018, 2019],
            workers: None,
            cache_capacity: 256,
            batch: BatchConfig::default(),
            rate: Some(RateConfig::default()),
            breaker: BreakerConfig::default(),
            conn: ConnPolicy::default(),
            drain_deadline_ms: 5_000,
            limits: Limits::default(),
            preload: false,
        }
    }

    /// The read timeout the server advertises to its own blocking
    /// client ([`crate::client::Client::connect`] uses it by
    /// default when connecting via
    /// [`crate::client::Client::connect_with_timeout`]).
    pub fn client_timeout(&self) -> Duration {
        self.conn.client_timeout()
    }
}

/// Per-route traffic counters (relaxed atomics; observability only).
#[derive(Debug, Default)]
pub struct ServeStats {
    /// Requests routed, any endpoint.
    pub requests: AtomicU64,
    /// `/attribute` requests served 200.
    pub attribute_ok: AtomicU64,
    /// `/transform` requests served 200.
    pub transform_ok: AtomicU64,
    /// `/healthz` reads.
    pub healthz: AtomicU64,
    /// Requests refused with 429.
    pub rate_limited: AtomicU64,
    /// 4xx responses (including parse rejections).
    pub client_errors: AtomicU64,
    /// 5xx responses.
    pub server_errors: AtomicU64,
    /// Handler panics caught and converted to 500s.
    pub panics: AtomicU64,
}

/// Everything the workers share. Handlers live here, transport-free.
#[derive(Debug)]
pub struct ServerState {
    config: ServeConfig,
    registry: ModelRegistry,
    batchers: Mutex<std::collections::HashMap<u32, Arc<MicroBatcher>>>,
    cache: Mutex<ArtifactCache>,
    limiter: Option<Mutex<RateLimiter>>,
    breaker: Mutex<CircuitBreaker>,
    stats: ServeStats,
    conns: ConnCounters,
    drain: DrainState,
    started: Instant,
}

impl ServerState {
    /// Builds the shared state (trains nothing unless `preload`).
    ///
    /// # Errors
    ///
    /// [`synthattr_core::PipelineError::UnsupportedYear`] via the
    /// registry if `config.years` leaves the paper's 2017–2019 range.
    pub fn new(config: ServeConfig) -> Result<Self, synthattr_core::PipelineError> {
        let registry = ModelRegistry::new(config.experiment.clone(), &config.years)?;
        let state = ServerState {
            cache: Mutex::new(ArtifactCache::bounded(config.cache_capacity)),
            limiter: config.rate.clone().map(|r| Mutex::new(RateLimiter::new(r))),
            breaker: Mutex::new(CircuitBreaker::new(config.breaker.clone())),
            batchers: Mutex::new(std::collections::HashMap::new()),
            stats: ServeStats::default(),
            conns: ConnCounters::default(),
            drain: DrainState::new(config.drain_deadline_ms),
            started: Instant::now(),
            registry,
            config,
        };
        if state.config.preload {
            for year in state.registry.years() {
                state.registry.get(year);
            }
        }
        Ok(state)
    }

    /// The server configuration.
    pub fn config(&self) -> &ServeConfig {
        &self.config
    }

    /// Traffic counters.
    pub fn stats(&self) -> &ServeStats {
        &self.stats
    }

    /// The transform-engine circuit breaker (exposed so operators and
    /// the regression suite can inspect or trip it directly).
    pub fn breaker(&self) -> MutexGuard<'_, CircuitBreaker> {
        self.breaker.lock().expect("breaker poisoned")
    }

    /// Connection gauges and per-cause close counters.
    pub fn conns(&self) -> &ConnCounters {
        &self.conns
    }

    /// The graceful-drain state (flag, deadline, drain counters).
    pub fn drain(&self) -> &DrainState {
        &self.drain
    }

    /// Starts the graceful drain: `/healthz` flips to `draining`, the
    /// acceptor stops, and workers finish in-flight requests.
    /// Idempotent; normally reached through
    /// [`RunningServer::shutdown`].
    pub fn begin_drain(&self) {
        self.drain.begin(self.now_ms());
    }

    /// Milliseconds since the server started — the limiter's clock.
    fn now_ms(&self) -> u64 {
        self.started.elapsed().as_millis() as u64
    }

    /// The per-year batcher, created on first use.
    fn batcher(&self, year: u32) -> Option<Arc<MicroBatcher>> {
        let model = self.registry.get(year)?;
        let mut batchers = self.batchers.lock().expect("batchers poisoned");
        Some(Arc::clone(batchers.entry(year).or_insert_with(|| {
            Arc::new(MicroBatcher::new(model, self.config.batch.clone()))
        })))
    }

    /// Routes one parsed request. Pure of the transport: no socket in
    /// sight, which is how the unit suite drives every path.
    pub fn handle_request(&self, req: &Request) -> Response {
        self.stats.requests.fetch_add(1, Ordering::Relaxed);
        let response = match (req.method.as_str(), req.path.as_str()) {
            ("POST", "/attribute") => self.rate_limited(req, |s, r| s.attribute(r)),
            ("POST", "/transform") => self.rate_limited(req, |s, r| s.transform(r)),
            ("GET", "/healthz") => self.healthz(),
            (_, "/attribute" | "/transform" | "/healthz") => Response::json(
                405,
                format!("{{\"error\":{}}}", json::string("method not allowed")),
            ),
            _ => Response::json(404, format!("{{\"error\":{}}}", json::string("not found"))),
        };
        match response.status {
            429 => {
                self.stats.rate_limited.fetch_add(1, Ordering::Relaxed);
            }
            s if (400..500).contains(&s) => {
                self.stats.client_errors.fetch_add(1, Ordering::Relaxed);
            }
            s if s >= 500 => {
                self.stats.server_errors.fetch_add(1, Ordering::Relaxed);
            }
            _ => {}
        }
        response
    }

    /// Applies the per-client token bucket before running `handler`.
    fn rate_limited(
        &self,
        req: &Request,
        handler: fn(&ServerState, &Request) -> Response,
    ) -> Response {
        if let Some(limiter) = &self.limiter {
            let client = req.header("x-client-id").unwrap_or("anon");
            let now = self.now_ms();
            if !limiter.lock().expect("limiter poisoned").check(client, now) {
                return Response::json(
                    429,
                    format!("{{\"error\":{}}}", json::string("rate limit exceeded")),
                );
            }
        }
        handler(self, req)
    }

    /// Parses the `year` query parameter and resolves its model.
    fn year_model(&self, req: &Request) -> Result<Arc<crate::registry::YearModel>, Response> {
        let year_text = req.query_param("year").ok_or_else(|| {
            Response::json(
                400,
                format!("{{\"error\":{}}}", json::string("missing year parameter")),
            )
        })?;
        let year: u32 = year_text.parse().map_err(|_| {
            Response::json(
                400,
                format!("{{\"error\":{}}}", json::string("year must be an integer")),
            )
        })?;
        self.registry.get(year).ok_or_else(|| {
            Response::json(
                404,
                format!(
                    "{{\"error\":{},\"years\":{}}}",
                    json::string("year not served"),
                    json::array(self.registry.years().iter().map(|y| y.to_string()))
                ),
            )
        })
    }

    /// `POST /attribute?year=Y` — the body is raw C++ source.
    fn attribute(&self, req: &Request) -> Response {
        let model = match self.year_model(req) {
            Ok(m) => m,
            Err(resp) => return resp,
        };
        let source = match std::str::from_utf8(&req.body) {
            Ok(s) if !s.trim().is_empty() => s,
            Ok(_) => {
                return Response::json(400, format!("{{\"error\":{}}}", json::string("empty body")))
            }
            Err(_) => {
                return Response::json(
                    400,
                    format!(
                        "{{\"error\":{}}}",
                        json::string("body must be utf-8 source")
                    ),
                )
            }
        };

        // Shared LRU: identical sources across requests featurize once.
        // Only extractor-config-independent products plus features are
        // safe to share here; all registry years use one FeatureConfig,
        // and labels are computed from each year's forest below — never
        // from the artifact's per-model label slot.
        let artifact = self.cache.lock().expect("cache poisoned").intern(source);
        let features = match artifact.features(model.model.extractor()) {
            Ok(f) => f.to_vec(),
            Err(e) => {
                return Response::json(
                    422,
                    format!(
                        "{{\"error\":{},\"detail\":{}}}",
                        json::string("source rejected by the frontend"),
                        json::string(&e.to_string())
                    ),
                )
            }
        };

        let batcher = match self.batcher(model.year) {
            Some(b) => b,
            None => {
                return Response::json(
                    500,
                    format!("{{\"error\":{}}}", json::string("registry lost a year")),
                )
            }
        };
        let proba = batcher.submit(features);
        self.stats.attribute_ok.fetch_add(1, Ordering::Relaxed);
        Response::json(200, attribution_body(model.year, &proba))
    }

    /// `POST /transform?year=Y&mode=nct|ct&steps=N&seed=S`.
    fn transform(&self, req: &Request) -> Response {
        let model = match self.year_model(req) {
            Ok(m) => m,
            Err(resp) => return resp,
        };
        let mode = req.query_param("mode").unwrap_or("nct");
        let chaining = match mode {
            "nct" => false,
            "ct" => true,
            _ => {
                return Response::json(
                    400,
                    format!("{{\"error\":{}}}", json::string("mode must be nct or ct")),
                )
            }
        };
        let steps: usize = match req.query_param("steps").unwrap_or("3").parse() {
            Ok(n) if (1..=MAX_TRANSFORM_STEPS).contains(&n) => n,
            _ => {
                return Response::json(
                    400,
                    format!("{{\"error\":{}}}", json::string("steps must be in 1..=64")),
                )
            }
        };
        let seed: u64 = match req.query_param("seed").unwrap_or("0").parse() {
            Ok(s) => s,
            Err(_) => {
                return Response::json(
                    400,
                    format!("{{\"error\":{}}}", json::string("seed must be an integer")),
                )
            }
        };
        let source = match std::str::from_utf8(&req.body) {
            Ok(s) if !s.trim().is_empty() => s,
            _ => {
                return Response::json(
                    400,
                    format!(
                        "{{\"error\":{}}}",
                        json::string("body must be utf-8 source")
                    ),
                )
            }
        };

        // The breaker guards the transform engine. Open = shed load
        // with 503 (reads — /attribute, /healthz — are unaffected).
        if self.breaker().admit().is_err() {
            return Response::json(
                503,
                format!(
                    "{{\"error\":{},\"breaker\":{}}}",
                    json::string("transform engine shedding load"),
                    json::string(self.breaker().state_name())
                ),
            );
        }

        let transformer = Transformer::new(&model.pool);
        let mut rng = Pcg64::seed_from(seed, &["serve-transform", &model.year.to_string(), mode]);
        let run = if chaining {
            try_run_ct(&transformer, source, steps, Origin::Human, &mut rng)
        } else {
            try_run_nct(&transformer, source, steps, Origin::Human, &mut rng)
        };
        match run {
            Ok(samples) => {
                self.breaker().record_success();
                self.stats.transform_ok.fetch_add(1, Ordering::Relaxed);
                let steps_json = json::array(samples.iter().map(|s| {
                    format!(
                        "{{\"step\":{},\"pool\":{},\"source\":{}}}",
                        s.step,
                        s.pool_index,
                        json::string(&s.source)
                    )
                }));
                Response::json(
                    200,
                    format!(
                        "{{\"year\":{},\"mode\":{},\"seed\":{},\"steps\":{}}}",
                        model.year,
                        json::string(mode),
                        seed,
                        steps_json
                    ),
                )
            }
            // A parse rejection is the client's fault, not engine
            // health: it must not feed the breaker.
            Err(GptError::Parse(e)) => Response::json(
                422,
                format!(
                    "{{\"error\":{},\"detail\":{}}}",
                    json::string("seed rejected by the frontend"),
                    json::string(&e.to_string())
                ),
            ),
            Err(e) => {
                self.breaker().record_failure();
                Response::json(
                    500,
                    format!(
                        "{{\"error\":{},\"detail\":{}}}",
                        json::string("transform engine failure"),
                        json::string(&e.to_string())
                    ),
                )
            }
        }
    }

    /// `GET /healthz`. Always 200 — a degraded engine is reported, not
    /// hidden behind an error; reads keep flowing while the breaker
    /// sheds transform load.
    fn healthz(&self) -> Response {
        self.stats.healthz.fetch_add(1, Ordering::Relaxed);
        let breaker = self.breaker();
        let status = if self.drain.is_draining() {
            "draining"
        } else if breaker.is_open() {
            "degraded"
        } else {
            "ok"
        };
        let breaker_json = format!(
            "{{\"state\":{},\"trips\":{}}}",
            json::string(breaker.state_name()),
            breaker.trips()
        );
        drop(breaker);

        let cache = self.cache.lock().expect("cache poisoned");
        let hits = cache.hits();
        let misses = cache.misses();
        let hit_rate = if hits + misses == 0 {
            0.0
        } else {
            hits as f64 / (hits + misses) as f64
        };
        let cache_json = format!(
            "{{\"hits\":{},\"misses\":{},\"evictions\":{},\"entries\":{},\"capacity\":{},\"hit_rate\":{}}}",
            hits,
            misses,
            cache.evictions(),
            cache.len(),
            cache.capacity().unwrap_or(0),
            json::f64(hit_rate)
        );
        drop(cache);

        let (batches, batched_rows, max_batch) = {
            let batchers = self.batchers.lock().expect("batchers poisoned");
            batchers.values().fold((0u64, 0u64, 0u64), |acc, b| {
                let s = b.stats();
                (
                    acc.0 + s.batches.load(Ordering::Relaxed),
                    acc.1 + s.rows.load(Ordering::Relaxed),
                    acc.2.max(s.max_batch_seen.load(Ordering::Relaxed)),
                )
            })
        };
        let (rate_clients, rate_rejected) = match &self.limiter {
            None => (0, 0),
            Some(l) => {
                let l = l.lock().expect("limiter poisoned");
                (l.clients(), l.rejected())
            }
        };
        let closes = CloseCause::ALL
            .iter()
            .map(|&cause| format!("{}:{}", json::string(cause.tag()), self.conns.closed(cause)))
            .collect::<Vec<_>>()
            .join(",");
        let connections_json = format!(
            "\"connections_open\":{},\"connections_parked\":{},\"connections_opened\":{},\
             \"connection_closes\":{{{}}}",
            self.conns.open_now(),
            self.conns.parked_now(),
            self.conns.opened.load(Ordering::Relaxed),
            closes
        );
        let s = &self.stats;
        let body = format!(
            "{{\"status\":{},\"drain_state\":{},\"uptime_ms\":{},\"years\":{},\"loaded\":{},\
             \"breaker\":{},\"cache\":{},\
             \"batch\":{{\"batches\":{},\"rows\":{},\"max_batch\":{}}},\
             \"rate\":{{\"clients\":{},\"rejected\":{}}},\
             {},\
             \"requests\":{{\"total\":{},\"attribute_ok\":{},\"transform_ok\":{},\"healthz\":{},\
             \"rate_limited\":{},\"client_errors\":{},\"server_errors\":{},\"panics\":{}}}}}",
            json::string(status),
            json::string(self.drain.state_name()),
            self.now_ms(),
            json::array(self.registry.years().iter().map(|y| y.to_string())),
            json::array(self.registry.loaded().iter().map(|y| y.to_string())),
            breaker_json,
            cache_json,
            batches,
            batched_rows,
            max_batch,
            rate_clients,
            rate_rejected,
            connections_json,
            s.requests.load(Ordering::Relaxed),
            s.attribute_ok.load(Ordering::Relaxed),
            s.transform_ok.load(Ordering::Relaxed),
            s.healthz.load(Ordering::Relaxed),
            s.rate_limited.load(Ordering::Relaxed),
            s.client_errors.load(Ordering::Relaxed),
            s.server_errors.load(Ordering::Relaxed),
            s.panics.load(Ordering::Relaxed),
        );
        Response::json(200, body)
    }
}

/// Serializes one attribution verdict. Public so the e2e suite can
/// build its expected bytes from an *offline* oracle's probabilities
/// and compare them byte-for-byte against served responses.
pub fn attribution_body(year: u32, proba: &[f32]) -> String {
    // Descending probability; ties break to the lowest label, matching
    // the forest's own argmax, so `label` always equals `ranking[0]`.
    let mut order: Vec<usize> = (0..proba.len()).collect();
    order.sort_by(|&a, &b| {
        proba[b]
            .partial_cmp(&proba[a])
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.cmp(&b))
    });
    let label = order.first().copied().unwrap_or(0);
    let ranking = json::array(
        order
            .iter()
            .take(5)
            .map(|&i| format!("{{\"author\":{},\"p\":{}}}", i, json::f32(proba[i]))),
    );
    format!(
        "{{\"year\":{},\"label\":{},\"ranking\":{},\"probabilities\":{}}}",
        year,
        label,
        ranking,
        json::array(proba.iter().map(|&p| json::f32(p)))
    )
}

/// A bound, not-yet-running server.
#[derive(Debug)]
pub struct Server {
    listener: TcpListener,
    state: Arc<ServerState>,
    workers: usize,
}

impl Server {
    /// Binds `addr` (use port 0 for an ephemeral port) and builds the
    /// shared state.
    ///
    /// # Errors
    ///
    /// Socket errors from [`TcpListener::bind`]; registry
    /// configuration errors surface as `InvalidInput`.
    pub fn bind(addr: &str, config: ServeConfig) -> std::io::Result<Server> {
        let workers = pool::resolve_workers(config.workers);
        let state = ServerState::new(config)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidInput, e.to_string()))?;
        Ok(Server {
            listener: TcpListener::bind(addr)?,
            state: Arc::new(state),
            workers,
        })
    }

    /// The bound address.
    ///
    /// # Errors
    ///
    /// Propagates [`TcpListener::local_addr`].
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// The shared state (stats, breaker, config).
    pub fn state(&self) -> Arc<ServerState> {
        Arc::clone(&self.state)
    }

    /// Runs the non-blocking accept loop on the calling thread,
    /// serving on `workers` rotation threads, until
    /// [`RunningServer::shutdown`] begins the drain (or a listener
    /// error). Normally reached through [`Server::spawn`].
    pub fn run(self) -> std::io::Result<()> {
        let queue: WorkQueue<Conn> = WorkQueue::new();
        let state = &self.state;
        self.listener.set_nonblocking(true)?;
        std::thread::scope(|scope| {
            for _ in 0..self.workers {
                scope.spawn(|| worker_loop(state, &queue));
            }
            // Non-blocking accept: new connections are configured and
            // parked; the 1 ms poll doubles as the drain-flag check,
            // so shutdown needs no wake-up connection.
            loop {
                if state.drain.is_draining() {
                    break;
                }
                match self.listener.accept() {
                    Ok((stream, _)) => {
                        if stream.set_nonblocking(true).is_err() {
                            continue;
                        }
                        // Small exchanges stall ~40 ms per round trip
                        // under Nagle + delayed ACK; responses go out
                        // in one buffer anyway.
                        let _ = stream.set_nodelay(true);
                        state.conns.on_accept();
                        let conn = Conn::new(stream, state.now_ms());
                        state.conns.on_park();
                        if queue.offer(conn).is_err() {
                            // Unreachable before the drain closes the
                            // queue; dispose deliberately regardless.
                            state.conns.on_resume();
                            state.conns.on_close(CloseCause::Forced);
                        }
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                        std::thread::sleep(Duration::from_millis(1));
                    }
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                    Err(_) => std::thread::sleep(Duration::from_millis(1)),
                }
            }
            // Closing the queue flips every worker into drain mode:
            // remaining parked connections pop with the drain flag up,
            // and further parks bounce back for inline drain service.
            queue.close();
        });
        Ok(())
    }

    /// Starts the server on a background thread and returns a handle
    /// for shutdown.
    ///
    /// # Errors
    ///
    /// Propagates [`Server::local_addr`].
    pub fn spawn(self) -> std::io::Result<RunningServer> {
        let addr = self.local_addr()?;
        let state = self.state();
        let thread = std::thread::spawn(move || self.run());
        Ok(RunningServer {
            addr,
            state,
            thread,
        })
    }
}

/// A live server: address, shared state, and the accept-loop thread.
#[derive(Debug)]
pub struct RunningServer {
    addr: SocketAddr,
    state: Arc<ServerState>,
    thread: JoinHandle<std::io::Result<()>>,
}

impl RunningServer {
    /// The bound address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The shared state (stats, breaker, config).
    pub fn state(&self) -> Arc<ServerState> {
        Arc::clone(&self.state)
    }

    /// Begins the graceful drain, joins the server thread, and
    /// reports what the drain did: stop accepting, answer every
    /// in-flight request (`Connection: close` on each connection's
    /// final response), force-close stragglers only at
    /// [`ServeConfig::drain_deadline_ms`].
    pub fn shutdown(self) -> DrainStats {
        let begun = Instant::now();
        self.state.begin_drain();
        let _ = self.thread.join();
        self.state.drain.stats(begun.elapsed().as_millis() as u64)
    }
}

/// One live connection as the rotation loop carries it: the
/// non-blocking socket, buffered request bytes, not-yet-flushed
/// response bytes, and the budget gauge.
#[derive(Debug)]
struct Conn {
    stream: TcpStream,
    /// Request bytes read but not yet consumed by the parser.
    buf: Vec<u8>,
    /// Serialized response bytes not yet accepted by the socket.
    pending: Vec<u8>,
    /// Prefix of `pending` already written.
    sent: usize,
    gauge: ConnGauge,
    /// Close this connection (with this cause) once `pending` drains.
    close_after_write: Option<CloseCause>,
    /// The peer half-closed its write side (EOF on read).
    eof: bool,
}

impl Conn {
    fn new(stream: TcpStream, now_ms: u64) -> Self {
        Conn {
            stream,
            buf: Vec::new(),
            pending: Vec::new(),
            sent: 0,
            gauge: ConnGauge::new(now_ms),
            close_after_write: None,
            eof: false,
        }
    }

    /// Queues a response for writing.
    fn enqueue(&mut self, response: &Response) {
        self.pending.extend_from_slice(&response.to_bytes());
    }
}

/// What one non-blocking flush attempt achieved.
enum Flush {
    /// Everything pending is on the wire.
    Done,
    /// Some bytes moved, then the socket filled.
    Progress,
    /// The socket accepted nothing.
    Blocked,
}

/// Writes as much of `pending` as the socket accepts right now.
fn flush(conn: &mut Conn) -> io::Result<Flush> {
    let mut progressed = false;
    loop {
        if conn.sent >= conn.pending.len() {
            conn.pending.clear();
            conn.sent = 0;
            return Ok(Flush::Done);
        }
        match conn.stream.write(&conn.pending[conn.sent..]) {
            Ok(0) => return Err(io::Error::from(io::ErrorKind::WriteZero)),
            Ok(n) => {
                conn.sent += n;
                progressed = true;
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                return Ok(if progressed {
                    Flush::Progress
                } else {
                    Flush::Blocked
                });
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
}

/// The rotation loop's decision for a driven connection, plus whether
/// the slice did any real work (for the workers' idle back-off).
struct DriveOutcome {
    verdict: Verdict,
    productive: bool,
}

impl DriveOutcome {
    fn close(cause: CloseCause, productive: bool) -> Self {
        DriveOutcome {
            verdict: Verdict::Close(cause),
            productive,
        }
    }

    fn park(productive: bool) -> Self {
        DriveOutcome {
            verdict: Verdict::Park,
            productive,
        }
    }
}

/// Counts and queues the error response for a failed request read,
/// with the same accounting the blocking loop used.
fn enqueue_error(state: &ServerState, conn: &mut Conn, err: &HttpError) {
    if err.status() != 0 {
        state.stats.requests.fetch_add(1, Ordering::Relaxed);
        state.stats.client_errors.fetch_add(1, Ordering::Relaxed);
        conn.enqueue(&Response::from_error(err));
    }
}

/// Drives one connection for one slice: flush what we owe, serve every
/// complete buffered request, read until the socket runs dry, then
/// park or close per the budget gauge. Never blocks.
fn drive(state: &ServerState, conn: &mut Conn) -> DriveOutcome {
    if state.drain.is_draining() {
        let cause = drain_serve(state, conn);
        return DriveOutcome::close(cause, true);
    }
    let policy = &state.config.conn;
    let limits = &state.config.limits;
    let mut productive = false;

    // A previously blocked response write gets first claim on the
    // slice; reading more requests while the peer won't take answers
    // just grows the buffer.
    if !conn.pending.is_empty() {
        let now = state.now_ms();
        match flush(conn) {
            Err(_) => return DriveOutcome::close(CloseCause::HostileReset, false),
            Ok(Flush::Blocked) => {
                conn.gauge.write_blocked(now);
                return DriveOutcome {
                    verdict: conn.gauge.stalled(policy, now),
                    productive: false,
                };
            }
            Ok(Flush::Progress) => {
                conn.gauge.write_blocked(now);
                conn.gauge.write_progress(now);
                return DriveOutcome::park(true);
            }
            Ok(Flush::Done) => {
                conn.gauge.write_drained(now);
                productive = true;
                if let Some(cause) = conn.close_after_write {
                    return DriveOutcome::close(cause, true);
                }
            }
        }
    }

    let mut served_in_slice: u32 = 0;
    loop {
        // Serve every complete request already buffered (pipelining),
        // up to the fairness cap.
        while conn.close_after_write.is_none() && served_in_slice < policy.max_requests_per_slice {
            match scan_request(&conn.buf, limits) {
                Err(err) => {
                    // Over-limit mid-line: decidable without more
                    // bytes. Answer and close; framing is gone.
                    enqueue_error(state, conn, &err);
                    conn.buf.clear();
                    conn.close_after_write = Some(CloseCause::BadRequest);
                    productive = true;
                }
                Ok(ScanStatus::Complete { total_len }) => {
                    let request_bytes: Vec<u8> = conn.buf.drain(..total_len).collect();
                    match read_request(&mut Cursor::new(&request_bytes[..]), limits) {
                        Ok(Some(req)) => {
                            let mut response = state.handle_request(&req);
                            let exhausted = conn.gauge.request_served(policy, state.now_ms());
                            if !req.keep_alive {
                                response.close = true;
                                conn.close_after_write
                                    .get_or_insert(CloseCause::ClientClose);
                            }
                            if exhausted {
                                response.close = true;
                                conn.close_after_write
                                    .get_or_insert(CloseCause::MaxRequests);
                            }
                            conn.enqueue(&response);
                            served_in_slice += 1;
                            productive = true;
                        }
                        Ok(None) => {
                            conn.close_after_write = Some(CloseCause::PeerClosed);
                        }
                        Err(err) => {
                            enqueue_error(state, conn, &err);
                            conn.buf.clear();
                            conn.close_after_write = Some(CloseCause::BadRequest);
                            productive = true;
                        }
                    }
                }
                Ok(status) => {
                    conn.gauge.observe_scan(status, state.now_ms());
                    break;
                }
            }
        }

        // Push out what we owe, without blocking.
        if !conn.pending.is_empty() {
            let now = state.now_ms();
            match flush(conn) {
                Err(_) => return DriveOutcome::close(CloseCause::HostileReset, productive),
                Ok(Flush::Done) => conn.gauge.write_drained(now),
                Ok(Flush::Progress) | Ok(Flush::Blocked) => {
                    conn.gauge.write_blocked(now);
                    return DriveOutcome {
                        verdict: conn.gauge.stalled(policy, now),
                        productive,
                    };
                }
            }
        }
        if let Some(cause) = conn.close_after_write {
            return DriveOutcome::close(cause, productive);
        }
        if served_in_slice >= policy.max_requests_per_slice {
            // Fairness: a hot pipelining peer yields the worker.
            return DriveOutcome::park(productive);
        }
        if conn.eof {
            if conn.buf.is_empty() {
                return DriveOutcome::close(CloseCause::PeerClosed, productive);
            }
            // Bytes remain but no complete request ever will: let the
            // authoritative parser name the truncation, answer it, and
            // close through the flush path above.
            let err = match read_request(&mut Cursor::new(&conn.buf[..]), limits) {
                Err(err) => err,
                Ok(_) => HttpError::BadRequest("truncated request"),
            };
            enqueue_error(state, conn, &err);
            conn.buf.clear();
            conn.close_after_write = Some(CloseCause::BadRequest);
            continue;
        }

        // Pull whatever the socket has.
        let mut chunk = [0u8; 8192];
        match conn.stream.read(&mut chunk) {
            Ok(0) => {
                conn.eof = true;
                productive = true;
            }
            Ok(n) => {
                conn.buf.extend_from_slice(&chunk[..n]);
                productive = true;
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                let now = state.now_ms();
                let verdict = conn.gauge.stalled(policy, now);
                if let Verdict::Close(cause) = verdict {
                    // A mid-request stall earns its 408 (best effort —
                    // the peer is hostile by definition here).
                    if matches!(cause, CloseCause::HeaderStall | CloseCause::BodyStall) {
                        enqueue_error(state, conn, &HttpError::Timeout);
                        let _ = flush(conn);
                    }
                }
                return DriveOutcome {
                    verdict,
                    productive,
                };
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(_) => return DriveOutcome::close(CloseCause::HostileReset, productive),
        }
    }
}

/// Serves a connection during the drain: complete every in-flight
/// request (polling briefly for bytes already on the wire), mark the
/// final response `Connection: close`, flush with the hard deadline
/// as the bound, and report how the connection ended.
fn drain_serve(state: &ServerState, conn: &mut Conn) -> CloseCause {
    let limits = &state.config.limits;
    let mut responses: Vec<Response> = Vec::new();
    let mut hostile = false;
    let mut forced = false;
    loop {
        if state.drain.force_deadline_passed(state.now_ms()) {
            forced = true;
            break;
        }
        match scan_request(&conn.buf, limits) {
            Err(err) => {
                if err.status() != 0 {
                    state.stats.requests.fetch_add(1, Ordering::Relaxed);
                    state.stats.client_errors.fetch_add(1, Ordering::Relaxed);
                    responses.push(Response::from_error(&err));
                }
                conn.buf.clear();
                break;
            }
            Ok(ScanStatus::Complete { total_len }) => {
                let request_bytes: Vec<u8> = conn.buf.drain(..total_len).collect();
                match read_request(&mut Cursor::new(&request_bytes[..]), limits) {
                    Ok(Some(req)) => responses.push(state.handle_request(&req)),
                    Ok(None) => break,
                    Err(err) => {
                        if err.status() != 0 {
                            state.stats.requests.fetch_add(1, Ordering::Relaxed);
                            state.stats.client_errors.fetch_add(1, Ordering::Relaxed);
                            responses.push(Response::from_error(&err));
                        }
                        conn.buf.clear();
                        break;
                    }
                }
            }
            Ok(ScanStatus::Empty) => break,
            Ok(ScanStatus::PartialHead) | Ok(ScanStatus::NeedBody { .. }) => {
                if conn.eof {
                    // The rest of this request is never coming.
                    let err = match read_request(&mut Cursor::new(&conn.buf[..]), limits) {
                        Err(err) => err,
                        Ok(_) => HttpError::BadRequest("truncated request"),
                    };
                    if err.status() != 0 {
                        state.stats.requests.fetch_add(1, Ordering::Relaxed);
                        state.stats.client_errors.fetch_add(1, Ordering::Relaxed);
                        responses.push(Response::from_error(&err));
                    }
                    conn.buf.clear();
                    break;
                }
                // An in-flight request: poll briefly for bytes already
                // on the wire. New requests are not waited for — only
                // started ones are finished.
                let mut chunk = [0u8; 8192];
                match conn.stream.read(&mut chunk) {
                    Ok(0) => conn.eof = true,
                    Ok(n) => conn.buf.extend_from_slice(&chunk[..n]),
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                        std::thread::sleep(Duration::from_millis(1));
                    }
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                    Err(_) => {
                        hostile = true;
                        break;
                    }
                }
            }
        }
    }

    // The connection's final response announces the close.
    if let Some(last) = responses.last_mut() {
        last.close = true;
    }
    let answered = responses.len() as u64;
    for response in &responses {
        conn.enqueue(response);
    }
    // Flush everything owed — pre-drain leftovers included — bounded
    // by the hard deadline.
    while !conn.pending.is_empty() && !hostile {
        if state.drain.force_deadline_passed(state.now_ms()) {
            forced = true;
            break;
        }
        match flush(conn) {
            Ok(Flush::Done) => break,
            Ok(Flush::Progress) => {}
            Ok(Flush::Blocked) => std::thread::sleep(Duration::from_millis(1)),
            Err(_) => {
                hostile = true;
                break;
            }
        }
    }
    state.drain.note_final_responses(answered);
    state.drain.note_drained();
    if forced {
        state.drain.note_forced();
        CloseCause::Forced
    } else if hostile {
        CloseCause::HostileReset
    } else {
        CloseCause::Drain
    }
}

/// One rotation worker: pop a parked connection, drive it for a
/// slice, park it back or retire it, and back off exponentially when
/// a full sweep of the open set yields nothing (bounding idle spin at
/// [`ConnPolicy::rotation_backoff_ms`] per sweep).
fn worker_loop(state: &ServerState, queue: &WorkQueue<Conn>) {
    let backoff_cap = state.config.conn.rotation_backoff_ms.max(1);
    let mut idle_streak: u64 = 0;
    let mut backoff_ms: u64 = 1;
    while let Some(mut conn) = queue.pop() {
        state.conns.on_resume();
        // A handler panic must cost one connection, not the worker.
        let outcome = match catch_unwind(AssertUnwindSafe(|| drive(state, &mut conn))) {
            Ok(outcome) => outcome,
            Err(_) => {
                state.stats.panics.fetch_add(1, Ordering::Relaxed);
                DriveOutcome::close(CloseCause::HostileReset, true)
            }
        };
        match outcome.verdict {
            Verdict::Close(cause) => {
                state.conns.on_close(cause);
                drop(conn);
            }
            Verdict::Park => {
                state.conns.on_park();
                if let Err(mut conn) = queue.offer(conn) {
                    // The drain closed the queue between our drain
                    // check and the park: finish the connection here
                    // instead of slamming it shut.
                    state.conns.on_resume();
                    let cause = drain_serve(state, &mut conn);
                    state.conns.on_close(cause);
                }
            }
        }
        if outcome.productive {
            idle_streak = 0;
            backoff_ms = 1;
        } else {
            idle_streak += 1;
            if idle_streak >= state.conns.open_now().max(1) {
                // A whole sweep with no progress: sleep instead of
                // spinning the park/pop cycle.
                std::thread::sleep(Duration::from_millis(backoff_ms));
                backoff_ms = (backoff_ms * 2).min(backoff_cap);
                idle_streak = 0;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn single_year_config() -> ServeConfig {
        let mut config = ServeConfig::smoke();
        config.years = vec![2018];
        config.rate = None;
        config
    }

    fn state(config: ServeConfig) -> ServerState {
        ServerState::new(config).unwrap()
    }

    fn req(method: &str, path: &str, query: &[(&str, &str)], body: &str) -> Request {
        Request {
            method: method.to_string(),
            path: path.to_string(),
            query: query
                .iter()
                .map(|(k, v)| (k.to_string(), v.to_string()))
                .collect(),
            headers: Vec::new(),
            body: body.as_bytes().to_vec(),
            keep_alive: true,
        }
    }

    const SOURCE: &str = "int main() { int total = 3; return total; }";

    #[test]
    fn router_maps_unknown_paths_and_methods() {
        let s = state(single_year_config());
        assert_eq!(s.handle_request(&req("GET", "/nope", &[], "")).status, 404);
        assert_eq!(
            s.handle_request(&req("GET", "/attribute", &[], "")).status,
            405,
            "known path, wrong method"
        );
        assert_eq!(
            s.handle_request(&req("POST", "/healthz", &[], "")).status,
            405
        );
        assert_eq!(s.stats().client_errors.load(Ordering::Relaxed), 3);
    }

    #[test]
    fn attribute_validates_year_and_body() {
        let s = state(single_year_config());
        let missing = s.handle_request(&req("POST", "/attribute", &[], SOURCE));
        assert_eq!(missing.status, 400, "missing year");
        let bad = s.handle_request(&req("POST", "/attribute", &[("year", "soon")], SOURCE));
        assert_eq!(bad.status, 400, "non-integer year");
        let unserved = s.handle_request(&req("POST", "/attribute", &[("year", "2019")], SOURCE));
        assert_eq!(unserved.status, 404, "in-range year not in the registry");
        let empty = s.handle_request(&req("POST", "/attribute", &[("year", "2018")], ""));
        assert_eq!(empty.status, 400, "empty body");
        let broken = s.handle_request(&req(
            "POST",
            "/attribute",
            &[("year", "2018")],
            "int main( {",
        ));
        assert_eq!(broken.status, 422, "unparseable source");
    }

    #[test]
    fn attribute_matches_the_offline_oracle_byte_for_byte() {
        let s = state(single_year_config());
        let served = s.handle_request(&req("POST", "/attribute", &[("year", "2018")], SOURCE));
        assert_eq!(served.status, 200);

        let oracle = synthattr_core::year_oracle(2018, &s.config().experiment).unwrap();
        let mut cache = ArtifactCache::new();
        let artifact = cache.intern(SOURCE);
        let features = artifact.features(oracle.extractor()).unwrap();
        let proba = oracle.forest().predict_proba(features);
        let expected = attribution_body(2018, &proba);
        assert_eq!(
            String::from_utf8(served.body).unwrap(),
            expected,
            "served verdict == offline pipeline verdict, byte for byte"
        );
    }

    #[test]
    fn rate_limiter_rejects_the_burst_overflow_with_429() {
        let mut config = single_year_config();
        config.rate = Some(RateConfig {
            burst: 2,
            per_second: 0,
        });
        let s = state(config);
        let attr = || req("POST", "/attribute", &[("year", "2018")], SOURCE);
        assert_eq!(s.handle_request(&attr()).status, 200);
        assert_eq!(s.handle_request(&attr()).status, 200);
        assert_eq!(s.handle_request(&attr()).status, 429, "burst exhausted");
        assert_eq!(s.stats().rate_limited.load(Ordering::Relaxed), 1);
        // A different client identity has its own bucket.
        let mut other = attr();
        other
            .headers
            .push(("x-client-id".to_string(), "fresh".to_string()));
        assert_eq!(s.handle_request(&other).status, 200);
        // /healthz is never rate-limited.
        assert_eq!(
            s.handle_request(&req("GET", "/healthz", &[], "")).status,
            200
        );
    }

    #[test]
    fn healthz_reports_degraded_when_the_breaker_opens_but_reads_still_flow() {
        let s = state(single_year_config());
        let healthy = s.handle_request(&req("GET", "/healthz", &[], ""));
        assert_eq!(healthy.status, 200);
        let text = String::from_utf8(healthy.body).unwrap();
        assert!(text.contains("\"status\":\"ok\""), "healthy body: {text}");

        // Trip the breaker the way real transform failures would.
        for _ in 0..s.config().breaker.failure_threshold {
            s.breaker().record_failure();
        }
        assert!(s.breaker().is_open());

        // Regression: a degraded engine must REPORT degraded, not fail
        // the health read or the attribution path.
        let degraded = s.handle_request(&req("GET", "/healthz", &[], ""));
        assert_eq!(degraded.status, 200, "healthz never errors on degradation");
        let text = String::from_utf8(degraded.body).unwrap();
        assert!(
            text.contains("\"status\":\"degraded\"") && text.contains("\"state\":\"open\""),
            "degraded body: {text}"
        );
        let attributed = s.handle_request(&req("POST", "/attribute", &[("year", "2018")], SOURCE));
        assert_eq!(attributed.status, 200, "reads flow while transforms shed");

        // Transforms shed with 503 while open.
        let shed = s.handle_request(&req("POST", "/transform", &[("year", "2018")], SOURCE));
        assert_eq!(shed.status, 503);
    }

    #[test]
    fn transform_is_deterministic_and_parse_rejects_skip_the_breaker() {
        let s = state(single_year_config());
        let t = || {
            req(
                "POST",
                "/transform",
                &[
                    ("year", "2018"),
                    ("mode", "ct"),
                    ("steps", "2"),
                    ("seed", "7"),
                ],
                SOURCE,
            )
        };
        let first = s.handle_request(&t());
        let second = s.handle_request(&t());
        assert_eq!(first.status, 200);
        assert_eq!(first.body, second.body, "same seed, same chain bytes");

        let trips_before = s.breaker().trips();
        let rejected = s.handle_request(&req(
            "POST",
            "/transform",
            &[("year", "2018")],
            "not c++ at all ~~~",
        ));
        assert_eq!(rejected.status, 422);
        assert_eq!(
            s.breaker().trips(),
            trips_before,
            "client parse errors never count against engine health"
        );

        let bad_mode = s.handle_request(&req(
            "POST",
            "/transform",
            &[("year", "2018"), ("mode", "detox")],
            SOURCE,
        ));
        assert_eq!(bad_mode.status, 400);
        let bad_steps = s.handle_request(&req(
            "POST",
            "/transform",
            &[("year", "2018"), ("steps", "0")],
            SOURCE,
        ));
        assert_eq!(bad_steps.status, 400);
    }

    #[test]
    fn healthz_reports_drain_state_and_connection_counters() {
        let s = state(single_year_config());
        let before = s.handle_request(&req("GET", "/healthz", &[], ""));
        let text = String::from_utf8(before.body).unwrap();
        assert!(text.contains("\"status\":\"ok\""), "body: {text}");
        assert!(text.contains("\"drain_state\":\"active\""), "body: {text}");
        assert!(text.contains("\"connections_open\":0"), "body: {text}");
        assert!(text.contains("\"connections_parked\":0"), "body: {text}");
        assert!(
            text.contains("\"connection_closes\":{\"peer_closed\":0,"),
            "per-cause close counters present: {text}"
        );

        // Connection life-cycle events surface as gauges + counters.
        s.conns().on_accept();
        s.conns().on_accept();
        s.conns().on_park();
        s.conns().on_close(CloseCause::IdleBudget);
        let mid = s.handle_request(&req("GET", "/healthz", &[], ""));
        let text = String::from_utf8(mid.body).unwrap();
        assert!(text.contains("\"connections_open\":1"), "body: {text}");
        assert!(text.contains("\"connections_parked\":1"), "body: {text}");
        assert!(text.contains("\"idle_budget\":1"), "body: {text}");

        // The drain flips both status and drain_state, and healthz
        // keeps answering (load balancers need the draining signal).
        s.begin_drain();
        let draining = s.handle_request(&req("GET", "/healthz", &[], ""));
        assert_eq!(draining.status, 200);
        let text = String::from_utf8(draining.body).unwrap();
        assert!(text.contains("\"status\":\"draining\""), "body: {text}");
        assert!(
            text.contains("\"drain_state\":\"draining\""),
            "body: {text}"
        );
    }

    #[test]
    fn attribution_body_ranks_descending_with_ties_to_the_lowest_label() {
        let body = attribution_body(2017, &[0.25, 0.5, 0.25, 0.0]);
        assert!(
            body.starts_with("{\"year\":2017,\"label\":1,"),
            "argmax wins: {body}"
        );
        let ranked = attribution_body(2019, &[0.4, 0.4, 0.2]);
        assert!(
            ranked.contains("\"label\":0") && ranked.contains("[{\"author\":0,"),
            "ties break to the lowest label, matching the forest: {ranked}"
        );
        assert!(
            ranked.contains("\"probabilities\":[0.4,0.4,0.2]"),
            "full vector serialized: {ranked}"
        );
    }
}
