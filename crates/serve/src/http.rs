//! A minimal, defensive HTTP/1.1 wire layer.
//!
//! Hand-rolled on `std::io` because the workspace is hermetic (zero
//! registry dependencies): no hyper, no epoll crate — one blocking
//! reader per connection, served by the worker pool. The parser is
//! generic over [`BufRead`] so the property suite can drive it with
//! in-memory cursors at fuzzing speed, and every input dimension is
//! hard-limited (request line, header count, header size, body size)
//! so a hostile peer can cost at most a bounded read before a 4xx.
//!
//! Supported surface: `GET`/`POST`/`HEAD`, `Content-Length` bodies,
//! keep-alive and pipelining. Chunked transfer encoding is refused
//! with `501` rather than half-implemented.

use std::io::{self, BufRead, Write};

/// Input hard limits. Exceeding any of them is a client error, never a
/// panic or an unbounded allocation.
#[derive(Debug, Clone)]
pub struct Limits {
    /// Longest accepted request line, in bytes.
    pub max_request_line: usize,
    /// Longest accepted single header line, in bytes.
    pub max_header_line: usize,
    /// Most headers accepted per request.
    pub max_headers: usize,
    /// Largest accepted body, in bytes.
    pub max_body: usize,
}

impl Default for Limits {
    fn default() -> Self {
        Limits {
            max_request_line: 8 * 1024,
            max_header_line: 8 * 1024,
            max_headers: 64,
            max_body: 1024 * 1024,
        }
    }
}

/// One parsed request.
#[derive(Debug, Clone)]
pub struct Request {
    /// Uppercase method token (`GET`, `POST`, `HEAD`).
    pub method: String,
    /// Path component of the target, before any `?`.
    pub path: String,
    /// Decoded query parameters in order of appearance.
    pub query: Vec<(String, String)>,
    /// Headers with lowercased names, in wire order.
    pub headers: Vec<(String, String)>,
    /// The body (empty unless `Content-Length` said otherwise).
    pub body: Vec<u8>,
    /// Whether the connection should stay open after the response.
    pub keep_alive: bool,
}

impl Request {
    /// First value of a header, by lowercase name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }

    /// First value of a query parameter.
    pub fn query_param(&self, name: &str) -> Option<&str> {
        self.query
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }
}

/// Everything that can go wrong while reading a request. Each variant
/// maps to one response status; none of them panic.
#[derive(Debug)]
pub enum HttpError {
    /// Peer closed the connection before sending anything: a clean end
    /// of a keep-alive session, not an error to report.
    Closed,
    /// Malformed request (syntax, bad framing, truncated mid-request).
    BadRequest(&'static str),
    /// Request line exceeded [`Limits::max_request_line`] → 414.
    UriTooLong,
    /// A header exceeded [`Limits::max_header_line`] or there were more
    /// than [`Limits::max_headers`] → 431.
    HeadersTooLarge,
    /// Body exceeded [`Limits::max_body`] → 413.
    BodyTooLarge,
    /// The socket read timed out mid-request (slow-loris) → 408.
    Timeout,
    /// Chunked or otherwise unsupported framing → 501.
    Unsupported(&'static str),
    /// Transport-level failure; the connection is unusable.
    Io(io::Error),
}

impl HttpError {
    /// The response status for this error (0 for [`HttpError::Closed`]
    /// and [`HttpError::Io`], where no response can or should be sent).
    pub fn status(&self) -> u16 {
        match self {
            HttpError::Closed | HttpError::Io(_) => 0,
            HttpError::BadRequest(_) => 400,
            HttpError::UriTooLong => 414,
            HttpError::HeadersTooLarge => 431,
            HttpError::BodyTooLarge => 413,
            HttpError::Timeout => 408,
            HttpError::Unsupported(_) => 501,
        }
    }

    /// Short operator-facing description.
    pub fn reason(&self) -> &'static str {
        match self {
            HttpError::Closed => "connection closed",
            HttpError::BadRequest(why) => why,
            HttpError::UriTooLong => "request line too long",
            HttpError::HeadersTooLarge => "headers too large",
            HttpError::BodyTooLarge => "body too large",
            HttpError::Timeout => "request read timed out",
            HttpError::Unsupported(why) => why,
            HttpError::Io(_) => "io error",
        }
    }
}

/// Reads one line (terminated by `\n`, tolerating `\r\n`) of at most
/// `max` bytes. `Ok(None)` is clean EOF before any byte.
fn read_line_limited(
    reader: &mut impl BufRead,
    max: usize,
    over_limit: fn() -> HttpError,
) -> Result<Option<String>, HttpError> {
    let mut line = Vec::new();
    loop {
        let mut byte = [0u8; 1];
        match reader.read(&mut byte) {
            Ok(0) => {
                if line.is_empty() {
                    return Ok(None);
                }
                return Err(HttpError::BadRequest("truncated line"));
            }
            Ok(_) => {
                if byte[0] == b'\n' {
                    if line.last() == Some(&b'\r') {
                        line.pop();
                    }
                    let text = String::from_utf8(line)
                        .map_err(|_| HttpError::BadRequest("non-utf8 line"))?;
                    return Ok(Some(text));
                }
                line.push(byte[0]);
                if line.len() > max {
                    return Err(over_limit());
                }
            }
            Err(e) if is_timeout(&e) => return Err(HttpError::Timeout),
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(HttpError::Io(e)),
        }
    }
}

/// Read timeouts surface as `WouldBlock` on Unix sockets and
/// `TimedOut` elsewhere; both mean the peer stalled.
fn is_timeout(e: &io::Error) -> bool {
    matches!(
        e.kind(),
        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
    )
}

/// Minimal percent-decoding for query values (`%xx` and `+`). Invalid
/// escapes pass through literally — queries here carry years and small
/// identifiers, not arbitrary documents.
fn percent_decode(s: &str) -> String {
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'+' => out.push(b' '),
            b'%' if i + 2 < bytes.len() => {
                let hex = std::str::from_utf8(&bytes[i + 1..i + 3]).ok();
                match hex.and_then(|h| u8::from_str_radix(h, 16).ok()) {
                    Some(b) => {
                        out.push(b);
                        i += 2;
                    }
                    None => out.push(b'%'),
                }
            }
            b => out.push(b),
        }
        i += 1;
    }
    String::from_utf8_lossy(&out).into_owned()
}

/// Splits a request target into path and decoded query pairs.
fn split_target(target: &str) -> (String, Vec<(String, String)>) {
    match target.split_once('?') {
        None => (target.to_string(), Vec::new()),
        Some((path, query)) => {
            let pairs = query
                .split('&')
                .filter(|p| !p.is_empty())
                .map(|p| match p.split_once('=') {
                    Some((k, v)) => (percent_decode(k), percent_decode(v)),
                    None => (percent_decode(p), String::new()),
                })
                .collect();
            (path.to_string(), pairs)
        }
    }
}

/// Reads and parses one request.
///
/// `Ok(None)` means the peer closed cleanly between requests (normal
/// keep-alive teardown). Any [`HttpError`] other than
/// [`HttpError::Closed`]/[`HttpError::Io`] should be answered with
/// [`Response::from_error`] before closing.
///
/// # Errors
///
/// See [`HttpError`]; every limit violation and framing defect maps to
/// a 4xx/5xx status rather than a panic.
pub fn read_request(
    reader: &mut impl BufRead,
    limits: &Limits,
) -> Result<Option<Request>, HttpError> {
    // Tolerate a little CRLF noise between pipelined requests
    // (RFC 9112 §2.2), but only a little: endless blank lines are a
    // stall, not a request.
    let mut request_line = None;
    for _ in 0..4 {
        match read_line_limited(reader, limits.max_request_line, || HttpError::UriTooLong)? {
            None => return Ok(None),
            Some(line) if line.is_empty() => continue,
            Some(line) => {
                request_line = Some(line);
                break;
            }
        }
    }
    let Some(request_line) = request_line else {
        return Err(HttpError::BadRequest("blank-line flood"));
    };

    let mut parts = request_line.split(' ');
    let (method, target, version) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(t), Some(v), None) if !m.is_empty() && !t.is_empty() => (m, t, v),
        _ => return Err(HttpError::BadRequest("malformed request line")),
    };
    if !method.bytes().all(|b| b.is_ascii_uppercase()) {
        return Err(HttpError::BadRequest("malformed method token"));
    }
    if !target.starts_with('/') {
        return Err(HttpError::BadRequest("target must be origin-form"));
    }
    let http11 = match version {
        "HTTP/1.1" => true,
        "HTTP/1.0" => false,
        _ => return Err(HttpError::BadRequest("unsupported http version")),
    };

    let mut headers: Vec<(String, String)> = Vec::new();
    loop {
        let line = read_line_limited(reader, limits.max_header_line, || {
            HttpError::HeadersTooLarge
        })?
        .ok_or(HttpError::BadRequest("truncated headers"))?;
        if line.is_empty() {
            break;
        }
        if headers.len() >= limits.max_headers {
            return Err(HttpError::HeadersTooLarge);
        }
        let Some((name, value)) = line.split_once(':') else {
            return Err(HttpError::BadRequest("header without colon"));
        };
        if name.is_empty() || name.contains(' ') {
            return Err(HttpError::BadRequest("malformed header name"));
        }
        headers.push((name.to_ascii_lowercase(), value.trim().to_string()));
    }

    let find = |name: &str| {
        headers
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    };
    if find("transfer-encoding").is_some() {
        return Err(HttpError::Unsupported("transfer-encoding not supported"));
    }
    let content_length = match find("content-length") {
        None => 0usize,
        Some(v) => v
            .parse::<usize>()
            .map_err(|_| HttpError::BadRequest("malformed content-length"))?,
    };
    if content_length > limits.max_body {
        return Err(HttpError::BodyTooLarge);
    }

    let mut body = vec![0u8; content_length];
    let mut read_so_far = 0;
    while read_so_far < content_length {
        match reader.read(&mut body[read_so_far..]) {
            Ok(0) => return Err(HttpError::BadRequest("truncated body")),
            Ok(n) => read_so_far += n,
            Err(e) if is_timeout(&e) => return Err(HttpError::Timeout),
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(HttpError::Io(e)),
        }
    }

    let keep_alive = match find("connection").map(str::to_ascii_lowercase) {
        Some(c) if c.contains("close") => false,
        Some(c) if c.contains("keep-alive") => true,
        _ => http11,
    };
    let (path, query) = split_target(target);
    Ok(Some(Request {
        method: method.to_string(),
        path,
        query,
        headers,
        body,
        keep_alive,
    }))
}

/// What an incremental scan of buffered connection bytes concluded.
///
/// The rotation loop reads whatever a socket has to offer without
/// blocking, so a connection's buffer is usually a *prefix* of a
/// request. [`scan_request`] classifies that prefix cheaply — without
/// allocating or parsing — so the transport knows whether to hand the
/// bytes to [`read_request`] (the single authoritative parser), keep
/// waiting, or reject the peer outright.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScanStatus {
    /// No bytes buffered: the connection is idle between requests.
    Empty,
    /// A request has started arriving but its head is incomplete.
    PartialHead,
    /// The head is complete; the request spans `total_len` bytes
    /// (head + declared body) and the buffer does not hold them yet.
    NeedBody {
        /// Head plus declared body length, in bytes.
        total_len: usize,
    },
    /// The first `total_len` buffered bytes form one complete unit:
    /// either a parseable request or a head whose defects
    /// [`read_request`] is guaranteed to reject without blocking
    /// (blank-line flood, malformed or oversized framing, unsupported
    /// transfer-encoding).
    Complete {
        /// Bytes to feed to [`read_request`] and then consume.
        total_len: usize,
    },
}

/// Incrementally classifies the buffered prefix of a request.
///
/// Mirrors [`read_request`]'s limit accounting exactly (line lengths
/// include a trailing `\r`, the header-count check fires on the
/// header *after* the last accepted one) so a scan error is always
/// the same status the authoritative parse would produce — just
/// earlier, before the hostile peer finishes its line.
///
/// # Errors
///
/// [`HttpError::UriTooLong`] / [`HttpError::HeadersTooLarge`] when a
/// partial or complete line already exceeds its limit — the caller
/// should answer and close without waiting for more bytes.
pub fn scan_request(buf: &[u8], limits: &Limits) -> Result<ScanStatus, HttpError> {
    if buf.is_empty() {
        return Ok(ScanStatus::Empty);
    }
    let mut pos = 0usize;
    let mut blank_lines = 0usize;
    let mut in_headers = false;
    let mut header_count = 0usize;
    let mut content_length: Option<Result<usize, ()>> = None;
    let mut head_malformed = false;
    loop {
        let line_end = buf[pos..].iter().position(|&b| b == b'\n');
        let Some(rel) = line_end else {
            // An unterminated line: over-limit is decidable now, more
            // bytes are needed otherwise. Lengths match
            // `read_line_limited`, which counts every pushed byte
            // (including a pending '\r').
            let partial = buf.len() - pos;
            let (max, err): (usize, fn() -> HttpError) = if in_headers {
                (limits.max_header_line, || HttpError::HeadersTooLarge)
            } else {
                (limits.max_request_line, || HttpError::UriTooLong)
            };
            if partial > max {
                return Err(err());
            }
            return Ok(ScanStatus::PartialHead);
        };
        // The line as `read_line_limited` counts it: '\n' excluded,
        // '\r' included in the length check but not the content.
        let raw = &buf[pos..pos + rel];
        let line = if raw.last() == Some(&b'\r') {
            &raw[..raw.len() - 1]
        } else {
            raw
        };
        let after = pos + rel + 1;
        if !in_headers {
            if line.is_empty() {
                blank_lines += 1;
                // `read_request` tolerates three blank lines before
                // the request line; the fourth makes the whole prefix
                // a guaranteed 400 ("blank-line flood").
                if blank_lines >= 4 {
                    return Ok(ScanStatus::Complete { total_len: after });
                }
                pos = after;
                continue;
            }
            if raw.len() > limits.max_request_line {
                return Err(HttpError::UriTooLong);
            }
            in_headers = true;
            pos = after;
            continue;
        }
        if line.is_empty() {
            // End of head. Anything the scan could not vouch for is
            // handed to `read_request`, which will reject it from the
            // buffered head alone — no body read can block on a
            // malformed or refused request.
            let body_len = match content_length {
                None => 0,
                Some(Ok(n)) => n,
                Some(Err(())) => return Ok(ScanStatus::Complete { total_len: after }),
            };
            if head_malformed || body_len > limits.max_body {
                return Ok(ScanStatus::Complete { total_len: after });
            }
            let total_len = after + body_len;
            return Ok(if buf.len() >= total_len {
                ScanStatus::Complete { total_len }
            } else {
                ScanStatus::NeedBody { total_len }
            });
        }
        if raw.len() > limits.max_header_line {
            return Err(HttpError::HeadersTooLarge);
        }
        if header_count >= limits.max_headers {
            return Err(HttpError::HeadersTooLarge);
        }
        header_count += 1;
        match line.iter().position(|&b| b == b':') {
            None => head_malformed = true,
            Some(colon) => {
                let name = &line[..colon];
                if name.eq_ignore_ascii_case(b"transfer-encoding") {
                    // Refused with 501 by the parser; no body follows.
                    head_malformed = true;
                }
                if name.eq_ignore_ascii_case(b"content-length") && content_length.is_none() {
                    let value = std::str::from_utf8(&line[colon + 1..])
                        .map(str::trim)
                        .map_err(|_| ());
                    content_length = Some(value.and_then(|v| v.parse::<usize>().map_err(|_| ())));
                }
            }
        }
        pos = after;
    }
}

/// One response ready to serialize.
#[derive(Debug, Clone)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// `Content-Type` value.
    pub content_type: &'static str,
    /// Response body.
    pub body: Vec<u8>,
    /// Whether the server should close the connection after writing.
    pub close: bool,
}

impl Response {
    /// A JSON response.
    pub fn json(status: u16, body: String) -> Self {
        Response {
            status,
            content_type: "application/json",
            body: body.into_bytes(),
            close: false,
        }
    }

    /// A plain-text response.
    pub fn text(status: u16, body: &str) -> Self {
        Response {
            status,
            content_type: "text/plain; charset=utf-8",
            body: body.as_bytes().to_vec(),
            close: false,
        }
    }

    /// The error response for a failed request read (connection always
    /// closes afterwards: framing state is unrecoverable).
    pub fn from_error(err: &HttpError) -> Self {
        let mut r = Response::json(
            err.status(),
            format!("{{\"error\":{}}}", crate::json::string(err.reason())),
        );
        r.close = true;
        r
    }

    /// The standard reason phrase for this status.
    pub fn reason_phrase(&self) -> &'static str {
        match self.status {
            200 => "OK",
            400 => "Bad Request",
            404 => "Not Found",
            405 => "Method Not Allowed",
            408 => "Request Timeout",
            413 => "Content Too Large",
            414 => "URI Too Long",
            422 => "Unprocessable Content",
            429 => "Too Many Requests",
            431 => "Request Header Fields Too Large",
            500 => "Internal Server Error",
            501 => "Not Implemented",
            503 => "Service Unavailable",
            _ => "Response",
        }
    }

    /// Serializes the response into one buffer (status line, headers,
    /// body) — the unit the rotation loop queues for non-blocking
    /// writes, so header and body always share a packet.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.body.len() + 128);
        write!(
            out,
            "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: {}\r\n\r\n",
            self.status,
            self.reason_phrase(),
            self.content_type,
            self.body.len(),
            if self.close { "close" } else { "keep-alive" },
        )
        .expect("write! to a Vec cannot fail");
        out.extend_from_slice(&self.body);
        out
    }

    /// Serializes the response (status line, headers, body).
    ///
    /// # Errors
    ///
    /// Propagates transport write errors; the caller drops the
    /// connection on any of them.
    pub fn write_to(&self, writer: &mut impl Write) -> io::Result<()> {
        writer.write_all(&self.to_bytes())?;
        writer.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn parse(raw: &str) -> Result<Option<Request>, HttpError> {
        read_request(&mut Cursor::new(raw.as_bytes()), &Limits::default())
    }

    #[test]
    fn parses_a_get_with_query_and_headers() {
        let req =
            parse("GET /attribute?year=2018&k=v HTTP/1.1\r\nHost: x\r\nX-Client-Id: abc\r\n\r\n")
                .unwrap()
                .unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/attribute");
        assert_eq!(req.query_param("year"), Some("2018"));
        assert_eq!(req.query_param("k"), Some("v"));
        assert_eq!(req.header("x-client-id"), Some("abc"));
        assert!(req.keep_alive, "HTTP/1.1 defaults to keep-alive");
        assert!(req.body.is_empty());
    }

    #[test]
    fn parses_a_post_body_by_content_length() {
        let req = parse("POST /x HTTP/1.1\r\nContent-Length: 5\r\n\r\nhelloEXTRA")
            .unwrap()
            .unwrap();
        assert_eq!(req.body, b"hello");
    }

    #[test]
    fn clean_eof_is_none_not_an_error() {
        assert!(parse("").unwrap().is_none());
    }

    #[test]
    fn malformed_request_lines_are_400() {
        for raw in [
            "GET\r\n\r\n",
            "GET /x\r\n\r\n",
            "GET /x HTTP/1.1 EXTRA\r\n\r\n",
            "get /x HTTP/1.1\r\n\r\n",
            "GET x HTTP/1.1\r\n\r\n",
            "GET /x HTTP/2.0\r\n\r\n",
            "GET /x HTTP/1.1\r\nno-colon-here\r\n\r\n",
            "GET /x HTTP/1.1\r\nbad name: v\r\n\r\n",
            "POST /x HTTP/1.1\r\nContent-Length: nope\r\n\r\n",
        ] {
            let err = parse(raw).expect_err(raw);
            assert_eq!(err.status(), 400, "{raw:?} → {err:?}");
        }
    }

    #[test]
    fn oversized_inputs_map_to_their_statuses() {
        let long_target = format!("GET /{} HTTP/1.1\r\n\r\n", "a".repeat(9000));
        assert_eq!(parse(&long_target).unwrap_err().status(), 414);

        let big_header = format!("GET / HTTP/1.1\r\nX-Big: {}\r\n\r\n", "b".repeat(9000));
        assert_eq!(parse(&big_header).unwrap_err().status(), 431);

        let many_headers = format!(
            "GET / HTTP/1.1\r\n{}\r\n",
            (0..70)
                .map(|i| format!("X-H{i}: v\r\n"))
                .collect::<String>()
        );
        assert_eq!(parse(&many_headers).unwrap_err().status(), 431);

        let huge_body = "POST / HTTP/1.1\r\nContent-Length: 99999999\r\n\r\n";
        assert_eq!(parse(huge_body).unwrap_err().status(), 413);
    }

    #[test]
    fn truncated_body_is_a_bad_request() {
        let err = parse("POST /x HTTP/1.1\r\nContent-Length: 100\r\n\r\nshort").unwrap_err();
        assert_eq!(err.status(), 400);
    }

    #[test]
    fn chunked_encoding_is_refused_not_half_implemented() {
        let err = parse("POST /x HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n").unwrap_err();
        assert_eq!(err.status(), 501);
    }

    #[test]
    fn connection_header_controls_keep_alive() {
        let close = parse("GET / HTTP/1.1\r\nConnection: close\r\n\r\n")
            .unwrap()
            .unwrap();
        assert!(!close.keep_alive);
        let http10 = parse("GET / HTTP/1.0\r\n\r\n").unwrap().unwrap();
        assert!(!http10.keep_alive, "HTTP/1.0 defaults to close");
        let http10_ka = parse("GET / HTTP/1.0\r\nConnection: keep-alive\r\n\r\n")
            .unwrap()
            .unwrap();
        assert!(http10_ka.keep_alive);
    }

    #[test]
    fn pipelined_requests_parse_back_to_back() {
        let raw = "GET /a HTTP/1.1\r\n\r\nPOST /b HTTP/1.1\r\nContent-Length: 2\r\n\r\nhi";
        let mut cursor = Cursor::new(raw.as_bytes());
        let a = read_request(&mut cursor, &Limits::default())
            .unwrap()
            .unwrap();
        let b = read_request(&mut cursor, &Limits::default())
            .unwrap()
            .unwrap();
        assert_eq!(a.path, "/a");
        assert_eq!(b.path, "/b");
        assert_eq!(b.body, b"hi");
        assert!(read_request(&mut cursor, &Limits::default())
            .unwrap()
            .is_none());
    }

    #[test]
    fn percent_decoding_covers_the_query_surface() {
        let req = parse("GET /x?a=1%202&b=c+d&flag&bad=%zz HTTP/1.1\r\n\r\n")
            .unwrap()
            .unwrap();
        assert_eq!(req.query_param("a"), Some("1 2"));
        assert_eq!(req.query_param("b"), Some("c d"));
        assert_eq!(req.query_param("flag"), Some(""));
        assert_eq!(req.query_param("bad"), Some("%zz"));
    }

    fn scan(buf: &[u8]) -> Result<ScanStatus, HttpError> {
        scan_request(buf, &Limits::default())
    }

    #[test]
    fn scan_classifies_prefixes_of_a_posted_request() {
        let full = b"POST /x HTTP/1.1\r\nContent-Length: 5\r\n\r\nhello";
        let head_end = full
            .windows(4)
            .position(|w| w == b"\r\n\r\n")
            .map(|p| p + 4)
            .unwrap();
        let total = full.len(); // head + the 5 declared body bytes
        assert_eq!(scan(b"").unwrap(), ScanStatus::Empty);
        for cut in 1..head_end {
            // Everything before the blank line ends is a partial head.
            assert_eq!(
                scan(&full[..cut]).unwrap(),
                ScanStatus::PartialHead,
                "cut={cut}"
            );
        }
        assert_eq!(
            scan(&full[..head_end]).unwrap(),
            ScanStatus::NeedBody { total_len: total },
            "head complete, body missing"
        );
        assert_eq!(
            scan(&full[..total - 2]).unwrap(),
            ScanStatus::NeedBody { total_len: total },
            "body partially buffered"
        );
        assert_eq!(
            scan(full).unwrap(),
            ScanStatus::Complete { total_len: total },
            "whole request buffered"
        );
        // Extra pipelined bytes never change the first request's span.
        let mut two = full.to_vec();
        two.extend_from_slice(b"GET /y HTTP/1.1\r\n\r\n");
        assert_eq!(
            scan(&two).unwrap(),
            ScanStatus::Complete { total_len: total }
        );
    }

    #[test]
    fn scan_agrees_with_read_request_on_every_complete_span() {
        // For each raw exchange: scanning must find the same span the
        // authoritative parser consumes, and parsing exactly that span
        // must succeed (or fail) identically to streaming the bytes.
        for raw in [
            "GET /a HTTP/1.1\r\n\r\n".to_string(),
            "\r\n\r\nGET /a HTTP/1.1\r\nHost: x\r\n\r\n".to_string(),
            "POST /b HTTP/1.1\r\nContent-Length: 2\r\n\r\nhi".to_string(),
            "GET /a HTTP/1.0\nConnection: keep-alive\n\n".to_string(),
            "POST /x HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n".to_string(),
            "POST /x HTTP/1.1\r\nContent-Length: nope\r\n\r\n".to_string(),
            "POST / HTTP/1.1\r\nContent-Length: 99999999\r\n\r\n".to_string(),
            "GET /x HTTP/1.1\r\nno-colon\r\n\r\n".to_string(),
            "\r\n\r\n\r\n\r\n".to_string(),
        ] {
            let buf = raw.as_bytes();
            let ScanStatus::Complete { total_len } = scan(buf).unwrap() else {
                panic!("{raw:?} should scan complete");
            };
            let mut streamed = Cursor::new(buf);
            let streamed_result = read_request(&mut streamed, &Limits::default());
            let sliced_result =
                read_request(&mut Cursor::new(&buf[..total_len]), &Limits::default());
            match (streamed_result, sliced_result) {
                (Ok(Some(a)), Ok(Some(b))) => {
                    assert_eq!(a.path, b.path, "{raw:?}");
                    assert_eq!(a.body, b.body, "{raw:?}");
                    assert_eq!(
                        streamed.position() as usize,
                        total_len,
                        "{raw:?}: scan span must equal the parser's consumption"
                    );
                }
                (Err(a), Err(b)) => assert_eq!(a.status(), b.status(), "{raw:?}"),
                (a, b) => panic!("{raw:?}: streamed {a:?} vs sliced {b:?}"),
            }
        }
    }

    #[test]
    fn scan_rejects_oversized_lines_before_they_finish() {
        let long_target = format!("GET /{}", "a".repeat(9000));
        assert_eq!(
            scan(long_target.as_bytes()).unwrap_err().status(),
            414,
            "partial oversize request line is decidable early"
        );
        let big_header = format!("GET / HTTP/1.1\r\nX-Big: {}", "b".repeat(9000));
        assert_eq!(scan(big_header.as_bytes()).unwrap_err().status(), 431);
        let many = format!(
            "GET / HTTP/1.1\r\n{}",
            (0..70)
                .map(|i| format!("X-H{i}: v\r\n"))
                .collect::<String>()
        );
        assert_eq!(scan(many.as_bytes()).unwrap_err().status(), 431);
        // Exactly at the limit is still fine.
        let at_limit = format!("GET /{}", "a".repeat(8 * 1024 - 5));
        assert_eq!(scan(at_limit.as_bytes()).unwrap(), ScanStatus::PartialHead);
    }

    #[test]
    fn scan_takes_the_first_content_length_like_the_parser() {
        let raw = b"POST /x HTTP/1.1\r\nContent-Length: 2\r\nContent-Length: 9\r\n\r\nhi";
        assert_eq!(
            scan(raw).unwrap(),
            ScanStatus::Complete {
                total_len: raw.len()
            }
        );
    }

    #[test]
    fn responses_serialize_with_exact_framing() {
        let mut buf = Vec::new();
        Response::json(200, "{\"ok\":true}".to_string())
            .write_to(&mut buf)
            .unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("Content-Length: 11\r\n"));
        assert!(text.contains("Connection: keep-alive\r\n"));
        assert!(text.ends_with("\r\n\r\n{\"ok\":true}"));
    }

    #[test]
    fn error_responses_always_close() {
        let r = Response::from_error(&HttpError::Timeout);
        assert_eq!(r.status, 408);
        assert!(r.close);
        assert!(String::from_utf8(r.body).unwrap().contains("timed out"));
    }
}
