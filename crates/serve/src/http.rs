//! A minimal, defensive HTTP/1.1 wire layer.
//!
//! Hand-rolled on `std::io` because the workspace is hermetic (zero
//! registry dependencies): no hyper, no epoll crate — one blocking
//! reader per connection, served by the worker pool. The parser is
//! generic over [`BufRead`] so the property suite can drive it with
//! in-memory cursors at fuzzing speed, and every input dimension is
//! hard-limited (request line, header count, header size, body size)
//! so a hostile peer can cost at most a bounded read before a 4xx.
//!
//! Supported surface: `GET`/`POST`/`HEAD`, `Content-Length` bodies,
//! keep-alive and pipelining. Chunked transfer encoding is refused
//! with `501` rather than half-implemented.

use std::io::{self, BufRead, Write};

/// Input hard limits. Exceeding any of them is a client error, never a
/// panic or an unbounded allocation.
#[derive(Debug, Clone)]
pub struct Limits {
    /// Longest accepted request line, in bytes.
    pub max_request_line: usize,
    /// Longest accepted single header line, in bytes.
    pub max_header_line: usize,
    /// Most headers accepted per request.
    pub max_headers: usize,
    /// Largest accepted body, in bytes.
    pub max_body: usize,
}

impl Default for Limits {
    fn default() -> Self {
        Limits {
            max_request_line: 8 * 1024,
            max_header_line: 8 * 1024,
            max_headers: 64,
            max_body: 1024 * 1024,
        }
    }
}

/// One parsed request.
#[derive(Debug, Clone)]
pub struct Request {
    /// Uppercase method token (`GET`, `POST`, `HEAD`).
    pub method: String,
    /// Path component of the target, before any `?`.
    pub path: String,
    /// Decoded query parameters in order of appearance.
    pub query: Vec<(String, String)>,
    /// Headers with lowercased names, in wire order.
    pub headers: Vec<(String, String)>,
    /// The body (empty unless `Content-Length` said otherwise).
    pub body: Vec<u8>,
    /// Whether the connection should stay open after the response.
    pub keep_alive: bool,
}

impl Request {
    /// First value of a header, by lowercase name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }

    /// First value of a query parameter.
    pub fn query_param(&self, name: &str) -> Option<&str> {
        self.query
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }
}

/// Everything that can go wrong while reading a request. Each variant
/// maps to one response status; none of them panic.
#[derive(Debug)]
pub enum HttpError {
    /// Peer closed the connection before sending anything: a clean end
    /// of a keep-alive session, not an error to report.
    Closed,
    /// Malformed request (syntax, bad framing, truncated mid-request).
    BadRequest(&'static str),
    /// Request line exceeded [`Limits::max_request_line`] → 414.
    UriTooLong,
    /// A header exceeded [`Limits::max_header_line`] or there were more
    /// than [`Limits::max_headers`] → 431.
    HeadersTooLarge,
    /// Body exceeded [`Limits::max_body`] → 413.
    BodyTooLarge,
    /// The socket read timed out mid-request (slow-loris) → 408.
    Timeout,
    /// Chunked or otherwise unsupported framing → 501.
    Unsupported(&'static str),
    /// Transport-level failure; the connection is unusable.
    Io(io::Error),
}

impl HttpError {
    /// The response status for this error (0 for [`HttpError::Closed`]
    /// and [`HttpError::Io`], where no response can or should be sent).
    pub fn status(&self) -> u16 {
        match self {
            HttpError::Closed | HttpError::Io(_) => 0,
            HttpError::BadRequest(_) => 400,
            HttpError::UriTooLong => 414,
            HttpError::HeadersTooLarge => 431,
            HttpError::BodyTooLarge => 413,
            HttpError::Timeout => 408,
            HttpError::Unsupported(_) => 501,
        }
    }

    /// Short operator-facing description.
    pub fn reason(&self) -> &'static str {
        match self {
            HttpError::Closed => "connection closed",
            HttpError::BadRequest(why) => why,
            HttpError::UriTooLong => "request line too long",
            HttpError::HeadersTooLarge => "headers too large",
            HttpError::BodyTooLarge => "body too large",
            HttpError::Timeout => "request read timed out",
            HttpError::Unsupported(why) => why,
            HttpError::Io(_) => "io error",
        }
    }
}

/// Reads one line (terminated by `\n`, tolerating `\r\n`) of at most
/// `max` bytes. `Ok(None)` is clean EOF before any byte.
fn read_line_limited(
    reader: &mut impl BufRead,
    max: usize,
    over_limit: fn() -> HttpError,
) -> Result<Option<String>, HttpError> {
    let mut line = Vec::new();
    loop {
        let mut byte = [0u8; 1];
        match reader.read(&mut byte) {
            Ok(0) => {
                if line.is_empty() {
                    return Ok(None);
                }
                return Err(HttpError::BadRequest("truncated line"));
            }
            Ok(_) => {
                if byte[0] == b'\n' {
                    if line.last() == Some(&b'\r') {
                        line.pop();
                    }
                    let text = String::from_utf8(line)
                        .map_err(|_| HttpError::BadRequest("non-utf8 line"))?;
                    return Ok(Some(text));
                }
                line.push(byte[0]);
                if line.len() > max {
                    return Err(over_limit());
                }
            }
            Err(e) if is_timeout(&e) => return Err(HttpError::Timeout),
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(HttpError::Io(e)),
        }
    }
}

/// Read timeouts surface as `WouldBlock` on Unix sockets and
/// `TimedOut` elsewhere; both mean the peer stalled.
fn is_timeout(e: &io::Error) -> bool {
    matches!(
        e.kind(),
        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
    )
}

/// Minimal percent-decoding for query values (`%xx` and `+`). Invalid
/// escapes pass through literally — queries here carry years and small
/// identifiers, not arbitrary documents.
fn percent_decode(s: &str) -> String {
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'+' => out.push(b' '),
            b'%' if i + 2 < bytes.len() => {
                let hex = std::str::from_utf8(&bytes[i + 1..i + 3]).ok();
                match hex.and_then(|h| u8::from_str_radix(h, 16).ok()) {
                    Some(b) => {
                        out.push(b);
                        i += 2;
                    }
                    None => out.push(b'%'),
                }
            }
            b => out.push(b),
        }
        i += 1;
    }
    String::from_utf8_lossy(&out).into_owned()
}

/// Splits a request target into path and decoded query pairs.
fn split_target(target: &str) -> (String, Vec<(String, String)>) {
    match target.split_once('?') {
        None => (target.to_string(), Vec::new()),
        Some((path, query)) => {
            let pairs = query
                .split('&')
                .filter(|p| !p.is_empty())
                .map(|p| match p.split_once('=') {
                    Some((k, v)) => (percent_decode(k), percent_decode(v)),
                    None => (percent_decode(p), String::new()),
                })
                .collect();
            (path.to_string(), pairs)
        }
    }
}

/// Reads and parses one request.
///
/// `Ok(None)` means the peer closed cleanly between requests (normal
/// keep-alive teardown). Any [`HttpError`] other than
/// [`HttpError::Closed`]/[`HttpError::Io`] should be answered with
/// [`Response::from_error`] before closing.
///
/// # Errors
///
/// See [`HttpError`]; every limit violation and framing defect maps to
/// a 4xx/5xx status rather than a panic.
pub fn read_request(
    reader: &mut impl BufRead,
    limits: &Limits,
) -> Result<Option<Request>, HttpError> {
    // Tolerate a little CRLF noise between pipelined requests
    // (RFC 9112 §2.2), but only a little: endless blank lines are a
    // stall, not a request.
    let mut request_line = None;
    for _ in 0..4 {
        match read_line_limited(reader, limits.max_request_line, || HttpError::UriTooLong)? {
            None => return Ok(None),
            Some(line) if line.is_empty() => continue,
            Some(line) => {
                request_line = Some(line);
                break;
            }
        }
    }
    let Some(request_line) = request_line else {
        return Err(HttpError::BadRequest("blank-line flood"));
    };

    let mut parts = request_line.split(' ');
    let (method, target, version) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(t), Some(v), None) if !m.is_empty() && !t.is_empty() => (m, t, v),
        _ => return Err(HttpError::BadRequest("malformed request line")),
    };
    if !method.bytes().all(|b| b.is_ascii_uppercase()) {
        return Err(HttpError::BadRequest("malformed method token"));
    }
    if !target.starts_with('/') {
        return Err(HttpError::BadRequest("target must be origin-form"));
    }
    let http11 = match version {
        "HTTP/1.1" => true,
        "HTTP/1.0" => false,
        _ => return Err(HttpError::BadRequest("unsupported http version")),
    };

    let mut headers: Vec<(String, String)> = Vec::new();
    loop {
        let line = read_line_limited(reader, limits.max_header_line, || {
            HttpError::HeadersTooLarge
        })?
        .ok_or(HttpError::BadRequest("truncated headers"))?;
        if line.is_empty() {
            break;
        }
        if headers.len() >= limits.max_headers {
            return Err(HttpError::HeadersTooLarge);
        }
        let Some((name, value)) = line.split_once(':') else {
            return Err(HttpError::BadRequest("header without colon"));
        };
        if name.is_empty() || name.contains(' ') {
            return Err(HttpError::BadRequest("malformed header name"));
        }
        headers.push((name.to_ascii_lowercase(), value.trim().to_string()));
    }

    let find = |name: &str| {
        headers
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    };
    if find("transfer-encoding").is_some() {
        return Err(HttpError::Unsupported("transfer-encoding not supported"));
    }
    let content_length = match find("content-length") {
        None => 0usize,
        Some(v) => v
            .parse::<usize>()
            .map_err(|_| HttpError::BadRequest("malformed content-length"))?,
    };
    if content_length > limits.max_body {
        return Err(HttpError::BodyTooLarge);
    }

    let mut body = vec![0u8; content_length];
    let mut read_so_far = 0;
    while read_so_far < content_length {
        match reader.read(&mut body[read_so_far..]) {
            Ok(0) => return Err(HttpError::BadRequest("truncated body")),
            Ok(n) => read_so_far += n,
            Err(e) if is_timeout(&e) => return Err(HttpError::Timeout),
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(HttpError::Io(e)),
        }
    }

    let keep_alive = match find("connection").map(str::to_ascii_lowercase) {
        Some(c) if c.contains("close") => false,
        Some(c) if c.contains("keep-alive") => true,
        _ => http11,
    };
    let (path, query) = split_target(target);
    Ok(Some(Request {
        method: method.to_string(),
        path,
        query,
        headers,
        body,
        keep_alive,
    }))
}

/// One response ready to serialize.
#[derive(Debug, Clone)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// `Content-Type` value.
    pub content_type: &'static str,
    /// Response body.
    pub body: Vec<u8>,
    /// Whether the server should close the connection after writing.
    pub close: bool,
}

impl Response {
    /// A JSON response.
    pub fn json(status: u16, body: String) -> Self {
        Response {
            status,
            content_type: "application/json",
            body: body.into_bytes(),
            close: false,
        }
    }

    /// A plain-text response.
    pub fn text(status: u16, body: &str) -> Self {
        Response {
            status,
            content_type: "text/plain; charset=utf-8",
            body: body.as_bytes().to_vec(),
            close: false,
        }
    }

    /// The error response for a failed request read (connection always
    /// closes afterwards: framing state is unrecoverable).
    pub fn from_error(err: &HttpError) -> Self {
        let mut r = Response::json(
            err.status(),
            format!("{{\"error\":{}}}", crate::json::string(err.reason())),
        );
        r.close = true;
        r
    }

    /// The standard reason phrase for this status.
    pub fn reason_phrase(&self) -> &'static str {
        match self.status {
            200 => "OK",
            400 => "Bad Request",
            404 => "Not Found",
            405 => "Method Not Allowed",
            408 => "Request Timeout",
            413 => "Content Too Large",
            414 => "URI Too Long",
            422 => "Unprocessable Content",
            429 => "Too Many Requests",
            431 => "Request Header Fields Too Large",
            500 => "Internal Server Error",
            501 => "Not Implemented",
            503 => "Service Unavailable",
            _ => "Response",
        }
    }

    /// Serializes the response (status line, headers, body).
    ///
    /// # Errors
    ///
    /// Propagates transport write errors; the caller drops the
    /// connection on any of them.
    pub fn write_to(&self, writer: &mut impl Write) -> io::Result<()> {
        // One buffered write so header and body share a packet.
        let mut out = Vec::with_capacity(self.body.len() + 128);
        write!(
            out,
            "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: {}\r\n\r\n",
            self.status,
            self.reason_phrase(),
            self.content_type,
            self.body.len(),
            if self.close { "close" } else { "keep-alive" },
        )?;
        out.extend_from_slice(&self.body);
        writer.write_all(&out)?;
        writer.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn parse(raw: &str) -> Result<Option<Request>, HttpError> {
        read_request(&mut Cursor::new(raw.as_bytes()), &Limits::default())
    }

    #[test]
    fn parses_a_get_with_query_and_headers() {
        let req =
            parse("GET /attribute?year=2018&k=v HTTP/1.1\r\nHost: x\r\nX-Client-Id: abc\r\n\r\n")
                .unwrap()
                .unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/attribute");
        assert_eq!(req.query_param("year"), Some("2018"));
        assert_eq!(req.query_param("k"), Some("v"));
        assert_eq!(req.header("x-client-id"), Some("abc"));
        assert!(req.keep_alive, "HTTP/1.1 defaults to keep-alive");
        assert!(req.body.is_empty());
    }

    #[test]
    fn parses_a_post_body_by_content_length() {
        let req = parse("POST /x HTTP/1.1\r\nContent-Length: 5\r\n\r\nhelloEXTRA")
            .unwrap()
            .unwrap();
        assert_eq!(req.body, b"hello");
    }

    #[test]
    fn clean_eof_is_none_not_an_error() {
        assert!(parse("").unwrap().is_none());
    }

    #[test]
    fn malformed_request_lines_are_400() {
        for raw in [
            "GET\r\n\r\n",
            "GET /x\r\n\r\n",
            "GET /x HTTP/1.1 EXTRA\r\n\r\n",
            "get /x HTTP/1.1\r\n\r\n",
            "GET x HTTP/1.1\r\n\r\n",
            "GET /x HTTP/2.0\r\n\r\n",
            "GET /x HTTP/1.1\r\nno-colon-here\r\n\r\n",
            "GET /x HTTP/1.1\r\nbad name: v\r\n\r\n",
            "POST /x HTTP/1.1\r\nContent-Length: nope\r\n\r\n",
        ] {
            let err = parse(raw).expect_err(raw);
            assert_eq!(err.status(), 400, "{raw:?} → {err:?}");
        }
    }

    #[test]
    fn oversized_inputs_map_to_their_statuses() {
        let long_target = format!("GET /{} HTTP/1.1\r\n\r\n", "a".repeat(9000));
        assert_eq!(parse(&long_target).unwrap_err().status(), 414);

        let big_header = format!("GET / HTTP/1.1\r\nX-Big: {}\r\n\r\n", "b".repeat(9000));
        assert_eq!(parse(&big_header).unwrap_err().status(), 431);

        let many_headers = format!(
            "GET / HTTP/1.1\r\n{}\r\n",
            (0..70)
                .map(|i| format!("X-H{i}: v\r\n"))
                .collect::<String>()
        );
        assert_eq!(parse(&many_headers).unwrap_err().status(), 431);

        let huge_body = "POST / HTTP/1.1\r\nContent-Length: 99999999\r\n\r\n";
        assert_eq!(parse(huge_body).unwrap_err().status(), 413);
    }

    #[test]
    fn truncated_body_is_a_bad_request() {
        let err = parse("POST /x HTTP/1.1\r\nContent-Length: 100\r\n\r\nshort").unwrap_err();
        assert_eq!(err.status(), 400);
    }

    #[test]
    fn chunked_encoding_is_refused_not_half_implemented() {
        let err = parse("POST /x HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n").unwrap_err();
        assert_eq!(err.status(), 501);
    }

    #[test]
    fn connection_header_controls_keep_alive() {
        let close = parse("GET / HTTP/1.1\r\nConnection: close\r\n\r\n")
            .unwrap()
            .unwrap();
        assert!(!close.keep_alive);
        let http10 = parse("GET / HTTP/1.0\r\n\r\n").unwrap().unwrap();
        assert!(!http10.keep_alive, "HTTP/1.0 defaults to close");
        let http10_ka = parse("GET / HTTP/1.0\r\nConnection: keep-alive\r\n\r\n")
            .unwrap()
            .unwrap();
        assert!(http10_ka.keep_alive);
    }

    #[test]
    fn pipelined_requests_parse_back_to_back() {
        let raw = "GET /a HTTP/1.1\r\n\r\nPOST /b HTTP/1.1\r\nContent-Length: 2\r\n\r\nhi";
        let mut cursor = Cursor::new(raw.as_bytes());
        let a = read_request(&mut cursor, &Limits::default())
            .unwrap()
            .unwrap();
        let b = read_request(&mut cursor, &Limits::default())
            .unwrap()
            .unwrap();
        assert_eq!(a.path, "/a");
        assert_eq!(b.path, "/b");
        assert_eq!(b.body, b"hi");
        assert!(read_request(&mut cursor, &Limits::default())
            .unwrap()
            .is_none());
    }

    #[test]
    fn percent_decoding_covers_the_query_surface() {
        let req = parse("GET /x?a=1%202&b=c+d&flag&bad=%zz HTTP/1.1\r\n\r\n")
            .unwrap()
            .unwrap();
        assert_eq!(req.query_param("a"), Some("1 2"));
        assert_eq!(req.query_param("b"), Some("c d"));
        assert_eq!(req.query_param("flag"), Some(""));
        assert_eq!(req.query_param("bad"), Some("%zz"));
    }

    #[test]
    fn responses_serialize_with_exact_framing() {
        let mut buf = Vec::new();
        Response::json(200, "{\"ok\":true}".to_string())
            .write_to(&mut buf)
            .unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("Content-Length: 11\r\n"));
        assert!(text.contains("Connection: keep-alive\r\n"));
        assert!(text.ends_with("\r\n\r\n{\"ok\":true}"));
    }

    #[test]
    fn error_responses_always_close() {
        let r = Response::from_error(&HttpError::Timeout);
        assert_eq!(r.status, 408);
        assert!(r.close);
        assert!(String::from_utf8(r.body).unwrap().contains("timed out"));
    }
}
