//! Robustness properties for the HTTP surface, in two tiers:
//!
//! 1. **Pure parser totality** — `read_request` over in-memory byte
//!    soup, mutated valid requests, and adversarially-shaped inputs:
//!    every outcome is `Ok` or a typed `HttpError`, never a panic.
//! 2. **Live server survival** — the same input classes thrown at a
//!    real listener over TCP: malformed traffic maps to 4xx or a clean
//!    close (slow-loris times out within the configured bound), and
//!    the server keeps serving well-formed requests afterwards.
//!
//! A model-free registry config keeps these fast: malformed requests
//! never reach a handler, so no forest is ever trained.

use std::io::{Cursor, Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

use synthattr_serve::http::{read_request, Limits};
use synthattr_serve::server::{RunningServer, ServeConfig, Server};
use synthattr_util::prop::{gen, Runner};
use synthattr_util::{prop_assert, Pcg64};

// ---------------------------------------------------------------- tier 1

/// Parsing arbitrary bytes is total: some `Ok`, some typed error, no
/// panic (the prop runner converts panics into failures).
#[test]
fn parser_is_total_over_byte_soup() {
    Runner::new("http-byte-soup").cases(512).run(
        |rng| gen::any_string(rng, 512).into_bytes(),
        |bytes| {
            let mut cursor = Cursor::new(bytes.as_slice());
            let _ = read_request(&mut cursor, &Limits::default());
            Ok(())
        },
    );
}

/// Structured soup: line-oriented garbage that *looks* like HTTP —
/// methods, targets, versions, header-ish lines — in random order.
#[test]
fn parser_is_total_over_http_shaped_fragments() {
    let fragments = [
        "GET / HTTP/1.1\r\n",
        "POST /attribute?year=2018 HTTP/1.1\r\n",
        "get / http/1.1\r\n",
        "GET  /  HTTP/1.1\r\n",
        "GET / HTTP/2.0\r\n",
        "/ GET HTTP/1.1\r\n",
        "Content-Length: 5\r\n",
        "Content-Length: -1\r\n",
        "Content-Length: 99999999999999999999\r\n",
        "Transfer-Encoding: chunked\r\n",
        ": empty name\r\n",
        "No-Colon-Header\r\n",
        "Connection: keep-alive\r\n",
        "Connection: close\r\n",
        "\r\n",
        "\n",
        "body bytes",
        "\0\0\0\0",
    ];
    Runner::new("http-fragment-soup").cases(512).run(
        |rng| {
            gen::vec_of(rng, 12, |rng| gen::select(rng, &fragments))
                .concat()
                .into_bytes()
        },
        |bytes| {
            let mut cursor = Cursor::new(bytes.as_slice());
            // Drain the whole stream the way a keep-alive loop would.
            for _ in 0..16 {
                match read_request(&mut cursor, &Limits::default()) {
                    Ok(Some(_)) => continue,
                    Ok(None) | Err(_) => break,
                }
            }
            Ok(())
        },
    );
}

/// Truncating a valid request at any byte boundary yields a clean
/// outcome: a parsed request (cut fell after it), a clean EOF, or a
/// typed error — never a panic or a bogus parse.
#[test]
fn truncation_at_every_boundary_is_handled() {
    let valid =
        b"POST /attribute?year=2018 HTTP/1.1\r\nHost: x\r\nContent-Length: 11\r\n\r\nint main(){";
    Runner::new("http-truncation").cases(256).run(
        |rng| rng.next_below(valid.len() + 1),
        |&cut| {
            let mut cursor = Cursor::new(&valid[..cut]);
            match read_request(&mut cursor, &Limits::default()) {
                Ok(Some(req)) => {
                    prop_assert!(
                        cut == valid.len() && req.body == b"int main(){",
                        "a parse can only succeed on the full request (cut={cut})"
                    );
                }
                Ok(None) => prop_assert!(cut == 0, "clean EOF only on empty input"),
                Err(e) => prop_assert!(e.status() == 0 || e.status() >= 400),
            }
            Ok(())
        },
    );
}

/// Flipping one byte of a valid request never panics the parser, and
/// every reported error carries a 4xx/5xx status or a close condition.
#[test]
fn single_byte_mutations_never_panic() {
    let valid = b"POST /attribute?year=2018&mode=x HTTP/1.1\r\nHost: srv\r\nX-Client-Id: abc\r\nContent-Length: 4\r\n\r\nwxyz".to_vec();
    Runner::new("http-mutation").cases(512).run(
        move |rng| {
            let mut bytes = valid.clone();
            let at = rng.next_below(bytes.len());
            bytes[at] = rng.next_below(256) as u8;
            bytes
        },
        |bytes| {
            let mut cursor = Cursor::new(bytes.as_slice());
            if let Err(e) = read_request(&mut cursor, &Limits::default()) {
                prop_assert!(
                    e.status() == 0 || (400..=599).contains(&e.status()),
                    "error must map to a close or an HTTP status, got {}",
                    e.status()
                );
            }
            Ok(())
        },
    );
}

/// Oversized inputs along every limited dimension map to their
/// specific statuses.
#[test]
fn oversize_maps_to_the_right_status() {
    let limits = Limits {
        max_request_line: 64,
        max_header_line: 64,
        max_headers: 4,
        max_body: 128,
    };
    Runner::new("http-oversize").cases(128).run(
        |rng| (rng.next_below(4), 1 + rng.next_below(64)),
        |&(kind, extra)| {
            let raw = match kind {
                0 => format!("GET /{} HTTP/1.1\r\n\r\n", "a".repeat(64 + extra)),
                1 => format!(
                    "GET / HTTP/1.1\r\nX-Big: {}\r\n\r\n",
                    "b".repeat(64 + extra)
                ),
                2 => {
                    let headers: String =
                        (0..5 + extra % 8).map(|i| format!("H{i}: v\r\n")).collect();
                    format!("GET / HTTP/1.1\r\n{headers}\r\n")
                }
                _ => format!("POST / HTTP/1.1\r\nContent-Length: {}\r\n\r\n", 128 + extra),
            };
            let mut cursor = Cursor::new(raw.as_bytes());
            let err =
                read_request(&mut cursor, &limits).expect_err("oversized input must be rejected");
            let want = [414, 431, 431, 413][kind];
            prop_assert!(
                err.status() == want,
                "kind {kind}: want {want}, got {}",
                err.status()
            );
            Ok(())
        },
    );
}

// ---------------------------------------------------------------- tier 2

/// A registry-configured but never-trained server: malformed traffic
/// is rejected before any handler runs, so these spin up in
/// milliseconds. Short progress deadlines keep the slow-loris test
/// fast.
fn hardened_server() -> RunningServer {
    let mut config = ServeConfig::smoke();
    config.years = vec![2018];
    config.workers = Some(2);
    config.conn = synthattr_serve::ConnPolicy {
        header_deadline_ms: 150,
        body_deadline_ms: 150,
        write_stall_ms: 500,
        idle_budget_ms: 2_000,
        ..synthattr_serve::ConnPolicy::default()
    };
    config.limits = Limits {
        max_request_line: 1024,
        max_header_line: 1024,
        max_headers: 16,
        max_body: 4096,
    };
    Server::bind("127.0.0.1:0", config)
        .expect("bind")
        .spawn()
        .expect("spawn")
}

/// Sends raw bytes, optionally half-closes, and drains whatever the
/// server answers until it closes or `deadline` passes.
fn exchange_raw(server: &RunningServer, payload: &[u8], shutdown_write: bool) -> Vec<u8> {
    let mut stream = TcpStream::connect(server.addr()).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .expect("timeout");
    let _ = stream.write_all(payload);
    let _ = stream.flush();
    if shutdown_write {
        let _ = stream.shutdown(std::net::Shutdown::Write);
    }
    let mut out = Vec::new();
    let mut buf = [0u8; 4096];
    loop {
        match stream.read(&mut buf) {
            Ok(0) | Err(_) => return out,
            Ok(n) => out.extend_from_slice(&buf[..n]),
        }
    }
}

fn assert_alive(server: &RunningServer) {
    let resp = synthattr_serve::client::request(server.addr(), "GET", "/healthz", &[], b"")
        .expect("healthz after abuse");
    assert_eq!(resp.status, 200, "server must keep serving after abuse");
}

/// Byte soup over real TCP: the server answers with a 4xx or closes,
/// never hangs, and stays alive for the next client.
#[test]
fn live_server_survives_byte_soup() {
    let server = hardened_server();
    let mut rng = Pcg64::new(0xB1_7E50 + 7);
    for _ in 0..48 {
        let payload = gen::any_string(&mut rng, 768).into_bytes();
        let reply = exchange_raw(&server, &payload, true);
        if !reply.is_empty() {
            let head = String::from_utf8_lossy(&reply);
            assert!(
                head.starts_with("HTTP/1.1 4") || head.starts_with("HTTP/1.1 5"),
                "soup must map to an error status, got: {head:.60}"
            );
        }
    }
    assert_alive(&server);
    server.shutdown();
}

/// Oversized request lines and headers get their 414/431 over the
/// wire and the connection closes.
#[test]
fn live_server_rejects_oversized_requests() {
    let server = hardened_server();
    let long_target = format!("GET /{} HTTP/1.1\r\n\r\n", "u".repeat(4096));
    let reply = exchange_raw(&server, long_target.as_bytes(), false);
    assert!(
        String::from_utf8_lossy(&reply).starts_with("HTTP/1.1 414"),
        "got: {}",
        String::from_utf8_lossy(&reply)
    );

    let fat_header = format!(
        "GET /healthz HTTP/1.1\r\nX-Pad: {}\r\n\r\n",
        "h".repeat(4096)
    );
    let reply = exchange_raw(&server, fat_header.as_bytes(), false);
    assert!(
        String::from_utf8_lossy(&reply).starts_with("HTTP/1.1 431"),
        "got: {}",
        String::from_utf8_lossy(&reply)
    );
    assert_alive(&server);
    server.shutdown();
}

/// A truncated body (Content-Length promises more than arrives) is a
/// 400, not a hang.
#[test]
fn live_server_rejects_truncated_bodies() {
    let server = hardened_server();
    let reply = exchange_raw(
        &server,
        b"POST /attribute?year=2018 HTTP/1.1\r\nContent-Length: 500\r\n\r\nshort",
        true,
    );
    assert!(
        String::from_utf8_lossy(&reply).starts_with("HTTP/1.1 400"),
        "got: {}",
        String::from_utf8_lossy(&reply)
    );
    assert_alive(&server);
    server.shutdown();
}

/// Slow-loris: a client that sends half a request line and stalls is
/// cut off by the header progress deadline — bounded wall-clock, and
/// because workers rotate instead of camping, no thread is lost.
#[test]
fn live_server_times_out_slow_loris_clients() {
    let server = hardened_server();
    let started = Instant::now();
    let mut stream = TcpStream::connect(server.addr()).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .expect("timeout");
    stream.write_all(b"GET /heal").expect("drip");
    // Stall. The server's 150 ms header deadline must fire long before
    // our own 10 s guard.
    let mut buf = [0u8; 1024];
    let mut reply = Vec::new();
    loop {
        match stream.read(&mut buf) {
            Ok(0) | Err(_) => break,
            Ok(n) => reply.extend_from_slice(&buf[..n]),
        }
    }
    let waited = started.elapsed();
    assert!(
        waited < Duration::from_secs(5),
        "loris connection must be cut near the 150 ms timeout, waited {waited:?}"
    );
    if !reply.is_empty() {
        assert!(
            String::from_utf8_lossy(&reply).starts_with("HTTP/1.1 408"),
            "got: {}",
            String::from_utf8_lossy(&reply)
        );
    }
    assert_alive(&server);
    server.shutdown();
}

/// Pipelined requests on one connection each get exactly one response,
/// in order.
#[test]
fn live_server_answers_pipelined_requests_in_order() {
    let server = hardened_server();
    let reply = exchange_raw(
        &server,
        b"GET /healthz HTTP/1.1\r\n\r\nGET /nope HTTP/1.1\r\n\r\nGET /healthz HTTP/1.1\r\nConnection: close\r\n\r\n",
        false,
    );
    let text = String::from_utf8_lossy(&reply);
    let statuses: Vec<&str> = text
        .split("HTTP/1.1 ")
        .skip(1)
        .map(|chunk| &chunk[..3])
        .collect();
    assert_eq!(
        statuses,
        vec!["200", "404", "200"],
        "three pipelined requests, three ordered responses: {text:.200}"
    );
    server.shutdown();
}
