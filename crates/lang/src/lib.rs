//! A from-scratch C++ subset frontend.
//!
//! The reproduced paper extracts stylometric features from C++ source
//! (Google-Code-Jam-style competitive programs), transforms code with an
//! LLM, and re-attributes it. All three activities need a real language
//! substrate:
//!
//! * [`lexer`] + [`token`] — a hand-written lexer that preserves
//!   comments and enough trivia for layout analysis;
//! * [`parser`] + [`ast`] — a recursive-descent parser producing a
//!   typed AST covering the competitive-programming subset of C++
//!   (functions, declarations, control flow, stream IO, templates over
//!   `vector`/`pair`/`map`/`set`, preprocessor directives);
//! * [`render`] — a style-parameterized pretty-printer: the *same* AST
//!   renders to different concrete source texts depending on a
//!   [`render::RenderStyle`] (indentation, brace placement, spacing,
//!   comment style). This is the substrate both for synthesizing
//!   author-styled corpora and for simulating LLM re-styling;
//! * [`metrics`] — syntactic measurements over the AST (depth
//!   statistics, node-kind frequencies, node-kind bigrams) feeding the
//!   Caliskan-Islam-style feature set;
//! * [`visit`] — a visitor/walker used by metrics and the transformer.
//!
//! # Example
//!
//! ```
//! use synthattr_lang::{parse, render::{render, RenderStyle}};
//!
//! let src = "int main() { int x = 1; return x; }";
//! let unit = parse(src)?;
//! let pretty = render(&unit, &RenderStyle::default());
//! assert!(pretty.contains("int main()"));
//! // The renderer's output is itself parseable (round trip).
//! let again = parse(&pretty)?;
//! assert_eq!(unit.shape_hash(), again.shape_hash());
//! # Ok::<(), synthattr_lang::ParseError>(())
//! ```

pub mod ast;
pub mod error;
pub mod hash;
pub mod lexer;
pub mod metrics;
pub mod parser;
pub mod render;
pub mod token;
pub mod visit;

pub use ast::TranslationUnit;
pub use error::ParseError;
pub use parser::parse;
pub use token::Symbol;

#[cfg(test)]
mod roundtrip_tests {
    use super::*;
    use crate::render::{render, RenderStyle};

    const SAMPLES: &[&str] = &[
        "int main() { return 0; }",
        r#"
#include <iostream>
using namespace std;
int main() {
    int n;
    cin >> n;
    for (int i = 0; i < n; ++i) {
        cout << i << endl;
    }
    return 0;
}
"#,
        r#"
#include <vector>
#include <algorithm>
using namespace std;
double best(vector<int>& xs) {
    double t = 0;
    for (int i = 0; i < (int)xs.size(); i++) {
        t = max(t, (double)xs[i] / 2.0);
    }
    return t;
}
int main() {
    vector<int> v;
    v.push_back(3);
    cout << best(v) << "\n";
}
"#,
    ];

    #[test]
    fn parse_render_parse_fixpoint() {
        for (i, src) in SAMPLES.iter().enumerate() {
            let unit = parse(src).unwrap_or_else(|e| panic!("sample {i}: {e}"));
            let text = render(&unit, &RenderStyle::default());
            let again = parse(&text).unwrap_or_else(|e| panic!("re-parse sample {i}: {e}\n{text}"));
            assert_eq!(unit.shape_hash(), again.shape_hash(), "sample {i}:\n{text}");
        }
    }
}
