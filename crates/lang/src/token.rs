//! Token definitions for the C++ subset lexer.

use std::fmt;

/// A half-open byte span into the original source text.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Span {
    /// Byte offset of the first character.
    pub start: usize,
    /// Byte offset one past the last character.
    pub end: usize,
    /// 1-based line number of the first character.
    pub line: u32,
}

impl Span {
    /// Creates a span covering `start..end` on `line`.
    pub fn new(start: usize, end: usize, line: u32) -> Self {
        Span { start, end, line }
    }
}

/// The kind of a lexed token.
///
/// Keywords of the supported subset get dedicated variants; all other
/// identifiers are [`TokenKind::Ident`]. Multi-character operators are
/// single tokens (`<<`, `>>`, `<=`, `&&`, `+=`, …).
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    // Literals and names -------------------------------------------------
    /// An integer literal, e.g. `42` (suffixes `LL`/`u` are absorbed).
    IntLit(i64),
    /// A floating literal; the original spelling is preserved.
    FloatLit(String),
    /// A double-quoted string literal (contents, unescaped).
    StrLit(String),
    /// A single-quoted character literal.
    CharLit(char),
    /// An identifier or non-keyword name.
    Ident(String),

    // Keywords ------------------------------------------------------------
    KwInt,
    KwLong,
    KwShort,
    KwChar,
    KwBool,
    KwFloat,
    KwDouble,
    KwVoid,
    KwAuto,
    KwConst,
    KwUnsigned,
    KwSigned,
    KwIf,
    KwElse,
    KwFor,
    KwWhile,
    KwDo,
    KwReturn,
    KwBreak,
    KwContinue,
    KwSwitch,
    KwCase,
    KwDefault,
    KwStruct,
    KwTypedef,
    KwUsing,
    KwNamespace,
    KwTrue,
    KwFalse,
    KwStaticCast,
    KwSizeof,

    // Punctuation and operators -------------------------------------------
    LParen,
    RParen,
    LBrace,
    RBrace,
    LBracket,
    RBracket,
    Semi,
    Comma,
    Colon,
    ColonColon,
    Question,
    Dot,
    Arrow,
    Plus,
    Minus,
    Star,
    Slash,
    Percent,
    PlusPlus,
    MinusMinus,
    Assign,
    PlusAssign,
    MinusAssign,
    StarAssign,
    SlashAssign,
    PercentAssign,
    Eq,
    Ne,
    Lt,
    Gt,
    Le,
    Ge,
    AndAnd,
    OrOr,
    Not,
    Amp,
    AmpAssign,
    Pipe,
    PipeAssign,
    Caret,
    CaretAssign,
    Tilde,
    Shl,
    Shr,
    ShlAssign,
    ShrAssign,

    // Trivia the parser cares about ----------------------------------------
    /// A `//` or `/* */` comment; `(text, is_block)`.
    Comment(String, bool),
    /// A full preprocessor line starting with `#` (without newline).
    Directive(String),

    /// End of input sentinel.
    Eof,
}

impl TokenKind {
    /// Returns the keyword kind for `word`, if it is a keyword of the
    /// supported subset.
    pub fn keyword(word: &str) -> Option<TokenKind> {
        use TokenKind::*;
        Some(match word {
            "int" => KwInt,
            "long" => KwLong,
            "short" => KwShort,
            "char" => KwChar,
            "bool" => KwBool,
            "float" => KwFloat,
            "double" => KwDouble,
            "void" => KwVoid,
            "auto" => KwAuto,
            "const" => KwConst,
            "unsigned" => KwUnsigned,
            "signed" => KwSigned,
            "if" => KwIf,
            "else" => KwElse,
            "for" => KwFor,
            "while" => KwWhile,
            "do" => KwDo,
            "return" => KwReturn,
            "break" => KwBreak,
            "continue" => KwContinue,
            "switch" => KwSwitch,
            "case" => KwCase,
            "default" => KwDefault,
            "struct" => KwStruct,
            "typedef" => KwTypedef,
            "using" => KwUsing,
            "namespace" => KwNamespace,
            "true" => KwTrue,
            "false" => KwFalse,
            "static_cast" => KwStaticCast,
            "sizeof" => KwSizeof,
            _ => return None,
        })
    }

    /// Whether this token can begin a type in the subset grammar.
    pub fn starts_type(&self) -> bool {
        use TokenKind::*;
        matches!(
            self,
            KwInt
                | KwLong
                | KwShort
                | KwChar
                | KwBool
                | KwFloat
                | KwDouble
                | KwVoid
                | KwAuto
                | KwConst
                | KwUnsigned
                | KwSigned
        )
    }
}

impl fmt::Display for TokenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        use TokenKind::*;
        match self {
            IntLit(v) => write!(f, "{v}"),
            FloatLit(s) => write!(f, "{s}"),
            StrLit(s) => write!(f, "\"{s}\""),
            CharLit(c) => write!(f, "'{c}'"),
            Ident(s) => write!(f, "{s}"),
            Comment(_, _) => write!(f, "<comment>"),
            Directive(d) => write!(f, "{d}"),
            Eof => write!(f, "<eof>"),
            other => {
                let s = match other {
                    KwInt => "int",
                    KwLong => "long",
                    KwShort => "short",
                    KwChar => "char",
                    KwBool => "bool",
                    KwFloat => "float",
                    KwDouble => "double",
                    KwVoid => "void",
                    KwAuto => "auto",
                    KwConst => "const",
                    KwUnsigned => "unsigned",
                    KwSigned => "signed",
                    KwIf => "if",
                    KwElse => "else",
                    KwFor => "for",
                    KwWhile => "while",
                    KwDo => "do",
                    KwReturn => "return",
                    KwBreak => "break",
                    KwContinue => "continue",
                    KwSwitch => "switch",
                    KwCase => "case",
                    KwDefault => "default",
                    KwStruct => "struct",
                    KwTypedef => "typedef",
                    KwUsing => "using",
                    KwNamespace => "namespace",
                    KwTrue => "true",
                    KwFalse => "false",
                    KwStaticCast => "static_cast",
                    KwSizeof => "sizeof",
                    LParen => "(",
                    RParen => ")",
                    LBrace => "{",
                    RBrace => "}",
                    LBracket => "[",
                    RBracket => "]",
                    Semi => ";",
                    Comma => ",",
                    Colon => ":",
                    ColonColon => "::",
                    Question => "?",
                    Dot => ".",
                    Arrow => "->",
                    Plus => "+",
                    Minus => "-",
                    Star => "*",
                    Slash => "/",
                    Percent => "%",
                    PlusPlus => "++",
                    MinusMinus => "--",
                    Assign => "=",
                    PlusAssign => "+=",
                    MinusAssign => "-=",
                    StarAssign => "*=",
                    SlashAssign => "/=",
                    PercentAssign => "%=",
                    Eq => "==",
                    Ne => "!=",
                    Lt => "<",
                    Gt => ">",
                    Le => "<=",
                    Ge => ">=",
                    AndAnd => "&&",
                    OrOr => "||",
                    Not => "!",
                    Amp => "&",
                    AmpAssign => "&=",
                    Pipe => "|",
                    PipeAssign => "|=",
                    Caret => "^",
                    CaretAssign => "^=",
                    Tilde => "~",
                    Shl => "<<",
                    Shr => ">>",
                    ShlAssign => "<<=",
                    ShrAssign => ">>=",
                    _ => unreachable!(),
                };
                write!(f, "{s}")
            }
        }
    }
}

/// A token with its source span.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// What was lexed.
    pub kind: TokenKind,
    /// Where it was lexed from.
    pub span: Span,
}

impl Token {
    /// Creates a token.
    pub fn new(kind: TokenKind, span: Span) -> Self {
        Token { kind, span }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keyword_lookup() {
        assert_eq!(TokenKind::keyword("int"), Some(TokenKind::KwInt));
        assert_eq!(
            TokenKind::keyword("static_cast"),
            Some(TokenKind::KwStaticCast)
        );
        assert_eq!(TokenKind::keyword("vector"), None);
        assert_eq!(TokenKind::keyword(""), None);
    }

    #[test]
    fn starts_type_classification() {
        assert!(TokenKind::KwInt.starts_type());
        assert!(TokenKind::KwConst.starts_type());
        assert!(!TokenKind::KwIf.starts_type());
        assert!(!TokenKind::Ident("vector".into()).starts_type());
    }

    #[test]
    fn display_matches_surface_syntax() {
        assert_eq!(TokenKind::Shl.to_string(), "<<");
        assert_eq!(TokenKind::KwReturn.to_string(), "return");
        assert_eq!(TokenKind::IntLit(7).to_string(), "7");
        assert_eq!(TokenKind::StrLit("hi".into()).to_string(), "\"hi\"");
    }
}
