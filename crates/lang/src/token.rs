//! Token definitions for the C++ subset lexer, plus the interned
//! identifier symbol table.

use std::borrow::Borrow;
use std::collections::HashSet;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::{Arc, Mutex, OnceLock};

/// An interned identifier.
///
/// Every distinct identifier spelling is stored exactly once in a
/// process-wide symbol table; a `Symbol` is a shared handle to that
/// storage, so cloning a symbol (and cloning tokens or peeking ahead
/// in the parser) is a reference-count bump instead of a fresh
/// `String` allocation. The experiment pipelines lex the same small
/// identifier vocabulary millions of times, which is why the lexer
/// interns instead of allocating per occurrence.
///
/// Interning is purely an allocation optimisation: equality, hashing
/// and ordering are defined on the spelling, so results never depend
/// on interner state.
#[derive(Clone)]
pub struct Symbol(Arc<str>);

/// The process-wide symbol table, sharded to keep parallel pipeline
/// workers from serialising on one lock. Shard choice uses the same
/// FNV-1a hash as the table lookups; the table only ever grows, which
/// is fine for this workload (the identifier vocabulary is bounded by
/// the generator's naming concepts).
const INTERNER_SHARDS: usize = 32;

fn interner() -> &'static [Mutex<HashSet<Arc<str>>>; INTERNER_SHARDS] {
    static TABLE: OnceLock<[Mutex<HashSet<Arc<str>>>; INTERNER_SHARDS]> = OnceLock::new();
    TABLE.get_or_init(|| std::array::from_fn(|_| Mutex::new(HashSet::new())))
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

impl Symbol {
    /// Returns the unique symbol for `text`, creating it on first use.
    pub fn intern(text: &str) -> Symbol {
        let shard = &interner()[(fnv1a(text.as_bytes()) as usize) % INTERNER_SHARDS];
        let mut set = shard.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(existing) = set.get(text) {
            return Symbol(Arc::clone(existing));
        }
        let arc: Arc<str> = Arc::from(text);
        set.insert(Arc::clone(&arc));
        Symbol(arc)
    }

    /// The interned spelling.
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl std::ops::Deref for Symbol {
    type Target = str;
    fn deref(&self) -> &str {
        &self.0
    }
}

impl PartialEq for Symbol {
    fn eq(&self, other: &Symbol) -> bool {
        // Interned symbols with equal spellings share storage, so the
        // pointer check settles almost every comparison.
        Arc::ptr_eq(&self.0, &other.0) || self.0 == other.0
    }
}

impl Eq for Symbol {}

impl PartialEq<str> for Symbol {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == other
    }
}

impl PartialEq<&str> for Symbol {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == *other
    }
}

impl Hash for Symbol {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.as_str().hash(state);
    }
}

impl Borrow<str> for Symbol {
    fn borrow(&self) -> &str {
        self.as_str()
    }
}

impl fmt::Debug for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self.as_str(), f)
    }
}

impl fmt::Display for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl From<&str> for Symbol {
    fn from(s: &str) -> Symbol {
        Symbol::intern(s)
    }
}

impl From<String> for Symbol {
    fn from(s: String) -> Symbol {
        Symbol::intern(&s)
    }
}

/// A half-open byte span into the original source text.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Span {
    /// Byte offset of the first character.
    pub start: usize,
    /// Byte offset one past the last character.
    pub end: usize,
    /// 1-based line number of the first character.
    pub line: u32,
}

impl Span {
    /// Creates a span covering `start..end` on `line`.
    pub fn new(start: usize, end: usize, line: u32) -> Self {
        Span { start, end, line }
    }
}

/// The kind of a lexed token.
///
/// Keywords of the supported subset get dedicated variants; all other
/// identifiers are [`TokenKind::Ident`]. Multi-character operators are
/// single tokens (`<<`, `>>`, `<=`, `&&`, `+=`, …).
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    // Literals and names -------------------------------------------------
    /// An integer literal, e.g. `42` (suffixes `LL`/`u` are absorbed).
    IntLit(i64),
    /// A floating literal; the original spelling is preserved.
    FloatLit(String),
    /// A double-quoted string literal (contents, unescaped).
    StrLit(String),
    /// A single-quoted character literal.
    CharLit(char),
    /// An identifier or non-keyword name, interned in the process-wide
    /// symbol table (see [`Symbol`]).
    Ident(Symbol),

    // Keywords ------------------------------------------------------------
    KwInt,
    KwLong,
    KwShort,
    KwChar,
    KwBool,
    KwFloat,
    KwDouble,
    KwVoid,
    KwAuto,
    KwConst,
    KwUnsigned,
    KwSigned,
    KwIf,
    KwElse,
    KwFor,
    KwWhile,
    KwDo,
    KwReturn,
    KwBreak,
    KwContinue,
    KwSwitch,
    KwCase,
    KwDefault,
    KwStruct,
    KwTypedef,
    KwUsing,
    KwNamespace,
    KwTrue,
    KwFalse,
    KwStaticCast,
    KwSizeof,

    // Punctuation and operators -------------------------------------------
    LParen,
    RParen,
    LBrace,
    RBrace,
    LBracket,
    RBracket,
    Semi,
    Comma,
    Colon,
    ColonColon,
    Question,
    Dot,
    Arrow,
    Plus,
    Minus,
    Star,
    Slash,
    Percent,
    PlusPlus,
    MinusMinus,
    Assign,
    PlusAssign,
    MinusAssign,
    StarAssign,
    SlashAssign,
    PercentAssign,
    Eq,
    Ne,
    Lt,
    Gt,
    Le,
    Ge,
    AndAnd,
    OrOr,
    Not,
    Amp,
    AmpAssign,
    Pipe,
    PipeAssign,
    Caret,
    CaretAssign,
    Tilde,
    Shl,
    Shr,
    ShlAssign,
    ShrAssign,

    // Trivia the parser cares about ----------------------------------------
    /// A `//` or `/* */` comment; `(text, is_block)`.
    Comment(String, bool),
    /// A full preprocessor line starting with `#` (without newline).
    Directive(String),

    /// End of input sentinel.
    Eof,
}

impl TokenKind {
    /// Returns the keyword kind for `word`, if it is a keyword of the
    /// supported subset.
    pub fn keyword(word: &str) -> Option<TokenKind> {
        use TokenKind::*;
        Some(match word {
            "int" => KwInt,
            "long" => KwLong,
            "short" => KwShort,
            "char" => KwChar,
            "bool" => KwBool,
            "float" => KwFloat,
            "double" => KwDouble,
            "void" => KwVoid,
            "auto" => KwAuto,
            "const" => KwConst,
            "unsigned" => KwUnsigned,
            "signed" => KwSigned,
            "if" => KwIf,
            "else" => KwElse,
            "for" => KwFor,
            "while" => KwWhile,
            "do" => KwDo,
            "return" => KwReturn,
            "break" => KwBreak,
            "continue" => KwContinue,
            "switch" => KwSwitch,
            "case" => KwCase,
            "default" => KwDefault,
            "struct" => KwStruct,
            "typedef" => KwTypedef,
            "using" => KwUsing,
            "namespace" => KwNamespace,
            "true" => KwTrue,
            "false" => KwFalse,
            "static_cast" => KwStaticCast,
            "sizeof" => KwSizeof,
            _ => return None,
        })
    }

    /// Whether this token can begin a type in the subset grammar.
    pub fn starts_type(&self) -> bool {
        use TokenKind::*;
        matches!(
            self,
            KwInt
                | KwLong
                | KwShort
                | KwChar
                | KwBool
                | KwFloat
                | KwDouble
                | KwVoid
                | KwAuto
                | KwConst
                | KwUnsigned
                | KwSigned
        )
    }
}

impl fmt::Display for TokenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        use TokenKind::*;
        match self {
            IntLit(v) => write!(f, "{v}"),
            FloatLit(s) => write!(f, "{s}"),
            StrLit(s) => write!(f, "\"{s}\""),
            CharLit(c) => write!(f, "'{c}'"),
            Ident(s) => write!(f, "{s}"),
            Comment(_, _) => write!(f, "<comment>"),
            Directive(d) => write!(f, "{d}"),
            Eof => write!(f, "<eof>"),
            other => {
                let s = match other {
                    KwInt => "int",
                    KwLong => "long",
                    KwShort => "short",
                    KwChar => "char",
                    KwBool => "bool",
                    KwFloat => "float",
                    KwDouble => "double",
                    KwVoid => "void",
                    KwAuto => "auto",
                    KwConst => "const",
                    KwUnsigned => "unsigned",
                    KwSigned => "signed",
                    KwIf => "if",
                    KwElse => "else",
                    KwFor => "for",
                    KwWhile => "while",
                    KwDo => "do",
                    KwReturn => "return",
                    KwBreak => "break",
                    KwContinue => "continue",
                    KwSwitch => "switch",
                    KwCase => "case",
                    KwDefault => "default",
                    KwStruct => "struct",
                    KwTypedef => "typedef",
                    KwUsing => "using",
                    KwNamespace => "namespace",
                    KwTrue => "true",
                    KwFalse => "false",
                    KwStaticCast => "static_cast",
                    KwSizeof => "sizeof",
                    LParen => "(",
                    RParen => ")",
                    LBrace => "{",
                    RBrace => "}",
                    LBracket => "[",
                    RBracket => "]",
                    Semi => ";",
                    Comma => ",",
                    Colon => ":",
                    ColonColon => "::",
                    Question => "?",
                    Dot => ".",
                    Arrow => "->",
                    Plus => "+",
                    Minus => "-",
                    Star => "*",
                    Slash => "/",
                    Percent => "%",
                    PlusPlus => "++",
                    MinusMinus => "--",
                    Assign => "=",
                    PlusAssign => "+=",
                    MinusAssign => "-=",
                    StarAssign => "*=",
                    SlashAssign => "/=",
                    PercentAssign => "%=",
                    Eq => "==",
                    Ne => "!=",
                    Lt => "<",
                    Gt => ">",
                    Le => "<=",
                    Ge => ">=",
                    AndAnd => "&&",
                    OrOr => "||",
                    Not => "!",
                    Amp => "&",
                    AmpAssign => "&=",
                    Pipe => "|",
                    PipeAssign => "|=",
                    Caret => "^",
                    CaretAssign => "^=",
                    Tilde => "~",
                    Shl => "<<",
                    Shr => ">>",
                    ShlAssign => "<<=",
                    ShrAssign => ">>=",
                    _ => unreachable!(),
                };
                write!(f, "{s}")
            }
        }
    }
}

/// A token with its source span.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// What was lexed.
    pub kind: TokenKind,
    /// Where it was lexed from.
    pub span: Span,
}

impl Token {
    /// Creates a token.
    pub fn new(kind: TokenKind, span: Span) -> Self {
        Token { kind, span }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keyword_lookup() {
        assert_eq!(TokenKind::keyword("int"), Some(TokenKind::KwInt));
        assert_eq!(
            TokenKind::keyword("static_cast"),
            Some(TokenKind::KwStaticCast)
        );
        assert_eq!(TokenKind::keyword("vector"), None);
        assert_eq!(TokenKind::keyword(""), None);
    }

    #[test]
    fn starts_type_classification() {
        assert!(TokenKind::KwInt.starts_type());
        assert!(TokenKind::KwConst.starts_type());
        assert!(!TokenKind::KwIf.starts_type());
        assert!(!TokenKind::Ident("vector".into()).starts_type());
    }

    #[test]
    fn display_matches_surface_syntax() {
        assert_eq!(TokenKind::Shl.to_string(), "<<");
        assert_eq!(TokenKind::KwReturn.to_string(), "return");
        assert_eq!(TokenKind::IntLit(7).to_string(), "7");
        assert_eq!(TokenKind::StrLit("hi".into()).to_string(), "\"hi\"");
    }

    #[test]
    fn symbols_intern_to_shared_storage() {
        let a = Symbol::intern("total_count");
        let b = Symbol::intern("total_count");
        let c = Symbol::intern("other_name");
        assert_eq!(a, b);
        assert!(
            Arc::ptr_eq(&a.0, &b.0),
            "equal spellings must share storage"
        );
        assert_ne!(a, c);
        assert_eq!(a, *"total_count");
        assert_eq!(a, "total_count");
        assert_eq!(a.to_string(), "total_count");
        assert_eq!(format!("{a:?}"), "\"total_count\"");
    }

    #[test]
    fn symbol_hash_matches_str_hash() {
        use std::collections::hash_map::DefaultHasher;
        let sym = Symbol::intern("acc");
        let mut h1 = DefaultHasher::new();
        sym.hash(&mut h1);
        let mut h2 = DefaultHasher::new();
        "acc".hash(&mut h2);
        assert_eq!(h1.finish(), h2.finish());
    }
}
