//! Recursive-descent parser for the C++ subset.
//!
//! The grammar covers what competitive-programming C++ actually uses:
//! includes/defines, `using namespace`, typedefs/alias declarations,
//! global variables, function definitions, the full statement repertoire
//! (declarations, `if`/`for`/range-`for`/`while`/`do`, `return`,
//! `break`/`continue`, nested blocks), and C++ expressions including
//! stream IO (`cin >> x`, `cout << ...`), C-style and `static_cast`
//! casts, calls, member access, indexing, and ternaries.
//!
//! Deliberately unsupported (produce a [`ParseError`]): classes/structs,
//! templates definitions, lambdas, `switch`, pointers, exceptions. The
//! corpus generator never emits them and GCJ-style code in the subset
//! does not need them.

use crate::ast::*;
use crate::error::ParseError;
use crate::lexer::lex;
use crate::token::{Token, TokenKind};

/// Parses a C++ translation unit.
///
/// # Errors
///
/// Returns the first lexing or parsing error encountered, with its
/// source line.
///
/// # Example
///
/// ```
/// let unit = synthattr_lang::parse("int add(int a, int b) { return a + b; }")?;
/// assert!(unit.function("add").is_some());
/// # Ok::<(), synthattr_lang::ParseError>(())
/// ```
pub fn parse(src: &str) -> Result<TranslationUnit, ParseError> {
    let tokens = lex(src)?;
    Parser::new(tokens).unit()
}

/// Parses `src` with additional names pre-registered as type names, as
/// if `typedef`s introducing them had already been seen.
///
/// The parser's only cross-item state is its running type-name list
/// (`typedef` / `using x = ...` feed type disambiguation for later
/// items). Parsing item *k* of a unit therefore equals parsing item
/// *k*'s text alone with the aliases of items `0..k` supplied here —
/// which is what lets the incremental frontend re-parse only the
/// regions whose text changed.
///
/// # Errors
///
/// Same as [`parse`].
pub fn parse_with_type_context(
    src: &str,
    extra_types: &[String],
) -> Result<TranslationUnit, ParseError> {
    let tokens = lex(src)?;
    let mut parser = Parser::new(tokens);
    parser.type_names.extend(extra_types.iter().cloned());
    parser.unit()
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
    /// Names introduced by `typedef` / `using x = ...`, plus the
    /// standard-library names treated as types.
    type_names: Vec<String>,
}

impl Parser {
    fn new(tokens: Vec<Token>) -> Self {
        Parser {
            tokens,
            pos: 0,
            type_names: vec![
                "string".into(),
                "vector".into(),
                "pair".into(),
                "map".into(),
                "set".into(),
            ],
        }
    }

    // -- cursor helpers ----------------------------------------------------

    fn raw(&self) -> &TokenKind {
        &self.tokens[self.pos].kind
    }

    fn line(&self) -> u32 {
        self.tokens[self.pos].span.line
    }

    /// Skips comment tokens (they are only significant at statement /
    /// item boundaries, where callers look at `raw()` first).
    fn skip_comments(&mut self) {
        while matches!(self.raw(), TokenKind::Comment(_, _)) {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> &TokenKind {
        self.skip_comments();
        self.raw()
    }

    fn peek_ahead(&self, n: usize) -> &TokenKind {
        let mut i = self.pos;
        let mut remaining = n;
        loop {
            if let TokenKind::Comment(_, _) = self.tokens[i].kind {
                i += 1;
                continue;
            }
            if remaining == 0 {
                return &self.tokens[i].kind;
            }
            remaining -= 1;
            i += 1;
        }
    }

    fn advance(&mut self) -> TokenKind {
        self.skip_comments();
        let kind = self.tokens[self.pos].kind.clone();
        if !matches!(kind, TokenKind::Eof) {
            self.pos += 1;
        }
        kind
    }

    fn eat(&mut self, kind: &TokenKind) -> bool {
        if self.peek() == kind {
            self.advance();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, kind: &TokenKind) -> Result<(), ParseError> {
        if self.eat(kind) {
            Ok(())
        } else {
            Err(self.err(format!("expected `{}`, found `{}`", kind, self.raw())))
        }
    }

    fn err(&self, msg: impl Into<String>) -> ParseError {
        ParseError::new(msg, self.line())
    }

    fn expect_ident(&mut self) -> Result<String, ParseError> {
        match self.peek().clone() {
            TokenKind::Ident(name) => {
                self.advance();
                Ok(name.to_string())
            }
            other => Err(self.err(format!("expected identifier, found `{other}`"))),
        }
    }

    /// Consumes a `>` in type context, splitting a `>>` token in two so
    /// that `vector<vector<int>>` parses.
    fn expect_close_angle(&mut self) -> Result<(), ParseError> {
        self.skip_comments();
        match self.raw() {
            TokenKind::Gt => {
                self.pos += 1;
                Ok(())
            }
            TokenKind::Shr => {
                self.tokens[self.pos].kind = TokenKind::Gt;
                Ok(())
            }
            other => Err(self.err(format!("expected `>`, found `{other}`"))),
        }
    }

    // -- items --------------------------------------------------------------

    fn unit(mut self) -> Result<TranslationUnit, ParseError> {
        let mut items = Vec::new();
        loop {
            match self.raw().clone() {
                TokenKind::Eof => break,
                TokenKind::Comment(text, block) => {
                    self.pos += 1;
                    items.push(Item::Comment(Comment { text, block }));
                }
                TokenKind::Directive(text) => {
                    self.pos += 1;
                    items.push(parse_directive(&text));
                }
                TokenKind::KwUsing => {
                    items.push(self.using_item()?);
                }
                TokenKind::KwTypedef => {
                    self.advance();
                    let ty = self.parse_type()?;
                    let name = self.expect_ident()?;
                    self.expect(&TokenKind::Semi)?;
                    self.type_names.push(name.clone());
                    items.push(Item::Typedef { ty, name });
                }
                TokenKind::KwStruct => {
                    return Err(self.err("struct definitions are outside the supported subset"));
                }
                _ => items.push(self.function_or_global()?),
            }
        }
        Ok(TranslationUnit { items })
    }

    fn using_item(&mut self) -> Result<Item, ParseError> {
        self.advance(); // `using`
        if self.eat(&TokenKind::KwNamespace) {
            let name = self.expect_ident()?;
            self.expect(&TokenKind::Semi)?;
            Ok(Item::UsingNamespace(name))
        } else {
            let name = self.expect_ident()?;
            self.expect(&TokenKind::Assign)?;
            let ty = self.parse_type()?;
            self.expect(&TokenKind::Semi)?;
            self.type_names.push(name.clone());
            Ok(Item::UsingAlias { name, ty })
        }
    }

    fn function_or_global(&mut self) -> Result<Item, ParseError> {
        let ty = self.parse_type()?;
        let name = self.expect_ident()?;
        if self.peek() == &TokenKind::LParen {
            let func = self.function_rest(ty, name)?;
            Ok(Item::Function(func))
        } else {
            let decl = self.declaration_rest(ty, name)?;
            self.expect(&TokenKind::Semi)?;
            Ok(Item::GlobalVar(decl))
        }
    }

    fn function_rest(&mut self, ret: Type, name: String) -> Result<Function, ParseError> {
        self.expect(&TokenKind::LParen)?;
        let mut params = Vec::new();
        if self.peek() != &TokenKind::RParen {
            loop {
                let ty = self.parse_type()?;
                let pname = self.expect_ident()?;
                params.push(Param { ty, name: pname });
                if !self.eat(&TokenKind::Comma) {
                    break;
                }
            }
        }
        self.expect(&TokenKind::RParen)?;
        let body = self.block()?;
        Ok(Function {
            ret,
            name,
            params,
            body,
        })
    }

    // -- types ----------------------------------------------------------------

    fn is_type_start(&mut self) -> bool {
        let first = self.peek().clone();
        if first.starts_type() {
            return true;
        }
        if let TokenKind::Ident(name) = &first {
            if self.type_names.iter().any(|t| name == t.as_str()) {
                // `vector<`, `string x`, `pair<`, or a typedef name
                // followed by an identifier.
                return matches!(
                    self.peek_ahead(1),
                    TokenKind::Lt | TokenKind::Ident(_) | TokenKind::Amp
                );
            }
        }
        false
    }

    fn parse_type(&mut self) -> Result<Type, ParseError> {
        let mut is_const = false;
        if self.eat(&TokenKind::KwConst) {
            is_const = true;
        }
        let mut ty = self.base_type()?;
        if self.eat(&TokenKind::KwConst) {
            // East const: `int const`.
            is_const = true;
        }
        if is_const {
            ty = ty.as_const();
        }
        if self.eat(&TokenKind::Amp) {
            ty = ty.by_ref();
        }
        Ok(ty)
    }

    fn base_type(&mut self) -> Result<Type, ParseError> {
        use TokenKind::*;
        match self.peek().clone() {
            KwVoid => {
                self.advance();
                Ok(Type::Void)
            }
            KwBool => {
                self.advance();
                Ok(Type::Bool)
            }
            KwChar => {
                self.advance();
                Ok(Type::Char)
            }
            KwFloat => {
                self.advance();
                Ok(Type::Float)
            }
            KwDouble => {
                self.advance();
                Ok(Type::Double)
            }
            KwAuto => {
                self.advance();
                Ok(Type::Auto)
            }
            KwUnsigned => {
                self.advance();
                // Absorb `unsigned int` / `unsigned long long`.
                if self.eat(&KwLong) {
                    self.eat(&KwLong);
                    self.eat(&KwInt);
                } else {
                    self.eat(&KwInt);
                }
                Ok(Type::Unsigned)
            }
            KwSigned => {
                self.advance();
                self.eat(&KwInt);
                Ok(Type::Int)
            }
            KwInt => {
                self.advance();
                Ok(Type::Int)
            }
            KwShort => {
                self.advance();
                self.eat(&KwInt);
                Ok(Type::Int)
            }
            KwLong => {
                self.advance();
                if self.eat(&KwLong) {
                    self.eat(&KwInt);
                    Ok(Type::LongLong)
                } else {
                    self.eat(&KwInt);
                    Ok(Type::Long)
                }
            }
            Ident(name) => {
                self.advance();
                // `std::` qualification.
                let name = if name == "std" && self.eat(&ColonColon) {
                    self.expect_ident()?
                } else {
                    name.to_string()
                };
                match name.as_str() {
                    "string" => Ok(Type::Str),
                    "vector" => {
                        self.expect(&Lt)?;
                        let inner = self.parse_type()?;
                        self.expect_close_angle()?;
                        Ok(Type::Vector(Box::new(inner)))
                    }
                    "set" => {
                        self.expect(&Lt)?;
                        let inner = self.parse_type()?;
                        self.expect_close_angle()?;
                        Ok(Type::Set(Box::new(inner)))
                    }
                    "pair" => {
                        self.expect(&Lt)?;
                        let a = self.parse_type()?;
                        self.expect(&Comma)?;
                        let b = self.parse_type()?;
                        self.expect_close_angle()?;
                        Ok(Type::Pair(Box::new(a), Box::new(b)))
                    }
                    "map" => {
                        self.expect(&Lt)?;
                        let k = self.parse_type()?;
                        self.expect(&Comma)?;
                        let v = self.parse_type()?;
                        self.expect_close_angle()?;
                        Ok(Type::Map(Box::new(k), Box::new(v)))
                    }
                    _ => Ok(Type::Named(name)),
                }
            }
            other => Err(self.err(format!("expected type, found `{other}`"))),
        }
    }

    // -- statements -------------------------------------------------------------

    fn block(&mut self) -> Result<Block, ParseError> {
        self.expect(&TokenKind::LBrace)?;
        let mut stmts = Vec::new();
        loop {
            match self.raw().clone() {
                TokenKind::RBrace => {
                    self.pos += 1;
                    return Ok(Block::new(stmts));
                }
                TokenKind::Eof => return Err(self.err("unexpected end of file in block")),
                TokenKind::Comment(text, block) => {
                    self.pos += 1;
                    stmts.push(Stmt::Comment(Comment { text, block }));
                }
                _ => stmts.push(self.statement()?),
            }
        }
    }

    /// Parses a statement; when the next statement is a single
    /// (non-block) statement used as a control-flow body, callers wrap
    /// it in a [`Block`] via [`Parser::body`].
    fn statement(&mut self) -> Result<Stmt, ParseError> {
        use TokenKind::*;
        match self.peek().clone() {
            LBrace => Ok(Stmt::Block(self.block()?)),
            Semi => {
                self.advance();
                Ok(Stmt::Empty)
            }
            KwReturn => {
                self.advance();
                if self.eat(&Semi) {
                    Ok(Stmt::Return(None))
                } else {
                    let e = self.expression()?;
                    self.expect(&Semi)?;
                    Ok(Stmt::Return(Some(e)))
                }
            }
            KwBreak => {
                self.advance();
                self.expect(&Semi)?;
                Ok(Stmt::Break)
            }
            KwContinue => {
                self.advance();
                self.expect(&Semi)?;
                Ok(Stmt::Continue)
            }
            KwIf => self.if_statement(),
            KwFor => self.for_statement(),
            KwWhile => {
                self.advance();
                self.expect(&LParen)?;
                let cond = self.expression()?;
                self.expect(&RParen)?;
                let body = self.body()?;
                Ok(Stmt::While { cond, body })
            }
            KwDo => {
                self.advance();
                let body = self.body()?;
                self.expect(&KwWhile)?;
                self.expect(&LParen)?;
                let cond = self.expression()?;
                self.expect(&RParen)?;
                self.expect(&Semi)?;
                Ok(Stmt::DoWhile { body, cond })
            }
            KwSwitch => Err(self.err("switch statements are outside the supported subset")),
            _ => {
                if self.is_type_start() {
                    let decl = self.declaration()?;
                    self.expect(&Semi)?;
                    Ok(Stmt::Decl(decl))
                } else {
                    let e = self.expression()?;
                    self.expect(&Semi)?;
                    Ok(Stmt::Expr(e))
                }
            }
        }
    }

    /// Parses a control-flow body: either a braced block or a single
    /// statement promoted to a one-statement block.
    fn body(&mut self) -> Result<Block, ParseError> {
        if self.peek() == &TokenKind::LBrace {
            self.block()
        } else {
            Ok(Block::new(vec![self.statement()?]))
        }
    }

    fn if_statement(&mut self) -> Result<Stmt, ParseError> {
        self.advance(); // `if`
        self.expect(&TokenKind::LParen)?;
        let cond = self.expression()?;
        self.expect(&TokenKind::RParen)?;
        let then_branch = self.body()?;
        let else_branch = if self.eat(&TokenKind::KwElse) {
            if self.peek() == &TokenKind::KwIf {
                // `else if` chain: represent as a block with one `If`.
                Some(Block::new(vec![self.if_statement()?]))
            } else {
                Some(self.body()?)
            }
        } else {
            None
        };
        Ok(Stmt::If {
            cond,
            then_branch,
            else_branch,
        })
    }

    fn for_statement(&mut self) -> Result<Stmt, ParseError> {
        self.advance(); // `for`
        self.expect(&TokenKind::LParen)?;

        // Try a range-based for: `type name : iterable`.
        let checkpoint = self.pos;
        if self.is_type_start() || self.peek() == &TokenKind::KwAuto {
            if let Ok(ty) = self.parse_type() {
                if let TokenKind::Ident(name) = self.peek().clone() {
                    if self.peek_ahead(1) == &TokenKind::Colon {
                        self.advance(); // name
                        self.advance(); // `:`
                        let iterable = self.expression()?;
                        self.expect(&TokenKind::RParen)?;
                        let body = self.body()?;
                        let (ty, by_ref) = match ty {
                            Type::Ref(inner) => (*inner, true),
                            other => (other, false),
                        };
                        return Ok(Stmt::ForEach {
                            ty,
                            name: name.to_string(),
                            by_ref,
                            iterable,
                            body,
                        });
                    }
                }
            }
            self.pos = checkpoint;
        }

        let init = if self.eat(&TokenKind::Semi) {
            None
        } else if self.is_type_start() {
            let d = self.declaration()?;
            self.expect(&TokenKind::Semi)?;
            Some(Box::new(Stmt::Decl(d)))
        } else {
            let e = self.expression()?;
            self.expect(&TokenKind::Semi)?;
            Some(Box::new(Stmt::Expr(e)))
        };
        let cond = if self.peek() == &TokenKind::Semi {
            None
        } else {
            Some(self.expression()?)
        };
        self.expect(&TokenKind::Semi)?;
        let step = if self.peek() == &TokenKind::RParen {
            None
        } else {
            Some(self.expression()?)
        };
        self.expect(&TokenKind::RParen)?;
        let body = self.body()?;
        Ok(Stmt::For {
            init,
            cond,
            step,
            body,
        })
    }

    fn declaration(&mut self) -> Result<Declaration, ParseError> {
        let ty = self.parse_type()?;
        let name = self.expect_ident()?;
        self.declaration_rest(ty, name)
    }

    fn declaration_rest(&mut self, ty: Type, first: String) -> Result<Declaration, ParseError> {
        let mut declarators = Vec::new();
        let mut name = first;
        loop {
            let array = if self.eat(&TokenKind::LBracket) {
                let extent = self.expression()?;
                self.expect(&TokenKind::RBracket)?;
                Some(extent)
            } else {
                None
            };
            let init = if self.eat(&TokenKind::Assign) {
                Some(Initializer::Assign(self.assignment()?))
            } else if self.peek() == &TokenKind::LParen {
                // Constructor-call initializer `vector<int> v(n, 0)`.
                self.advance();
                let mut args = Vec::new();
                if self.peek() != &TokenKind::RParen {
                    loop {
                        args.push(self.assignment()?);
                        if !self.eat(&TokenKind::Comma) {
                            break;
                        }
                    }
                }
                self.expect(&TokenKind::RParen)?;
                Some(Initializer::Ctor(args))
            } else {
                None
            };
            declarators.push(Declarator { name, array, init });
            if !self.eat(&TokenKind::Comma) {
                break;
            }
            name = self.expect_ident()?;
        }
        Ok(Declaration { ty, declarators })
    }

    // -- expressions ---------------------------------------------------------

    fn expression(&mut self) -> Result<Expr, ParseError> {
        self.assignment()
    }

    fn assignment(&mut self) -> Result<Expr, ParseError> {
        let lhs = self.ternary()?;
        let op = match self.peek() {
            TokenKind::Assign => Some(AssignOp::Assign),
            TokenKind::PlusAssign => Some(AssignOp::Add),
            TokenKind::MinusAssign => Some(AssignOp::Sub),
            TokenKind::StarAssign => Some(AssignOp::Mul),
            TokenKind::SlashAssign => Some(AssignOp::Div),
            TokenKind::PercentAssign => Some(AssignOp::Mod),
            _ => None,
        };
        if let Some(op) = op {
            self.advance();
            let rhs = self.assignment()?;
            Ok(Expr::assign(op, lhs, rhs))
        } else {
            Ok(lhs)
        }
    }

    fn ternary(&mut self) -> Result<Expr, ParseError> {
        let cond = self.binary(1)?;
        if self.eat(&TokenKind::Question) {
            let then_expr = self.expression()?;
            self.expect(&TokenKind::Colon)?;
            let else_expr = self.assignment()?;
            Ok(Expr::Ternary {
                cond: Box::new(cond),
                then_expr: Box::new(then_expr),
                else_expr: Box::new(else_expr),
            })
        } else {
            Ok(cond)
        }
    }

    fn binary_op(&mut self) -> Option<BinaryOp> {
        use TokenKind::*;
        Some(match self.peek() {
            Plus => BinaryOp::Add,
            Minus => BinaryOp::Sub,
            Star => BinaryOp::Mul,
            Slash => BinaryOp::Div,
            Percent => BinaryOp::Mod,
            Lt => BinaryOp::Lt,
            Gt => BinaryOp::Gt,
            Le => BinaryOp::Le,
            Ge => BinaryOp::Ge,
            Eq => BinaryOp::Eq,
            Ne => BinaryOp::Ne,
            AndAnd => BinaryOp::And,
            OrOr => BinaryOp::Or,
            Amp => BinaryOp::BitAnd,
            Pipe => BinaryOp::BitOr,
            Caret => BinaryOp::BitXor,
            Shl => BinaryOp::Shl,
            Shr => BinaryOp::Shr,
            _ => return None,
        })
    }

    fn binary(&mut self, min_prec: u8) -> Result<Expr, ParseError> {
        let mut lhs = self.unary()?;
        while let Some(op) = self.binary_op() {
            let prec = op.precedence();
            if prec < min_prec {
                break;
            }
            self.advance();
            let rhs = self.binary(prec + 1)?;
            lhs = Expr::bin(op, lhs, rhs);
        }
        Ok(lhs)
    }

    fn unary(&mut self) -> Result<Expr, ParseError> {
        use TokenKind::*;
        let op = match self.peek() {
            Minus => Some(UnaryOp::Neg),
            Plus => Some(UnaryOp::Plus),
            Not => Some(UnaryOp::Not),
            Tilde => Some(UnaryOp::BitNot),
            Amp => Some(UnaryOp::AddrOf),
            PlusPlus => Some(UnaryOp::PreInc),
            MinusMinus => Some(UnaryOp::PreDec),
            _ => None,
        };
        if let Some(op) = op {
            self.advance();
            let expr = self.unary()?;
            return Ok(Expr::Unary {
                op,
                expr: Box::new(expr),
            });
        }
        self.postfix()
    }

    fn postfix(&mut self) -> Result<Expr, ParseError> {
        let mut expr = self.primary()?;
        loop {
            match self.peek() {
                TokenKind::LParen => {
                    self.advance();
                    let mut args = Vec::new();
                    if self.peek() != &TokenKind::RParen {
                        loop {
                            args.push(self.assignment()?);
                            if !self.eat(&TokenKind::Comma) {
                                break;
                            }
                        }
                    }
                    self.expect(&TokenKind::RParen)?;
                    expr = Expr::Call {
                        callee: Box::new(expr),
                        args,
                    };
                }
                TokenKind::LBracket => {
                    self.advance();
                    let index = self.expression()?;
                    self.expect(&TokenKind::RBracket)?;
                    expr = Expr::index(expr, index);
                }
                TokenKind::Dot => {
                    self.advance();
                    let member = self.expect_ident()?;
                    expr = Expr::Member {
                        base: Box::new(expr),
                        member,
                        arrow: false,
                    };
                }
                TokenKind::Arrow => {
                    self.advance();
                    let member = self.expect_ident()?;
                    expr = Expr::Member {
                        base: Box::new(expr),
                        member,
                        arrow: true,
                    };
                }
                TokenKind::PlusPlus => {
                    self.advance();
                    expr = Expr::Unary {
                        op: UnaryOp::PostInc,
                        expr: Box::new(expr),
                    };
                }
                TokenKind::MinusMinus => {
                    self.advance();
                    expr = Expr::Unary {
                        op: UnaryOp::PostDec,
                        expr: Box::new(expr),
                    };
                }
                _ => return Ok(expr),
            }
        }
    }

    /// Whether the current token can begin an operand (used to
    /// disambiguate C-style casts from parenthesized expressions).
    fn starts_operand(&mut self) -> bool {
        use TokenKind::*;
        matches!(
            self.peek(),
            Ident(_)
                | IntLit(_)
                | FloatLit(_)
                | StrLit(_)
                | CharLit(_)
                | KwTrue
                | KwFalse
                | LParen
                | PlusPlus
                | MinusMinus
                | Not
                | Tilde
                | KwStaticCast
        )
    }

    fn primary(&mut self) -> Result<Expr, ParseError> {
        use TokenKind::*;
        match self.peek().clone() {
            IntLit(v) => {
                self.advance();
                Ok(Expr::Int(v))
            }
            FloatLit(s) => {
                self.advance();
                Ok(Expr::Float(s))
            }
            StrLit(s) => {
                self.advance();
                Ok(Expr::Str(s))
            }
            CharLit(c) => {
                self.advance();
                Ok(Expr::Char(c))
            }
            KwTrue => {
                self.advance();
                Ok(Expr::Bool(true))
            }
            KwFalse => {
                self.advance();
                Ok(Expr::Bool(false))
            }
            KwStaticCast => {
                self.advance();
                self.expect(&Lt)?;
                let ty = self.parse_type()?;
                self.expect_close_angle()?;
                self.expect(&LParen)?;
                let expr = self.expression()?;
                self.expect(&RParen)?;
                Ok(Expr::StaticCast {
                    ty,
                    expr: Box::new(expr),
                })
            }
            KwSizeof => {
                self.advance();
                self.expect(&LParen)?;
                let inner = if self.is_type_start() {
                    let ty = self.parse_type()?;
                    Expr::Cast {
                        ty,
                        expr: Box::new(Expr::Int(0)),
                    }
                } else {
                    self.expression()?
                };
                self.expect(&RParen)?;
                Ok(Expr::call("sizeof", vec![inner]))
            }
            Ident(name) => {
                let name = name.to_string();
                self.advance();
                // Qualified names: `std::foo` normalizes to `foo`
                // (the renderer never re-qualifies), any other
                // `ns::member` is kept verbatim as one identifier
                // (e.g. `ios_base::sync_with_stdio`).
                if self.eat(&ColonColon) {
                    let inner = self.expect_ident()?;
                    return Ok(if name == "std" {
                        Expr::Ident(inner)
                    } else {
                        Expr::Ident(format!("{name}::{inner}"))
                    });
                }
                Ok(Expr::Ident(name))
            }
            LBrace => {
                self.advance();
                let mut elems = Vec::new();
                if self.peek() != &RBrace {
                    loop {
                        elems.push(self.assignment()?);
                        if !self.eat(&Comma) {
                            break;
                        }
                    }
                }
                self.expect(&RBrace)?;
                Ok(Expr::InitList(elems))
            }
            LParen => {
                self.advance();
                // Try a C-style cast: `(type) operand`.
                let checkpoint = self.pos;
                if self.is_type_start() {
                    if let Ok(ty) = self.parse_type() {
                        if self.peek() == &RParen {
                            let after_rparen = self.pos;
                            self.advance(); // `)`
                            if self.starts_operand() {
                                let expr = self.unary()?;
                                return Ok(Expr::Cast {
                                    ty,
                                    expr: Box::new(expr),
                                });
                            }
                            self.pos = after_rparen;
                        }
                    }
                    self.pos = checkpoint;
                }
                let inner = self.expression()?;
                self.expect(&RParen)?;
                Ok(Expr::Paren(Box::new(inner)))
            }
            other => Err(self.err(format!("expected expression, found `{other}`"))),
        }
    }
}

fn parse_directive(text: &str) -> Item {
    let trimmed = text.trim();
    if let Some(rest) = trimmed.strip_prefix("#include") {
        let rest = rest.trim();
        if let Some(path) = rest.strip_prefix('<').and_then(|r| r.strip_suffix('>')) {
            return Item::Include {
                path: path.to_string(),
                system: true,
            };
        }
        if let Some(path) = rest.strip_prefix('"').and_then(|r| r.strip_suffix('"')) {
            return Item::Include {
                path: path.to_string(),
                system: false,
            };
        }
    }
    Item::Define {
        text: trimmed.trim_start_matches('#').trim().to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ok(src: &str) -> TranslationUnit {
        parse(src).unwrap_or_else(|e| panic!("{e}\nsource:\n{src}"))
    }

    #[test]
    fn parses_minimal_main() {
        let unit = ok("int main() { return 0; }");
        let main = unit.function("main").unwrap();
        assert_eq!(main.ret, Type::Int);
        assert_eq!(main.body.stmts, vec![Stmt::Return(Some(Expr::Int(0)))]);
    }

    #[test]
    fn parses_includes_and_using() {
        let unit = ok("#include <iostream>\n#include \"mine.h\"\nusing namespace std;\n");
        assert_eq!(
            unit.items[0],
            Item::Include {
                path: "iostream".into(),
                system: true
            }
        );
        assert_eq!(
            unit.items[1],
            Item::Include {
                path: "mine.h".into(),
                system: false
            }
        );
        assert_eq!(unit.items[2], Item::UsingNamespace("std".into()));
    }

    #[test]
    fn parses_typedef_and_alias_registering_type_names() {
        let unit = ok("typedef long long ll;\nusing vi = vector<int>;\nll total;\nvi xs;\nint main() { ll y = 0; return 0; }");
        assert!(matches!(unit.items[0], Item::Typedef { .. }));
        assert!(matches!(unit.items[1], Item::UsingAlias { .. }));
        assert!(matches!(unit.items[2], Item::GlobalVar(_)));
    }

    #[test]
    fn parses_stream_io_as_binary_expressions() {
        let unit = ok("int main() { int n; cin >> n; cout << \"x\" << n << endl; return 0; }");
        let main = unit.function("main").unwrap();
        assert!(matches!(
            &main.body.stmts[1],
            Stmt::Expr(Expr::Binary {
                op: BinaryOp::Shr,
                ..
            })
        ));
        assert!(matches!(
            &main.body.stmts[2],
            Stmt::Expr(Expr::Binary {
                op: BinaryOp::Shl,
                ..
            })
        ));
    }

    #[test]
    fn parses_for_loop_with_decl_init() {
        let unit = ok("int main() { for (int i = 0; i < 10; ++i) { } return 0; }");
        let main = unit.function("main").unwrap();
        match &main.body.stmts[0] {
            Stmt::For {
                init: Some(init),
                cond: Some(_),
                step: Some(_),
                ..
            } => assert!(matches!(**init, Stmt::Decl(_))),
            other => panic!("expected for, got {other:?}"),
        }
    }

    #[test]
    fn parses_range_for() {
        let unit = ok("int main() { vector<int> v; for (auto& x : v) { x += 1; } for (int y : v) ; return 0; }");
        let main = unit.function("main").unwrap();
        match &main.body.stmts[1] {
            Stmt::ForEach { ty, by_ref, .. } => {
                assert_eq!(*ty, Type::Auto);
                assert!(by_ref);
            }
            other => panic!("expected foreach, got {other:?}"),
        }
        assert!(matches!(
            &main.body.stmts[2],
            Stmt::ForEach { by_ref: false, .. }
        ));
    }

    #[test]
    fn parses_braceless_bodies_as_blocks() {
        let unit = ok("int main() { if (1) return 1; else return 2; while (0) break; return 0; }");
        let main = unit.function("main").unwrap();
        match &main.body.stmts[0] {
            Stmt::If {
                then_branch,
                else_branch: Some(e),
                ..
            } => {
                assert_eq!(then_branch.stmts.len(), 1);
                assert_eq!(e.stmts.len(), 1);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parses_else_if_chain() {
        let unit =
            ok("int f(int x) { if (x > 0) return 1; else if (x < 0) return -1; else return 0; }");
        let f = unit.function("f").unwrap();
        match &f.body.stmts[0] {
            Stmt::If {
                else_branch: Some(b),
                ..
            } => assert!(matches!(&b.stmts[0], Stmt::If { .. })),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parses_nested_template_types_with_shr_split() {
        let unit =
            ok("int main() { vector<vector<int>> grid; map<string, vector<int>> m; return 0; }");
        let main = unit.function("main").unwrap();
        match &main.body.stmts[0] {
            Stmt::Decl(d) => {
                assert!(matches!(&d.ty, Type::Vector(inner) if matches!(**inner, Type::Vector(_))))
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parses_c_style_and_static_casts() {
        let unit = ok("int main() { int x = 3; double d = (double)x / (double)2; double e = static_cast<double>(x); return 0; }");
        let main = unit.function("main").unwrap();
        match &main.body.stmts[1] {
            Stmt::Decl(d) => {
                let init = d.declarators[0].init.as_ref().unwrap();
                assert!(matches!(
                    init,
                    Initializer::Assign(Expr::Binary {
                        op: BinaryOp::Div,
                        ..
                    })
                ));
            }
            other => panic!("{other:?}"),
        }
        match &main.body.stmts[2] {
            Stmt::Decl(d) => assert!(matches!(
                d.declarators[0].init.as_ref().unwrap(),
                Initializer::Assign(Expr::StaticCast { .. })
            )),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn cast_vs_paren_disambiguation() {
        // `(x) + 1` must stay a parenthesized expression.
        let unit = ok("int f(int x) { return (x) + 1; }");
        let f = unit.function("f").unwrap();
        match &f.body.stmts[0] {
            Stmt::Return(Some(Expr::Binary { lhs, .. })) => {
                assert!(matches!(**lhs, Expr::Paren(_)));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parses_multi_declarator_and_arrays() {
        let unit = ok("int main() { int a = 1, b, c[10]; return a; }");
        let main = unit.function("main").unwrap();
        match &main.body.stmts[0] {
            Stmt::Decl(d) => {
                assert_eq!(d.declarators.len(), 3);
                assert!(d.declarators[0].init.is_some());
                assert!(d.declarators[2].array.is_some());
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parses_constructor_initializer() {
        let unit = ok("int main() { vector<int> v(10, 0); return 0; }");
        let main = unit.function("main").unwrap();
        match &main.body.stmts[0] {
            Stmt::Decl(d) => assert!(matches!(
                d.declarators[0].init.as_ref().unwrap(),
                Initializer::Ctor(args) if args.len() == 2
            )),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parses_ternary_and_compound_assign() {
        let unit = ok("int main() { int x = 1; x += x > 0 ? 2 : 3; return x; }");
        let main = unit.function("main").unwrap();
        assert!(matches!(
            &main.body.stmts[1],
            Stmt::Expr(Expr::Assign {
                op: AssignOp::Add,
                ..
            })
        ));
    }

    #[test]
    fn parses_member_calls_and_indexing() {
        let unit = ok(
            "int main() { vector<int> v; v.push_back(1); int n = (int)v.size(); return v[0] + n; }",
        );
        let main = unit.function("main").unwrap();
        assert!(matches!(&main.body.stmts[1], Stmt::Expr(Expr::Call { .. })));
    }

    #[test]
    fn comments_attach_at_statement_boundaries() {
        let unit = ok("// header\nint main() { // first\n int x = 1; /* mid */ return x; }");
        assert!(matches!(&unit.items[0], Item::Comment(c) if c.text == "header"));
        let main = unit.function("main").unwrap();
        assert!(matches!(&main.body.stmts[0], Stmt::Comment(c) if c.text == "first" && !c.block));
        assert!(matches!(&main.body.stmts[2], Stmt::Comment(c) if c.block));
    }

    #[test]
    fn parses_do_while_and_empty_statement() {
        let unit = ok("int main() { int i = 0; do { i++; } while (i < 3); ; return i; }");
        let main = unit.function("main").unwrap();
        assert!(matches!(&main.body.stmts[1], Stmt::DoWhile { .. }));
        assert!(matches!(&main.body.stmts[2], Stmt::Empty));
    }

    #[test]
    fn parses_function_with_reference_params() {
        let unit = ok("void solve(vector<int>& xs, const string& name) { }");
        let f = unit.function("solve").unwrap();
        assert!(matches!(&f.params[0].ty, Type::Ref(_)));
        assert!(matches!(&f.params[1].ty, Type::Ref(inner) if matches!(**inner, Type::Const(_))));
    }

    #[test]
    fn parses_globals_and_defines() {
        let unit = ok("#define MAXN 100005\nint arr[100005];\nint main() { return 0; }");
        assert!(matches!(&unit.items[0], Item::Define { text } if text.starts_with("define")));
        assert!(matches!(&unit.items[1], Item::GlobalVar(_)));
    }

    #[test]
    fn rejects_struct_and_switch() {
        assert!(parse("struct P { int x; };").is_err());
        assert!(parse("int main() { switch (1) { } }").is_err());
    }

    #[test]
    fn reports_error_with_line() {
        let err = parse("int main() {\n  int x = ;\n}").unwrap_err();
        assert_eq!(err.line(), 2);
    }

    #[test]
    fn rejects_truncated_input() {
        assert!(parse("int main() {").is_err());
        assert!(parse("int main(").is_err());
        assert!(parse("int").is_err());
    }

    #[test]
    fn parses_long_long_and_unsigned_spellings() {
        let unit =
            ok("long long a; unsigned int b; unsigned long long c; long d; short e; signed f;");
        let tys: Vec<&Type> = unit
            .items
            .iter()
            .map(|i| match i {
                Item::GlobalVar(d) => &d.ty,
                _ => panic!(),
            })
            .collect();
        assert_eq!(tys[0], &Type::LongLong);
        assert_eq!(tys[1], &Type::Unsigned);
        assert_eq!(tys[2], &Type::Unsigned);
        assert_eq!(tys[3], &Type::Long);
        assert_eq!(tys[4], &Type::Int);
        assert_eq!(tys[5], &Type::Int);
    }

    #[test]
    fn parses_std_qualified_names() {
        let unit =
            ok("#include <string>\nstd::string g;\nint main() { std::cout << g; return 0; }");
        assert!(matches!(&unit.items[1], Item::GlobalVar(d) if d.ty == Type::Str));
    }

    #[test]
    fn parses_horse_race_paper_figure3() {
        // The paper's Figure 3 (normalized: the original has typos from
        // OCR; this is the intended program).
        let src = r#"
#include <iostream>
#include <algorithm>
using namespace std;
int main() {
    int nCase;
    cin >> nCase;
    for (int iCase = 1; iCase <= nCase; ++iCase) {
        int d, n;
        double t = 0;
        cin >> d >> n;
        for (int i = 0; i < n; ++i) {
            int x, y;
            cin >> x >> y;
            x = d - x;
            t = max(t, (double)x / (double)y);
        }
        printf("Case #%d: %.6lf\n", iCase, (double)d / t);
    }
    return 0;
}
"#;
        let unit = ok(src);
        assert_eq!(unit.functions().count(), 1);
    }
}
