//! Hand-written lexer for the C++ subset.
//!
//! The lexer never panics on arbitrary input: unknown characters
//! produce a [`ParseError`] with position information. Comments and
//! preprocessor directives are kept as tokens because the parser
//! attaches them to the AST (comments are stylistic signal).

use crate::error::ParseError;
use crate::token::{Span, Symbol, Token, TokenKind};

/// Lexes `src` into a token stream terminated by [`TokenKind::Eof`].
///
/// # Errors
///
/// Returns a [`ParseError`] for unterminated string/char literals,
/// unterminated block comments, or characters outside the subset.
///
/// # Example
///
/// ```
/// use synthattr_lang::lexer::lex;
/// let toks = lex("int x = 1;")?;
/// assert_eq!(toks.len(), 6); // int, x, =, 1, ;, eof
/// # Ok::<(), synthattr_lang::ParseError>(())
/// ```
pub fn lex(src: &str) -> Result<Vec<Token>, ParseError> {
    Lexer::new(src).run()
}

struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
    line: u32,
    tokens: Vec<Token>,
}

impl<'a> Lexer<'a> {
    fn new(src: &'a str) -> Self {
        Lexer {
            src: src.as_bytes(),
            pos: 0,
            line: 1,
            tokens: Vec::new(),
        }
    }

    fn peek(&self) -> u8 {
        *self.src.get(self.pos).unwrap_or(&0)
    }

    fn peek2(&self) -> u8 {
        *self.src.get(self.pos + 1).unwrap_or(&0)
    }

    fn peek3(&self) -> u8 {
        *self.src.get(self.pos + 2).unwrap_or(&0)
    }

    fn bump(&mut self) -> u8 {
        let c = self.peek();
        self.pos += 1;
        if c == b'\n' {
            self.line += 1;
        }
        c
    }

    fn push(&mut self, kind: TokenKind, start: usize, line: u32) {
        self.tokens
            .push(Token::new(kind, Span::new(start, self.pos, line)));
    }

    fn error(&self, msg: impl Into<String>) -> ParseError {
        ParseError::new(msg, self.line)
    }

    fn run(mut self) -> Result<Vec<Token>, ParseError> {
        loop {
            // Skip horizontal/vertical whitespace (it is recovered for
            // layout features directly from the raw text, not tokens).
            while matches!(self.peek(), b' ' | b'\t' | b'\r' | b'\n') {
                self.bump();
            }
            let start = self.pos;
            let line = self.line;
            let c = self.peek();
            if c == 0 {
                self.push(TokenKind::Eof, start, line);
                return Ok(self.tokens);
            }
            match c {
                b'#' => self.directive(start, line),
                b'/' if self.peek2() == b'/' => self.line_comment(start, line),
                b'/' if self.peek2() == b'*' => self.block_comment(start, line)?,
                b'"' => self.string_lit(start, line)?,
                b'\'' => self.char_lit(start, line)?,
                b'0'..=b'9' => self.number(start, line)?,
                b'.' if self.peek2().is_ascii_digit() => self.number(start, line)?,
                c if c == b'_' || c.is_ascii_alphabetic() => self.word(start, line),
                _ => self.operator(start, line)?,
            }
        }
    }

    fn directive(&mut self, start: usize, line: u32) {
        // A directive runs to the end of the line (no continuations in
        // the subset).
        while self.peek() != 0 && self.peek() != b'\n' {
            self.bump();
        }
        let text = String::from_utf8_lossy(&self.src[start..self.pos])
            .trim_end()
            .to_string();
        self.push(TokenKind::Directive(text), start, line);
    }

    fn line_comment(&mut self, start: usize, line: u32) {
        self.bump();
        self.bump();
        let body_start = self.pos;
        while self.peek() != 0 && self.peek() != b'\n' {
            self.bump();
        }
        let text = String::from_utf8_lossy(&self.src[body_start..self.pos])
            .trim()
            .to_string();
        self.push(TokenKind::Comment(text, false), start, line);
    }

    fn block_comment(&mut self, start: usize, line: u32) -> Result<(), ParseError> {
        self.bump();
        self.bump();
        let body_start = self.pos;
        loop {
            if self.peek() == 0 {
                return Err(self.error("unterminated block comment"));
            }
            if self.peek() == b'*' && self.peek2() == b'/' {
                let text = String::from_utf8_lossy(&self.src[body_start..self.pos])
                    .trim()
                    .to_string();
                self.bump();
                self.bump();
                self.push(TokenKind::Comment(text, true), start, line);
                return Ok(());
            }
            self.bump();
        }
    }

    fn string_lit(&mut self, start: usize, line: u32) -> Result<(), ParseError> {
        self.bump(); // opening quote
        let mut out = String::new();
        loop {
            match self.peek() {
                0 | b'\n' => return Err(self.error("unterminated string literal")),
                b'"' => {
                    self.bump();
                    self.push(TokenKind::StrLit(out), start, line);
                    return Ok(());
                }
                b'\\' => {
                    self.bump();
                    let esc = self.bump();
                    out.push(unescape(esc));
                }
                c => {
                    self.bump();
                    out.push(c as char);
                }
            }
        }
    }

    fn char_lit(&mut self, start: usize, line: u32) -> Result<(), ParseError> {
        self.bump(); // opening quote
        let c = match self.peek() {
            0 | b'\n' => return Err(self.error("unterminated character literal")),
            b'\\' => {
                self.bump();
                unescape(self.bump())
            }
            c => {
                self.bump();
                c as char
            }
        };
        if self.peek() != b'\'' {
            return Err(self.error("unterminated character literal"));
        }
        self.bump();
        self.push(TokenKind::CharLit(c), start, line);
        Ok(())
    }

    fn number(&mut self, start: usize, line: u32) -> Result<(), ParseError> {
        let mut is_float = false;
        while self.peek().is_ascii_digit() {
            self.bump();
        }
        if self.peek() == b'.' && self.peek2() != b'.' {
            is_float = true;
            self.bump();
            while self.peek().is_ascii_digit() {
                self.bump();
            }
        }
        if matches!(self.peek(), b'e' | b'E')
            && (self.peek2().is_ascii_digit()
                || (matches!(self.peek2(), b'+' | b'-') && self.peek3().is_ascii_digit()))
        {
            is_float = true;
            self.bump();
            if matches!(self.peek(), b'+' | b'-') {
                self.bump();
            }
            while self.peek().is_ascii_digit() {
                self.bump();
            }
        }
        let text_end = self.pos;
        // Absorb integer suffixes (LL, ll, u, U); the float suffix
        // (f/F) is only valid on an actual floating literal — `0f` is
        // not a number in C++, so the `f` is left for the next token.
        loop {
            match self.peek() {
                b'l' | b'L' | b'u' | b'U' => {
                    self.bump();
                }
                b'f' | b'F' if is_float => {
                    self.bump();
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.src[start..text_end])
            .map_err(|_| self.error("invalid utf-8 in number"))?;
        if is_float {
            self.push(TokenKind::FloatLit(text.to_string()), start, line);
        } else {
            let value: i64 = text
                .parse()
                .map_err(|_| self.error(format!("integer literal out of range: {text}")))?;
            self.push(TokenKind::IntLit(value), start, line);
        }
        Ok(())
    }

    fn word(&mut self, start: usize, line: u32) {
        while self.peek() == b'_' || self.peek().is_ascii_alphanumeric() {
            self.bump();
        }
        // The loop above admitted only ASCII word bytes, so the slice
        // is valid UTF-8; keywords and repeated identifiers both lex
        // without allocating a fresh String per occurrence.
        let text = std::str::from_utf8(&self.src[start..self.pos])
            .expect("word bytes are ASCII by construction");
        let kind =
            TokenKind::keyword(text).unwrap_or_else(|| TokenKind::Ident(Symbol::intern(text)));
        self.push(kind, start, line);
    }

    fn operator(&mut self, start: usize, line: u32) -> Result<(), ParseError> {
        use TokenKind::*;
        let c = self.bump();
        let kind = match c {
            b'(' => LParen,
            b')' => RParen,
            b'{' => LBrace,
            b'}' => RBrace,
            b'[' => LBracket,
            b']' => RBracket,
            b';' => Semi,
            b',' => Comma,
            b'?' => Question,
            b'~' => Tilde,
            b'.' => Dot,
            b':' => {
                if self.peek() == b':' {
                    self.bump();
                    ColonColon
                } else {
                    Colon
                }
            }
            b'+' => match self.peek() {
                b'+' => {
                    self.bump();
                    PlusPlus
                }
                b'=' => {
                    self.bump();
                    PlusAssign
                }
                _ => Plus,
            },
            b'-' => match self.peek() {
                b'-' => {
                    self.bump();
                    MinusMinus
                }
                b'=' => {
                    self.bump();
                    MinusAssign
                }
                b'>' => {
                    self.bump();
                    Arrow
                }
                _ => Minus,
            },
            b'*' => {
                if self.peek() == b'=' {
                    self.bump();
                    StarAssign
                } else {
                    Star
                }
            }
            b'/' => {
                if self.peek() == b'=' {
                    self.bump();
                    SlashAssign
                } else {
                    Slash
                }
            }
            b'%' => {
                if self.peek() == b'=' {
                    self.bump();
                    PercentAssign
                } else {
                    Percent
                }
            }
            b'=' => {
                if self.peek() == b'=' {
                    self.bump();
                    Eq
                } else {
                    Assign
                }
            }
            b'!' => {
                if self.peek() == b'=' {
                    self.bump();
                    Ne
                } else {
                    Not
                }
            }
            b'<' => match (self.peek(), self.peek2()) {
                (b'<', b'=') => {
                    self.bump();
                    self.bump();
                    ShlAssign
                }
                (b'<', _) => {
                    self.bump();
                    Shl
                }
                (b'=', _) => {
                    self.bump();
                    Le
                }
                _ => Lt,
            },
            b'>' => match (self.peek(), self.peek2()) {
                (b'>', b'=') => {
                    self.bump();
                    self.bump();
                    ShrAssign
                }
                (b'>', _) => {
                    self.bump();
                    Shr
                }
                (b'=', _) => {
                    self.bump();
                    Ge
                }
                _ => Gt,
            },
            b'&' => match self.peek() {
                b'&' => {
                    self.bump();
                    AndAnd
                }
                b'=' => {
                    self.bump();
                    AmpAssign
                }
                _ => Amp,
            },
            b'|' => match self.peek() {
                b'|' => {
                    self.bump();
                    OrOr
                }
                b'=' => {
                    self.bump();
                    PipeAssign
                }
                _ => Pipe,
            },
            b'^' => {
                if self.peek() == b'=' {
                    self.bump();
                    CaretAssign
                } else {
                    Caret
                }
            }
            other => return Err(self.error(format!("unexpected character {:?}", other as char))),
        };
        self.push(kind, start, line);
        Ok(())
    }
}

fn unescape(c: u8) -> char {
    match c {
        b'n' => '\n',
        b't' => '\t',
        b'r' => '\r',
        b'0' => '\0',
        b'\\' => '\\',
        b'\'' => '\'',
        b'"' => '"',
        other => other as char,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::token::TokenKind::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        lex(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn lexes_declaration() {
        assert_eq!(
            kinds("int x = 42;"),
            vec![KwInt, Ident("x".into()), Assign, IntLit(42), Semi, Eof]
        );
    }

    #[test]
    fn lexes_stream_io() {
        assert_eq!(
            kinds("cin >> n; cout << n;"),
            vec![
                Ident("cin".into()),
                Shr,
                Ident("n".into()),
                Semi,
                Ident("cout".into()),
                Shl,
                Ident("n".into()),
                Semi,
                Eof
            ]
        );
    }

    #[test]
    fn lexes_multi_char_operators() {
        assert_eq!(
            kinds("a<=b >=c ==d !=e &&f ||g ++h --i += -= *= /= %= <<= >>= ::"),
            vec![
                Ident("a".into()),
                Le,
                Ident("b".into()),
                Ge,
                Ident("c".into()),
                Eq,
                Ident("d".into()),
                Ne,
                Ident("e".into()),
                AndAnd,
                Ident("f".into()),
                OrOr,
                Ident("g".into()),
                PlusPlus,
                Ident("h".into()),
                MinusMinus,
                Ident("i".into()),
                PlusAssign,
                MinusAssign,
                StarAssign,
                SlashAssign,
                PercentAssign,
                ShlAssign,
                ShrAssign,
                ColonColon,
                Eof
            ]
        );
    }

    #[test]
    fn lexes_float_and_suffixes() {
        assert_eq!(
            kinds("1.5 2e3 7LL 3.0f .25"),
            vec![
                FloatLit("1.5".into()),
                FloatLit("2e3".into()),
                IntLit(7),
                FloatLit("3.0".into()),
                FloatLit(".25".into()),
                Eof
            ]
        );
    }

    #[test]
    fn float_suffix_does_not_attach_to_integers() {
        // `0f` is not a C++ literal: the `f` starts the next token.
        assert_eq!(kinds("00f"), vec![IntLit(0), Ident("f".into()), Eof]);
        assert_eq!(kinds("7u"), vec![IntLit(7), Eof]);
    }

    #[test]
    fn lexes_string_with_escapes() {
        assert_eq!(
            kinds(r#"cout << "Case #\n";"#),
            vec![
                Ident("cout".into()),
                Shl,
                StrLit("Case #\n".into()),
                Semi,
                Eof
            ]
        );
    }

    #[test]
    fn lexes_char_literal() {
        assert_eq!(kinds("'a' '\\n'"), vec![CharLit('a'), CharLit('\n'), Eof]);
    }

    #[test]
    fn lexes_comments() {
        assert_eq!(
            kinds("// hello\nx /* wor ld */ y"),
            vec![
                Comment("hello".into(), false),
                Ident("x".into()),
                Comment("wor ld".into(), true),
                Ident("y".into()),
                Eof
            ]
        );
    }

    #[test]
    fn lexes_directives() {
        assert_eq!(
            kinds("#include <iostream>\n#define MAXN 100\nint x;"),
            vec![
                Directive("#include <iostream>".into()),
                Directive("#define MAXN 100".into()),
                KwInt,
                Ident("x".into()),
                Semi,
                Eof
            ]
        );
    }

    #[test]
    fn tracks_line_numbers() {
        let toks = lex("a\nb\n\nc").unwrap();
        let lines: Vec<u32> = toks.iter().map(|t| t.span.line).collect();
        assert_eq!(lines, vec![1, 2, 4, 4]);
    }

    #[test]
    fn rejects_unterminated_string() {
        assert!(lex("\"abc").is_err());
        assert!(lex("\"abc\nd\"").is_err());
    }

    #[test]
    fn rejects_unterminated_block_comment() {
        assert!(lex("/* never ends").is_err());
    }

    #[test]
    fn rejects_unknown_character() {
        let err = lex("int $x;").unwrap_err();
        assert!(err.to_string().contains("unexpected character"));
    }

    #[test]
    fn rejects_overflowing_integer() {
        assert!(lex("999999999999999999999999").is_err());
    }

    #[test]
    fn empty_input_is_just_eof() {
        assert_eq!(kinds(""), vec![Eof]);
        assert_eq!(kinds("   \n\t "), vec![Eof]);
    }
}
