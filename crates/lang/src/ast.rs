//! Abstract syntax tree for the C++ subset.
//!
//! The tree is deliberately *concrete enough* to preserve stylistic
//! signal (comments, cast spelling, pre/post increment) while staying
//! small enough to transform mechanically. Every node category also has
//! a [`NodeKind`] discriminant used by the AST metrics in
//! [`crate::metrics`].

use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};

/// A whole source file.
#[derive(Debug, Clone, PartialEq, Hash)]
pub struct TranslationUnit {
    /// Top-level items in source order.
    pub items: Vec<Item>,
}

impl TranslationUnit {
    /// Creates an empty unit.
    pub fn new() -> Self {
        TranslationUnit { items: Vec::new() }
    }

    /// A structural hash of the tree.
    ///
    /// Two units have equal shape hashes iff they are structurally
    /// identical (same items, statements, expressions, names and
    /// literals). Layout/whitespace does not participate — it is not in
    /// the tree — so `parse(render(u)) ` has the same shape hash as `u`
    /// for any render style.
    pub fn shape_hash(&self) -> u64 {
        let mut h = DefaultHasher::new();
        self.hash(&mut h);
        h.finish()
    }

    /// Returns all function definitions in the unit.
    pub fn functions(&self) -> impl Iterator<Item = &Function> {
        self.items.iter().filter_map(|item| match item {
            Item::Function(f) => Some(f),
            _ => None,
        })
    }

    /// Returns the function named `name`, if present.
    pub fn function(&self, name: &str) -> Option<&Function> {
        self.functions().find(|f| f.name == name)
    }
}

impl Default for TranslationUnit {
    fn default() -> Self {
        Self::new()
    }
}

/// A top-level item.
#[derive(Debug, Clone, PartialEq, Hash)]
pub enum Item {
    /// `#include <path>` or `#include "path"`.
    Include {
        /// Header path without delimiters.
        path: String,
        /// `true` for `<...>`, `false` for `"..."`.
        system: bool,
    },
    /// Any other preprocessor line, e.g. `#define MAXN 100`.
    Define {
        /// The raw directive text after `#`.
        text: String,
    },
    /// `using namespace ns;`
    UsingNamespace(String),
    /// `typedef long long ll;`
    Typedef {
        /// The aliased type.
        ty: Type,
        /// The new name.
        name: String,
    },
    /// `using ll = long long;`
    UsingAlias {
        /// The new name.
        name: String,
        /// The aliased type.
        ty: Type,
    },
    /// A file-scope variable declaration.
    GlobalVar(Declaration),
    /// A function definition.
    Function(Function),
    /// A free-standing comment at file scope.
    Comment(Comment),
}

/// A function definition.
#[derive(Debug, Clone, PartialEq, Hash)]
pub struct Function {
    /// Return type.
    pub ret: Type,
    /// Function name.
    pub name: String,
    /// Parameters in order.
    pub params: Vec<Param>,
    /// Body block.
    pub body: Block,
}

/// A function parameter.
#[derive(Debug, Clone, PartialEq, Hash)]
pub struct Param {
    /// Parameter type (may be `Type::Ref`/`Type::Const` wrapped).
    pub ty: Type,
    /// Parameter name.
    pub name: String,
}

/// A `{ ... }` block.
#[derive(Debug, Clone, PartialEq, Hash, Default)]
pub struct Block {
    /// Statements in order.
    pub stmts: Vec<Stmt>,
}

impl Block {
    /// Creates a block from statements.
    pub fn new(stmts: Vec<Stmt>) -> Self {
        Block { stmts }
    }
}

/// A comment, `// line` or `/* block */`.
#[derive(Debug, Clone, PartialEq, Hash)]
pub struct Comment {
    /// The trimmed comment text.
    pub text: String,
    /// `true` when written as a block comment.
    pub block: bool,
}

/// A statement.
#[derive(Debug, Clone, PartialEq, Hash)]
pub enum Stmt {
    /// A local declaration, possibly with several declarators.
    Decl(Declaration),
    /// An expression statement.
    Expr(Expr),
    /// `if (cond) then else else_`.
    If {
        /// Condition.
        cond: Expr,
        /// Then branch.
        then_branch: Block,
        /// Optional else branch (an `else if` chain is a block whose
        /// single statement is another `If`).
        else_branch: Option<Block>,
    },
    /// A classic three-clause `for`.
    For {
        /// Init clause (declaration or expression), if any.
        init: Option<Box<Stmt>>,
        /// Loop condition, if any.
        cond: Option<Expr>,
        /// Step expression, if any.
        step: Option<Expr>,
        /// Loop body.
        body: Block,
    },
    /// A range-based `for (ty name : iterable)`.
    ForEach {
        /// Element type (often `Type::Auto`).
        ty: Type,
        /// Loop variable.
        name: String,
        /// Whether the loop variable is taken by reference.
        by_ref: bool,
        /// The iterated expression.
        iterable: Expr,
        /// Loop body.
        body: Block,
    },
    /// `while (cond) body`.
    While {
        /// Condition.
        cond: Expr,
        /// Body.
        body: Block,
    },
    /// `do body while (cond);`
    DoWhile {
        /// Body.
        body: Block,
        /// Condition.
        cond: Expr,
    },
    /// `return expr;`
    Return(Option<Expr>),
    /// `break;`
    Break,
    /// `continue;`
    Continue,
    /// A nested block.
    Block(Block),
    /// A free-standing comment.
    Comment(Comment),
    /// A lone `;`.
    Empty,
}

/// A declaration: one type, one or more declarators.
#[derive(Debug, Clone, PartialEq, Hash)]
pub struct Declaration {
    /// The declared type.
    pub ty: Type,
    /// One or more declarators, e.g. `x = 1, y, z[10]`.
    pub declarators: Vec<Declarator>,
}

/// One declared name within a [`Declaration`].
#[derive(Debug, Clone, PartialEq, Hash)]
pub struct Declarator {
    /// Variable name.
    pub name: String,
    /// Optional array extent, e.g. `a[100]`.
    pub array: Option<Expr>,
    /// Optional initializer.
    pub init: Option<Initializer>,
}

/// How a declarator is initialized. The two surface forms have
/// different semantics for containers (`vector<int> v(3, 7)` is three
/// sevens; `vector<int> v = {3, 7}` is two elements), so the AST keeps
/// them distinct.
#[derive(Debug, Clone, PartialEq, Hash)]
pub enum Initializer {
    /// `name = expr`
    Assign(Expr),
    /// `name(args...)` constructor-call form.
    Ctor(Vec<Expr>),
}

impl Declarator {
    /// Shorthand for a plain name with an `= expr` initializer.
    pub fn init(name: impl Into<String>, init: Expr) -> Self {
        Declarator {
            name: name.into(),
            array: None,
            init: Some(Initializer::Assign(init)),
        }
    }

    /// Shorthand for a constructor-call initializer `name(args...)`.
    pub fn ctor(name: impl Into<String>, args: Vec<Expr>) -> Self {
        Declarator {
            name: name.into(),
            array: None,
            init: Some(Initializer::Ctor(args)),
        }
    }

    /// Shorthand for a plain uninitialized name.
    pub fn plain(name: impl Into<String>) -> Self {
        Declarator {
            name: name.into(),
            array: None,
            init: None,
        }
    }
}

/// A type in the subset.
#[derive(Debug, Clone, PartialEq, Hash)]
pub enum Type {
    /// `void`
    Void,
    /// `bool`
    Bool,
    /// `char`
    Char,
    /// `int`
    Int,
    /// `long`
    Long,
    /// `long long`
    LongLong,
    /// `unsigned` / `unsigned int`
    Unsigned,
    /// `float`
    Float,
    /// `double`
    Double,
    /// `auto`
    Auto,
    /// `std::string` / `string`
    Str,
    /// A named (user or library) type, e.g. a typedef name.
    Named(String),
    /// `vector<T>`
    Vector(Box<Type>),
    /// `pair<A, B>`
    Pair(Box<Type>, Box<Type>),
    /// `map<K, V>`
    Map(Box<Type>, Box<Type>),
    /// `set<T>`
    Set(Box<Type>),
    /// `T&`
    Ref(Box<Type>),
    /// `const T`
    Const(Box<Type>),
}

impl Type {
    /// Wraps `self` in a reference.
    pub fn by_ref(self) -> Type {
        Type::Ref(Box::new(self))
    }

    /// Wraps `self` in `const`.
    pub fn as_const(self) -> Type {
        Type::Const(Box::new(self))
    }
}

/// Binary operators (including stream `<<`/`>>`, which C++ overloads).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinaryOp {
    Add,
    Sub,
    Mul,
    Div,
    Mod,
    Lt,
    Gt,
    Le,
    Ge,
    Eq,
    Ne,
    And,
    Or,
    BitAnd,
    BitOr,
    BitXor,
    Shl,
    Shr,
}

impl BinaryOp {
    /// Surface spelling of the operator.
    pub fn symbol(self) -> &'static str {
        use BinaryOp::*;
        match self {
            Add => "+",
            Sub => "-",
            Mul => "*",
            Div => "/",
            Mod => "%",
            Lt => "<",
            Gt => ">",
            Le => "<=",
            Ge => ">=",
            Eq => "==",
            Ne => "!=",
            And => "&&",
            Or => "||",
            BitAnd => "&",
            BitOr => "|",
            BitXor => "^",
            Shl => "<<",
            Shr => ">>",
        }
    }

    /// Binding power (higher binds tighter); mirrors C++ precedence.
    pub fn precedence(self) -> u8 {
        use BinaryOp::*;
        match self {
            Mul | Div | Mod => 10,
            Add | Sub => 9,
            Shl | Shr => 8,
            Lt | Gt | Le | Ge => 7,
            Eq | Ne => 6,
            BitAnd => 5,
            BitXor => 4,
            BitOr => 3,
            And => 2,
            Or => 1,
        }
    }
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnaryOp {
    /// `-x`
    Neg,
    /// `+x`
    Plus,
    /// `!x`
    Not,
    /// `~x`
    BitNot,
    /// `++x`
    PreInc,
    /// `--x`
    PreDec,
    /// `x++`
    PostInc,
    /// `x--`
    PostDec,
    /// `&x` (address-of, used by `scanf`-style IO)
    AddrOf,
}

impl UnaryOp {
    /// Whether the operator is written after its operand.
    pub fn is_postfix(self) -> bool {
        matches!(self, UnaryOp::PostInc | UnaryOp::PostDec)
    }

    /// Surface spelling.
    pub fn symbol(self) -> &'static str {
        use UnaryOp::*;
        match self {
            Neg => "-",
            Plus => "+",
            Not => "!",
            BitNot => "~",
            PreInc | PostInc => "++",
            PreDec | PostDec => "--",
            AddrOf => "&",
        }
    }
}

/// Compound assignment operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AssignOp {
    /// `=`
    Assign,
    /// `+=`
    Add,
    /// `-=`
    Sub,
    /// `*=`
    Mul,
    /// `/=`
    Div,
    /// `%=`
    Mod,
}

impl AssignOp {
    /// Surface spelling.
    pub fn symbol(self) -> &'static str {
        use AssignOp::*;
        match self {
            Assign => "=",
            Add => "+=",
            Sub => "-=",
            Mul => "*=",
            Div => "/=",
            Mod => "%=",
        }
    }
}

/// An expression.
#[derive(Debug, Clone, PartialEq, Hash)]
pub enum Expr {
    /// Integer literal.
    Int(i64),
    /// Floating literal; the spelling is preserved verbatim.
    Float(String),
    /// String literal (unescaped contents).
    Str(String),
    /// Character literal.
    Char(char),
    /// `true` / `false`.
    Bool(bool),
    /// A name.
    Ident(String),
    /// A unary operation.
    Unary {
        /// Operator.
        op: UnaryOp,
        /// Operand.
        expr: Box<Expr>,
    },
    /// A binary operation.
    Binary {
        /// Operator.
        op: BinaryOp,
        /// Left operand.
        lhs: Box<Expr>,
        /// Right operand.
        rhs: Box<Expr>,
    },
    /// An assignment (simple or compound). Right-associative.
    Assign {
        /// Operator.
        op: AssignOp,
        /// Target.
        lhs: Box<Expr>,
        /// Value.
        rhs: Box<Expr>,
    },
    /// `cond ? a : b`.
    Ternary {
        /// Condition.
        cond: Box<Expr>,
        /// Value when true.
        then_expr: Box<Expr>,
        /// Value when false.
        else_expr: Box<Expr>,
    },
    /// A call, `callee(args...)`.
    Call {
        /// Callee (usually an identifier or member access).
        callee: Box<Expr>,
        /// Arguments.
        args: Vec<Expr>,
    },
    /// Member access, `base.member` or `base->member`.
    Member {
        /// Object expression.
        base: Box<Expr>,
        /// Member name.
        member: String,
        /// `true` for `->`.
        arrow: bool,
    },
    /// Indexing, `base[index]`.
    Index {
        /// Indexed expression.
        base: Box<Expr>,
        /// Index expression.
        index: Box<Expr>,
    },
    /// A C-style cast, `(double)x`.
    Cast {
        /// Target type.
        ty: Type,
        /// Operand.
        expr: Box<Expr>,
    },
    /// `static_cast<T>(x)`.
    StaticCast {
        /// Target type.
        ty: Type,
        /// Operand.
        expr: Box<Expr>,
    },
    /// Explicit parentheses preserved from source.
    Paren(Box<Expr>),
    /// A brace initializer list, `{a, b}`.
    InitList(Vec<Expr>),
}

impl Expr {
    /// Shorthand for an identifier expression.
    pub fn ident(name: impl Into<String>) -> Expr {
        Expr::Ident(name.into())
    }

    /// Shorthand for a binary expression.
    pub fn bin(op: BinaryOp, lhs: Expr, rhs: Expr) -> Expr {
        Expr::Binary {
            op,
            lhs: Box::new(lhs),
            rhs: Box::new(rhs),
        }
    }

    /// Shorthand for an assignment expression.
    pub fn assign(op: AssignOp, lhs: Expr, rhs: Expr) -> Expr {
        Expr::Assign {
            op,
            lhs: Box::new(lhs),
            rhs: Box::new(rhs),
        }
    }

    /// Shorthand for a free-function call.
    pub fn call(name: impl Into<String>, args: Vec<Expr>) -> Expr {
        Expr::Call {
            callee: Box::new(Expr::ident(name)),
            args,
        }
    }

    /// Shorthand for a method call `base.name(args)`.
    pub fn method(base: Expr, name: impl Into<String>, args: Vec<Expr>) -> Expr {
        Expr::Call {
            callee: Box::new(Expr::Member {
                base: Box::new(base),
                member: name.into(),
                arrow: false,
            }),
            args,
        }
    }

    /// Shorthand for `base[index]`.
    pub fn index(base: Expr, index: Expr) -> Expr {
        Expr::Index {
            base: Box::new(base),
            index: Box::new(index),
        }
    }

    /// Strips any number of [`Expr::Paren`] wrappers.
    pub fn unparenthesized(&self) -> &Expr {
        let mut e = self;
        while let Expr::Paren(inner) = e {
            e = inner;
        }
        e
    }
}

/// Discriminants for every AST node category, used for syntactic
/// feature extraction (node-kind term frequencies and bigrams).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[repr(u8)]
pub enum NodeKind {
    Unit,
    Include,
    Define,
    UsingNamespace,
    Typedef,
    UsingAlias,
    GlobalVar,
    Function,
    Param,
    Block,
    DeclStmt,
    ExprStmt,
    IfStmt,
    ForStmt,
    ForEachStmt,
    WhileStmt,
    DoWhileStmt,
    ReturnStmt,
    BreakStmt,
    ContinueStmt,
    CommentNode,
    EmptyStmt,
    Declarator,
    IntLit,
    FloatLit,
    StrLit,
    CharLit,
    BoolLit,
    Ident,
    Unary,
    Binary,
    Assign,
    Ternary,
    Call,
    Member,
    Index,
    Cast,
    StaticCastNode,
    Paren,
    InitList,
    TypeNode,
}

impl NodeKind {
    /// Total number of node kinds (for fixed-size count arrays).
    pub const COUNT: usize = 41;

    /// Dense index of the kind in `[0, COUNT)`.
    pub fn index(self) -> usize {
        self as u8 as usize
    }

    /// All kinds in index order.
    pub fn all() -> [NodeKind; Self::COUNT] {
        use NodeKind::*;
        [
            Unit,
            Include,
            Define,
            UsingNamespace,
            Typedef,
            UsingAlias,
            GlobalVar,
            Function,
            Param,
            Block,
            DeclStmt,
            ExprStmt,
            IfStmt,
            ForStmt,
            ForEachStmt,
            WhileStmt,
            DoWhileStmt,
            ReturnStmt,
            BreakStmt,
            ContinueStmt,
            CommentNode,
            EmptyStmt,
            Declarator,
            IntLit,
            FloatLit,
            StrLit,
            CharLit,
            BoolLit,
            Ident,
            Unary,
            Binary,
            Assign,
            Ternary,
            Call,
            Member,
            Index,
            Cast,
            StaticCastNode,
            Paren,
            InitList,
            TypeNode,
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_unit() -> TranslationUnit {
        TranslationUnit {
            items: vec![Item::Function(Function {
                ret: Type::Int,
                name: "main".into(),
                params: vec![],
                body: Block::new(vec![Stmt::Return(Some(Expr::Int(0)))]),
            })],
        }
    }

    #[test]
    fn shape_hash_is_stable_and_sensitive() {
        let a = tiny_unit();
        let b = tiny_unit();
        assert_eq!(a.shape_hash(), b.shape_hash());
        let mut c = tiny_unit();
        if let Item::Function(f) = &mut c.items[0] {
            f.name = "main2".into();
        }
        assert_ne!(a.shape_hash(), c.shape_hash());
    }

    #[test]
    fn functions_iterator_and_lookup() {
        let unit = tiny_unit();
        assert_eq!(unit.functions().count(), 1);
        assert!(unit.function("main").is_some());
        assert!(unit.function("nope").is_none());
    }

    #[test]
    fn node_kind_indices_are_dense_and_unique() {
        let all = NodeKind::all();
        assert_eq!(all.len(), NodeKind::COUNT);
        for (i, k) in all.iter().enumerate() {
            assert_eq!(k.index(), i);
        }
    }

    #[test]
    fn precedence_ordering_matches_cpp() {
        assert!(BinaryOp::Mul.precedence() > BinaryOp::Add.precedence());
        assert!(BinaryOp::Add.precedence() > BinaryOp::Shl.precedence());
        assert!(BinaryOp::Shl.precedence() > BinaryOp::Lt.precedence());
        assert!(BinaryOp::Lt.precedence() > BinaryOp::Eq.precedence());
        assert!(BinaryOp::And.precedence() > BinaryOp::Or.precedence());
    }

    #[test]
    fn expr_helpers_build_expected_shapes() {
        let e = Expr::method(Expr::ident("v"), "push_back", vec![Expr::Int(1)]);
        match e {
            Expr::Call { callee, args } => {
                assert_eq!(args.len(), 1);
                assert!(matches!(*callee, Expr::Member { .. }));
            }
            _ => panic!("expected call"),
        }
        let p = Expr::Paren(Box::new(Expr::Paren(Box::new(Expr::Int(3)))));
        assert_eq!(p.unparenthesized(), &Expr::Int(3));
    }

    #[test]
    fn unary_postfix_classification() {
        assert!(UnaryOp::PostInc.is_postfix());
        assert!(!UnaryOp::PreInc.is_postfix());
        assert_eq!(UnaryOp::PostInc.symbol(), "++");
    }

    #[test]
    fn type_wrappers() {
        let t = Type::Vector(Box::new(Type::Int)).by_ref();
        assert!(matches!(t, Type::Ref(_)));
        let c = Type::Str.as_const();
        assert!(matches!(c, Type::Const(_)));
    }
}
