//! Style-parameterized pretty-printer.
//!
//! The renderer maps an AST to concrete C++ text under a
//! [`RenderStyle`]: indentation width, brace placement, operator
//! spacing, template spelling, and single-statement brace habits. The
//! AST itself carries all *content* style (names, comments, cast
//! spelling, `++i` vs `i++`), so the renderer is a pure layout engine:
//! for every style `s`, `parse(render(u, s))` has the same
//! [`TranslationUnit::shape_hash`] as `u` when `u` was produced by the
//! parser or the corpus generator.
//!
//! Layout styles are exactly the stylistic degrees of freedom the
//! paper's layout features measure, which is what lets the corpus
//! generator create 204 distinguishable authors from the same
//! underlying programs.

use crate::ast::*;

/// Indentation unit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Indent {
    /// A fixed number of spaces (2, 3, 4, 8 are all seen in GCJ code).
    Spaces(u8),
    /// One tab character.
    Tab,
}

impl Indent {
    fn text(self) -> String {
        match self {
            Indent::Spaces(n) => " ".repeat(n as usize),
            Indent::Tab => "\t".to_string(),
        }
    }
}

/// Where opening braces go.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BraceStyle {
    /// `int main() {`
    SameLine,
    /// `int main()` newline `{`
    NextLine,
}

/// The complete layout-style configuration.
///
/// # Example
///
/// ```
/// use synthattr_lang::render::{RenderStyle, Indent, BraceStyle};
///
/// let allman = RenderStyle {
///     indent: Indent::Spaces(4),
///     brace: BraceStyle::NextLine,
///     ..RenderStyle::default()
/// };
/// assert_ne!(allman, RenderStyle::default());
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct RenderStyle {
    /// Indentation unit per nesting level.
    pub indent: Indent,
    /// Opening-brace placement.
    pub brace: BraceStyle,
    /// `a + b` vs `a+b`.
    pub space_around_binary: bool,
    /// `x = 1` vs `x=1` (also compound assignments).
    pub space_around_assign: bool,
    /// `f(a, b)` vs `f(a,b)`.
    pub space_after_comma: bool,
    /// `if (x)` vs `if(x)`.
    pub space_after_keyword: bool,
    /// `vector<vector<int> >` (pre-C++11 habit) vs `vector<vector<int>>`.
    pub space_in_template_close: bool,
    /// Render single-statement control bodies without braces.
    pub braceless_single_stmt: bool,
    /// Collapse `else { if ... }` chains into `else if (...)`.
    pub collapse_else_if: bool,
    /// Blank lines between top-level functions (0–2).
    pub blank_lines_between_fns: u8,
    /// Blank line after the include/using prologue.
    pub blank_line_after_prologue: bool,
}

impl Default for RenderStyle {
    fn default() -> Self {
        RenderStyle {
            indent: Indent::Spaces(4),
            brace: BraceStyle::SameLine,
            space_around_binary: true,
            space_around_assign: true,
            space_after_comma: true,
            space_after_keyword: true,
            space_in_template_close: false,
            braceless_single_stmt: false,
            collapse_else_if: true,
            blank_lines_between_fns: 1,
            blank_line_after_prologue: true,
        }
    }
}

/// Renders `unit` as C++ source under `style`.
///
/// # Example
///
/// ```
/// use synthattr_lang::{parse, render::{render, RenderStyle}};
/// let unit = parse("int main(){return 0;}")?;
/// let text = render(&unit, &RenderStyle::default());
/// assert!(text.contains("int main() {"));
/// # Ok::<(), synthattr_lang::ParseError>(())
/// ```
pub fn render(unit: &TranslationUnit, style: &RenderStyle) -> String {
    let mut w = Writer::new(style);
    let mut prev_was_fn = false;
    let mut prologue_done = false;
    for (i, item) in unit.items.iter().enumerate() {
        let is_prologue = matches!(
            item,
            Item::Include { .. } | Item::Define { .. } | Item::UsingNamespace(_)
        );
        if !is_prologue && !prologue_done && i > 0 && style.blank_line_after_prologue {
            w.blank_line();
        }
        if !is_prologue {
            prologue_done = true;
        }
        if matches!(item, Item::Function(_)) && prev_was_fn {
            for _ in 0..style.blank_lines_between_fns {
                w.blank_line();
            }
        }
        render_item(item, &mut w);
        prev_was_fn = matches!(item, Item::Function(_));
    }
    w.finish()
}

/// One item's byte range in the output of
/// [`render_with_regions`], together with the number of blank
/// separator lines emitted immediately before it.
///
/// Regions tile the text: separators are bare `'\n'` bytes between
/// regions, every region starts at column 0 and ends with `'\n'`, and
/// `start..end` of region *i* plus `sep_before` newlines of region
/// *i + 1* are contiguous.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RegionSpan {
    /// Byte offset of the region's first byte.
    pub start: usize,
    /// Byte offset one past the region's final `'\n'`.
    pub end: usize,
    /// Blank separator lines emitted before this region.
    pub sep_before: usize,
}

/// Number of blank separator lines [`render`] emits before each item.
///
/// This is the item-loop separator policy of [`render`] factored out:
/// a pure function of the item-kind sequence and the style, shared by
/// the region-tracking renderer and the incremental per-item renderer
/// so all three agree byte-for-byte.
pub fn separator_plan(items: &[Item], style: &RenderStyle) -> Vec<usize> {
    let mut plan = Vec::with_capacity(items.len());
    let mut prev_was_fn = false;
    let mut prologue_done = false;
    for (i, item) in items.iter().enumerate() {
        let is_prologue = matches!(
            item,
            Item::Include { .. } | Item::Define { .. } | Item::UsingNamespace(_)
        );
        let mut sep = 0usize;
        if !is_prologue && !prologue_done && i > 0 && style.blank_line_after_prologue {
            sep += 1;
        }
        if !is_prologue {
            prologue_done = true;
        }
        if matches!(item, Item::Function(_)) && prev_was_fn {
            sep += style.blank_lines_between_fns as usize;
        }
        plan.push(sep);
        prev_was_fn = matches!(item, Item::Function(_));
    }
    plan
}

/// Renders one item in isolation at nesting level 0.
///
/// Because the [`Writer`] carries no cross-item state other than the
/// output buffer (the nesting level returns to 0 after every item),
/// this equals the corresponding region of [`render`] byte-for-byte —
/// `render_with_regions_equals_render` and
/// `single_item_render_equals_region` below keep that claim honest.
pub fn render_item_text(item: &Item, style: &RenderStyle) -> String {
    let mut w = Writer::new(style);
    render_item(item, &mut w);
    w.finish()
}

/// Renders `unit` exactly like [`render`], additionally reporting each
/// item's byte region in the output.
pub fn render_with_regions(
    unit: &TranslationUnit,
    style: &RenderStyle,
) -> (String, Vec<RegionSpan>) {
    let plan = separator_plan(&unit.items, style);
    let mut w = Writer::new(style);
    let mut regions = Vec::with_capacity(unit.items.len());
    for (item, &sep_before) in unit.items.iter().zip(&plan) {
        for _ in 0..sep_before {
            w.blank_line();
        }
        let start = w.out.len();
        render_item(item, &mut w);
        regions.push(RegionSpan {
            start,
            end: w.out.len(),
            sep_before,
        });
    }
    (w.finish(), regions)
}

struct Writer<'s> {
    out: String,
    level: usize,
    style: &'s RenderStyle,
}

impl<'s> Writer<'s> {
    fn new(style: &'s RenderStyle) -> Self {
        Writer {
            out: String::new(),
            level: 0,
            style,
        }
    }

    fn finish(self) -> String {
        self.out
    }

    fn indent_text(&self) -> String {
        self.style.indent.text().repeat(self.level)
    }

    fn line(&mut self, text: &str) {
        self.out.push_str(&self.indent_text());
        self.out.push_str(text);
        self.out.push('\n');
    }

    fn blank_line(&mut self) {
        self.out.push('\n');
    }

    /// Emits `header` followed by an opening brace per brace style and
    /// increases the nesting level.
    fn open(&mut self, header: &str) {
        match self.style.brace {
            BraceStyle::SameLine => self.line(&format!("{header} {{")),
            BraceStyle::NextLine => {
                self.line(header);
                self.line("{");
            }
        }
        self.level += 1;
    }

    fn close(&mut self, suffix: &str) {
        self.level -= 1;
        self.line(&format!("}}{suffix}"));
    }
}

fn render_item(item: &Item, w: &mut Writer<'_>) {
    match item {
        Item::Include { path, system } => {
            if *system {
                w.line(&format!("#include <{path}>"));
            } else {
                w.line(&format!("#include \"{path}\""));
            }
        }
        Item::Define { text } => w.line(&format!("#{text}")),
        Item::UsingNamespace(ns) => w.line(&format!("using namespace {ns};")),
        Item::Typedef { ty, name } => {
            w.line(&format!("typedef {} {name};", type_text(ty, w.style)))
        }
        Item::UsingAlias { name, ty } => {
            w.line(&format!("using {name} = {};", type_text(ty, w.style)))
        }
        Item::GlobalVar(decl) => {
            let text = declaration_text(decl, w.style);
            w.line(&format!("{text};"));
        }
        Item::Comment(c) => render_comment(c, w),
        Item::Function(f) => render_function(f, w),
    }
}

fn render_comment(c: &Comment, w: &mut Writer<'_>) {
    if c.block {
        w.line(&format!("/* {} */", c.text));
    } else {
        w.line(&format!("// {}", c.text));
    }
}

fn render_function(f: &Function, w: &mut Writer<'_>) {
    let params: Vec<String> = f
        .params
        .iter()
        .map(|p| format!("{} {}", type_text(&p.ty, w.style), p.name))
        .collect();
    let comma = if w.style.space_after_comma { ", " } else { "," };
    let header = format!(
        "{} {}({})",
        type_text(&f.ret, w.style),
        f.name,
        params.join(comma)
    );
    w.open(&header);
    render_block_contents(&f.body, w);
    w.close("");
}

fn render_block_contents(block: &Block, w: &mut Writer<'_>) {
    for stmt in &block.stmts {
        render_stmt(stmt, w);
    }
}

/// Whether `block` may render as a braceless single statement under
/// the current style. Control statements are excluded, which also rules
/// out any dangling-`else` ambiguity.
fn can_braceless(w: &Writer<'_>, block: &Block) -> bool {
    w.style.braceless_single_stmt
        && block.stmts.len() == 1
        && matches!(
            block.stmts[0],
            Stmt::Expr(_) | Stmt::Return(_) | Stmt::Break | Stmt::Continue | Stmt::Empty
        )
}

fn kw_paren(w: &Writer<'_>, kw: &str, inner: &str) -> String {
    if w.style.space_after_keyword {
        format!("{kw} ({inner})")
    } else {
        format!("{kw}({inner})")
    }
}

fn render_stmt(stmt: &Stmt, w: &mut Writer<'_>) {
    match stmt {
        Stmt::Decl(d) => {
            let text = declaration_text(d, w.style);
            w.line(&format!("{text};"));
        }
        Stmt::Expr(e) => {
            let text = expr_text(e, 0, w.style);
            w.line(&format!("{text};"));
        }
        Stmt::Return(None) => w.line("return;"),
        Stmt::Return(Some(e)) => {
            let text = expr_text(e, 0, w.style);
            w.line(&format!("return {text};"));
        }
        Stmt::Break => w.line("break;"),
        Stmt::Continue => w.line("continue;"),
        Stmt::Empty => w.line(";"),
        Stmt::Comment(c) => render_comment(c, w),
        Stmt::Block(b) => {
            w.line("{");
            w.level += 1;
            render_block_contents(b, w);
            w.level -= 1;
            w.line("}");
        }
        Stmt::If {
            cond,
            then_branch,
            else_branch,
        } => render_if(cond, then_branch, else_branch.as_ref(), w),
        Stmt::While { cond, body } => {
            let header = kw_paren(w, "while", &expr_text(cond, 0, w.style));
            render_control(&header, body, w, true);
        }
        Stmt::DoWhile { body, cond } => {
            w.open("do");
            render_block_contents(body, w);
            let tail = format!(
                " {};",
                kw_paren(w, "while", &expr_text(cond, 0, w.style)).trim_start_matches(' ')
            );
            w.close(&tail);
        }
        Stmt::For {
            init,
            cond,
            step,
            body,
        } => {
            let init_text = match init.as_deref() {
                None => String::new(),
                Some(Stmt::Decl(d)) => declaration_text(d, w.style),
                Some(Stmt::Expr(e)) => expr_text(e, 0, w.style),
                Some(other) => unreachable!("invalid for-init statement: {other:?}"),
            };
            let cond_text = cond
                .as_ref()
                .map(|c| expr_text(c, 0, w.style))
                .unwrap_or_default();
            let step_text = step
                .as_ref()
                .map(|s| expr_text(s, 0, w.style))
                .unwrap_or_default();
            let header = kw_paren(w, "for", &format!("{init_text}; {cond_text}; {step_text}"));
            render_control(&header, body, w, true);
        }
        Stmt::ForEach {
            ty,
            name,
            by_ref,
            iterable,
            body,
        } => {
            let amp = if *by_ref { "&" } else { "" };
            let inner = format!(
                "{}{amp} {name} : {}",
                type_text(ty, w.style),
                expr_text(iterable, 0, w.style)
            );
            let header = kw_paren(w, "for", &inner);
            render_control(&header, body, w, true);
        }
    }
}

/// Renders a control header + body, with or without braces.
fn render_control(header: &str, body: &Block, w: &mut Writer<'_>, allow_braceless: bool) {
    if allow_braceless && can_braceless(w, body) {
        w.line(header);
        w.level += 1;
        render_stmt(&body.stmts[0], w);
        w.level -= 1;
    } else {
        w.open(header);
        render_block_contents(body, w);
        w.close("");
    }
}

fn render_if(cond: &Expr, then_branch: &Block, else_branch: Option<&Block>, w: &mut Writer<'_>) {
    let header = kw_paren(w, "if", &expr_text(cond, 0, w.style));
    render_if_chain(&header, then_branch, else_branch, w);
}

/// Renders an `if` given a pre-built header (which may be `else if`),
/// keeping the writer's indentation level balanced.
fn render_if_chain(
    header: &str,
    then_branch: &Block,
    else_branch: Option<&Block>,
    w: &mut Writer<'_>,
) {
    if can_braceless(w, then_branch) {
        // `can_braceless` never admits a nested `if`/loop, so the
        // dangling-else ambiguity cannot arise here.
        w.line(header);
        w.level += 1;
        render_stmt(&then_branch.stmts[0], w);
        w.level -= 1;
        if let Some(eb) = else_branch {
            render_else(eb, w, false);
        }
    } else {
        w.open(header);
        render_block_contents(then_branch, w);
        w.level -= 1;
        match else_branch {
            None => w.line("}"),
            Some(eb) => render_else(eb, w, true),
        }
    }
}

/// Renders the `else ...` continuation at the writer's current level.
/// `after_brace` is true when the then branch was braced and its
/// closing `}` has not yet been printed.
fn render_else(else_block: &Block, w: &mut Writer<'_>, after_brace: bool) {
    let prefix: String = if after_brace {
        match w.style.brace {
            BraceStyle::SameLine => "} else".to_string(),
            BraceStyle::NextLine => {
                w.line("}");
                "else".to_string()
            }
        }
    } else {
        "else".to_string()
    };
    // `else if` collapsing.
    if w.style.collapse_else_if && else_block.stmts.len() == 1 {
        if let Stmt::If {
            cond,
            then_branch,
            else_branch,
        } = &else_block.stmts[0]
        {
            let header = format!(
                "{prefix} {}",
                kw_paren(w, "if", &expr_text(cond, 0, w.style))
            );
            render_if_chain(&header, then_branch, else_branch.as_ref(), w);
            return;
        }
    }
    if can_braceless(w, else_block) {
        w.line(&prefix);
        w.level += 1;
        render_stmt(&else_block.stmts[0], w);
        w.level -= 1;
    } else {
        w.open(&prefix);
        render_block_contents(else_block, w);
        w.close("");
    }
}

// ---------------------------------------------------------------------------
// Types, declarations, expressions
// ---------------------------------------------------------------------------

/// Renders a type under `style` (template-close spacing applies).
pub fn type_text(ty: &Type, style: &RenderStyle) -> String {
    let close = |inner: &str| {
        if style.space_in_template_close && inner.ends_with('>') {
            format!("{inner} >")
        } else {
            format!("{inner}>")
        }
    };
    match ty {
        Type::Void => "void".into(),
        Type::Bool => "bool".into(),
        Type::Char => "char".into(),
        Type::Int => "int".into(),
        Type::Long => "long".into(),
        Type::LongLong => "long long".into(),
        Type::Unsigned => "unsigned".into(),
        Type::Float => "float".into(),
        Type::Double => "double".into(),
        Type::Auto => "auto".into(),
        Type::Str => "string".into(),
        Type::Named(name) => name.clone(),
        Type::Vector(inner) => {
            let i = type_text(inner, style);
            format!("vector<{}", close(&i))
        }
        Type::Set(inner) => {
            let i = type_text(inner, style);
            format!("set<{}", close(&i))
        }
        Type::Pair(a, b) => {
            let comma = if style.space_after_comma { ", " } else { "," };
            let i = format!("{}{comma}{}", type_text(a, style), type_text(b, style));
            format!("pair<{}", close(&i))
        }
        Type::Map(k, v) => {
            let comma = if style.space_after_comma { ", " } else { "," };
            let i = format!("{}{comma}{}", type_text(k, style), type_text(v, style));
            format!("map<{}", close(&i))
        }
        Type::Ref(inner) => format!("{}&", type_text(inner, style)),
        Type::Const(inner) => format!("const {}", type_text(inner, style)),
    }
}

fn declaration_text(decl: &Declaration, style: &RenderStyle) -> String {
    let comma = if style.space_after_comma { ", " } else { "," };
    let assign = if style.space_around_assign {
        " = "
    } else {
        "="
    };
    let parts: Vec<String> = decl
        .declarators
        .iter()
        .map(|d| {
            let mut s = d.name.clone();
            if let Some(extent) = &d.array {
                s.push_str(&format!("[{}]", expr_text(extent, 0, style)));
            }
            match &d.init {
                Some(Initializer::Assign(e)) => {
                    s.push_str(assign);
                    s.push_str(&expr_text(e, 0, style));
                }
                Some(Initializer::Ctor(args)) => {
                    let args: Vec<String> = args.iter().map(|a| expr_text(a, 0, style)).collect();
                    s.push_str(&format!("({})", args.join(comma)));
                }
                None => {}
            }
            s
        })
        .collect();
    format!("{} {}", type_text(&decl.ty, style), parts.join(comma))
}

/// Precedence level of an expression for parenthesization decisions.
fn prec(e: &Expr) -> u8 {
    match e {
        Expr::Assign { .. } => 0,
        Expr::Ternary { .. } => 1,
        Expr::Binary { op, .. } => 2 + op.precedence(),
        Expr::Unary { op, .. } if !op.is_postfix() => 13,
        Expr::Cast { .. } => 13,
        Expr::Unary { .. } | Expr::Call { .. } | Expr::Member { .. } | Expr::Index { .. } => 14,
        _ => 15,
    }
}

/// Renders `e`, wrapping in parentheses when its precedence is below
/// `min_prec` (a safety net: parser-produced trees carry explicit
/// [`Expr::Paren`] nodes wherever the source had parentheses).
fn expr_text(e: &Expr, min_prec: u8, style: &RenderStyle) -> String {
    let text = expr_text_inner(e, style);
    if prec(e) < min_prec {
        format!("({text})")
    } else {
        text
    }
}

fn escape_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            '\0' => out.push_str("\\0"),
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            other => out.push(other),
        }
    }
    out
}

fn escape_char(c: char) -> String {
    match c {
        '\n' => "\\n".into(),
        '\t' => "\\t".into(),
        '\r' => "\\r".into(),
        '\0' => "\\0".into(),
        '\\' => "\\\\".into(),
        '\'' => "\\'".into(),
        other => other.to_string(),
    }
}

fn expr_text_inner(e: &Expr, style: &RenderStyle) -> String {
    let comma = if style.space_after_comma { ", " } else { "," };
    match e {
        Expr::Int(v) => v.to_string(),
        Expr::Float(s) => s.clone(),
        Expr::Str(s) => format!("\"{}\"", escape_str(s)),
        Expr::Char(c) => format!("'{}'", escape_char(*c)),
        Expr::Bool(b) => b.to_string(),
        Expr::Ident(name) => name.clone(),
        Expr::Paren(inner) => format!("({})", expr_text(inner, 0, style)),
        Expr::Unary { op, expr } => {
            if op.is_postfix() {
                format!("{}{}", expr_text(expr, 14, style), op.symbol())
            } else {
                // `- -x` must not fuse into `--x`.
                let operand = expr_text(expr, 13, style);
                let sep = match (op, operand.as_bytes().first()) {
                    (UnaryOp::Neg, Some(b'-')) | (UnaryOp::Plus, Some(b'+')) => " ",
                    _ => "",
                };
                format!("{}{sep}{operand}", op.symbol())
            }
        }
        Expr::Binary { op, lhs, rhs } => {
            let p = 2 + op.precedence();
            let l = expr_text(lhs, p, style);
            let r = expr_text(rhs, p + 1, style);
            if style.space_around_binary {
                format!("{l} {} {r}", op.symbol())
            } else {
                format!("{l}{}{r}", op.symbol())
            }
        }
        Expr::Assign { op, lhs, rhs } => {
            let l = expr_text(lhs, 13, style);
            let r = expr_text(rhs, 0, style);
            if style.space_around_assign {
                format!("{l} {} {r}", op.symbol())
            } else {
                format!("{l}{}{r}", op.symbol())
            }
        }
        Expr::Ternary {
            cond,
            then_expr,
            else_expr,
        } => {
            let c = expr_text(cond, 2, style);
            let t = expr_text(then_expr, 0, style);
            let f = expr_text(else_expr, 0, style);
            format!("{c} ? {t} : {f}")
        }
        Expr::Call { callee, args } => {
            let callee_text = expr_text(callee, 14, style);
            let args: Vec<String> = args.iter().map(|a| expr_text(a, 0, style)).collect();
            format!("{callee_text}({})", args.join(comma))
        }
        Expr::Member {
            base,
            member,
            arrow,
        } => {
            let b = expr_text(base, 14, style);
            let sep = if *arrow { "->" } else { "." };
            format!("{b}{sep}{member}")
        }
        Expr::Index { base, index } => {
            let b = expr_text(base, 14, style);
            format!("{b}[{}]", expr_text(index, 0, style))
        }
        Expr::Cast { ty, expr } => {
            format!("({}){}", type_text(ty, style), expr_text(expr, 13, style))
        }
        Expr::StaticCast { ty, expr } => {
            let close = if style.space_in_template_close && type_text(ty, style).ends_with('>') {
                format!("static_cast<{} >", type_text(ty, style))
            } else {
                format!("static_cast<{}>", type_text(ty, style))
            };
            format!("{close}({})", expr_text(expr, 0, style))
        }
        Expr::InitList(elems) => {
            let elems: Vec<String> = elems.iter().map(|x| expr_text(x, 0, style)).collect();
            format!("{{{}}}", elems.join(comma))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse;

    const PROGRAM: &str = r#"
#include <iostream>
#include <vector>
using namespace std;
typedef long long ll;
int cache[100];
int helper(int a, vector<int>& xs) {
    int acc = a;
    for (auto& x : xs) {
        acc += x;
    }
    if (acc > 10) {
        return acc;
    } else if (acc > 5) {
        return acc * 2;
    } else {
        return 0;
    }
}
int main() {
    int n;
    double t = 0;
    cin >> n;
    vector<int> xs(n, 0);
    for (int i = 0; i < n; ++i) {
        cin >> xs[i];
        t = max(t, (double)xs[i] / 2.0);
    }
    while (n > 0) {
        n--;
    }
    do {
        n++;
    } while (n < 1);
    cout << "Case #" << 1 << ": " << helper(n, xs) ? 1 : 0 << endl;
    return 0;
}
"#;

    fn all_styles() -> Vec<RenderStyle> {
        let mut styles = Vec::new();
        for &indent in &[Indent::Spaces(2), Indent::Spaces(4), Indent::Tab] {
            for &brace in &[BraceStyle::SameLine, BraceStyle::NextLine] {
                for &braceless in &[false, true] {
                    for &spacing in &[false, true] {
                        styles.push(RenderStyle {
                            indent,
                            brace,
                            braceless_single_stmt: braceless,
                            space_around_binary: spacing,
                            space_after_comma: spacing,
                            space_after_keyword: spacing,
                            space_in_template_close: !spacing,
                            ..RenderStyle::default()
                        });
                    }
                }
            }
        }
        styles
    }

    #[test]
    fn render_with_regions_equals_render() {
        let unit = parse(PROGRAM.replace("? 1 : 0", "").as_str())
            .unwrap_or_else(|_| parse("int main() { return 0; }").unwrap());
        let rich = parse(
            "#include <iostream>\nusing namespace std;\nint f() { return 1; }\nint g() { return 2; }\nint main() { return f() + g(); }",
        )
        .unwrap();
        for unit in [&unit, &rich, &parse("").unwrap()] {
            for style in all_styles() {
                for blanks in [0u8, 1, 2] {
                    let style = RenderStyle {
                        blank_lines_between_fns: blanks,
                        blank_line_after_prologue: blanks > 0,
                        ..style.clone()
                    };
                    let plain = render(unit, &style);
                    let (text, regions) = render_with_regions(unit, &style);
                    assert_eq!(text, plain);
                    assert_eq!(regions.len(), unit.items.len());
                    // Regions + separators tile the text.
                    let mut pos = 0usize;
                    for r in &regions {
                        assert_eq!(r.start, pos + r.sep_before);
                        assert_eq!(&text[pos..r.start], "\n".repeat(r.sep_before));
                        assert!(text[r.start..r.end].ends_with('\n') || r.start == r.end);
                        pos = r.end;
                    }
                    assert_eq!(pos, text.len());
                }
            }
        }
    }

    #[test]
    fn single_item_render_equals_region() {
        let unit = parse(
            "#include <iostream>\nusing namespace std;\ntypedef long long ll;\nll cache = 0;\nint f(int a) { if (a > 0) { return a; } return -a; }\nint main() { return f(3); }",
        )
        .unwrap();
        for style in all_styles() {
            let style = RenderStyle {
                blank_lines_between_fns: 1,
                blank_line_after_prologue: true,
                ..style
            };
            let (text, regions) = render_with_regions(&unit, &style);
            for (item, r) in unit.items.iter().zip(&regions) {
                assert_eq!(render_item_text(item, &style), &text[r.start..r.end]);
            }
            let plan = separator_plan(&unit.items, &style);
            let seps: Vec<usize> = regions.iter().map(|r| r.sep_before).collect();
            assert_eq!(plan, seps);
            assert_eq!(text, render(&unit, &style));
        }
    }

    #[test]
    fn roundtrip_shape_under_every_style() {
        // Fix the deliberate precedence quirk in the fixture first.
        let src = PROGRAM.replace(
            "cout << \"Case #\" << 1 << \": \" << helper(n, xs) ? 1 : 0 << endl;",
            "cout << \"Case #\" << 1 << \": \" << (helper(n, xs) > 0 ? 1 : 0) << endl;",
        );
        let unit = parse(&src).unwrap();
        for (i, style) in all_styles().iter().enumerate() {
            let text = render(&unit, style);
            let reparsed = parse(&text).unwrap_or_else(|e| panic!("style {i}: {e}\n{text}"));
            assert_eq!(
                unit.shape_hash(),
                reparsed.shape_hash(),
                "style {i} changed shape:\n{text}"
            );
        }
    }

    #[test]
    fn styles_produce_distinct_text() {
        let unit = parse("int main() { if (1) { return 1; } return 0; }").unwrap();
        let texts: Vec<String> = all_styles().iter().map(|s| render(&unit, s)).collect();
        let mut unique = texts.clone();
        unique.sort();
        unique.dedup();
        assert!(
            unique.len() >= 12,
            "expected many distinct renderings, got {}",
            unique.len()
        );
    }

    #[test]
    fn same_line_vs_next_line_braces() {
        let unit = parse("int main() { return 0; }").unwrap();
        let same = render(
            &unit,
            &RenderStyle {
                brace: BraceStyle::SameLine,
                ..RenderStyle::default()
            },
        );
        let next = render(
            &unit,
            &RenderStyle {
                brace: BraceStyle::NextLine,
                ..RenderStyle::default()
            },
        );
        assert!(same.contains("int main() {"));
        assert!(next.contains("int main()\n{"));
    }

    #[test]
    fn braceless_single_statement_bodies() {
        let unit = parse("int main() { if (1) return 1; for (;;) break; return 0; }").unwrap();
        let text = render(
            &unit,
            &RenderStyle {
                braceless_single_stmt: true,
                ..RenderStyle::default()
            },
        );
        assert!(text.contains("if (1)\n        return 1;"), "{text}");
        assert!(!text.contains("if (1) {"), "{text}");
        let reparsed = parse(&text).unwrap();
        assert_eq!(unit.shape_hash(), reparsed.shape_hash());
    }

    #[test]
    fn dangling_else_gets_braces() {
        let unit =
            parse("int f(int x) { if (x) { if (x > 1) return 2; } else return 3; return 0; }")
                .unwrap();
        let text = render(
            &unit,
            &RenderStyle {
                braceless_single_stmt: true,
                ..RenderStyle::default()
            },
        );
        let reparsed = parse(&text).unwrap_or_else(|e| panic!("{e}\n{text}"));
        assert_eq!(unit.shape_hash(), reparsed.shape_hash(), "{text}");
    }

    #[test]
    fn else_if_collapses() {
        let unit =
            parse("int f(int x) { if (x > 0) { return 1; } else if (x < 0) { return -1; } else { return 0; } }")
                .unwrap();
        let text = render(&unit, &RenderStyle::default());
        assert!(
            text.contains("} else if (x < 0) {") || text.contains("else if (x < 0)"),
            "{text}"
        );
        let reparsed = parse(&text).unwrap();
        assert_eq!(unit.shape_hash(), reparsed.shape_hash());
    }

    #[test]
    fn template_close_spacing() {
        let unit = parse("int main() { vector<vector<int>> g; return 0; }").unwrap();
        let old = render(
            &unit,
            &RenderStyle {
                space_in_template_close: true,
                ..RenderStyle::default()
            },
        );
        assert!(old.contains("vector<vector<int> >"), "{old}");
        let reparsed = parse(&old).unwrap();
        assert_eq!(unit.shape_hash(), reparsed.shape_hash());
    }

    #[test]
    fn string_escapes_roundtrip() {
        let unit = parse(r#"int main() { cout << "a\tb\n" << '\n'; return 0; }"#).unwrap();
        let text = render(&unit, &RenderStyle::default());
        assert!(text.contains(r#""a\tb\n""#), "{text}");
        assert!(text.contains(r#"'\n'"#), "{text}");
        let reparsed = parse(&text).unwrap();
        assert_eq!(unit.shape_hash(), reparsed.shape_hash());
    }

    #[test]
    fn negative_literal_does_not_fuse() {
        use crate::ast::UnaryOp;
        let e = Expr::Unary {
            op: UnaryOp::Neg,
            expr: Box::new(Expr::Unary {
                op: UnaryOp::Neg,
                expr: Box::new(Expr::Int(1)),
            }),
        };
        let text = expr_text(&e, 0, &RenderStyle::default());
        assert_eq!(text, "- -1");
    }

    #[test]
    fn auto_parenthesization_safety_net() {
        // A hand-built tree lacking explicit Paren nodes still renders
        // with correct semantics.
        let e = Expr::bin(
            BinaryOp::Mul,
            Expr::bin(BinaryOp::Add, Expr::ident("a"), Expr::ident("b")),
            Expr::ident("c"),
        );
        let text = expr_text(&e, 0, &RenderStyle::default());
        assert_eq!(text, "(a + b) * c");
    }

    #[test]
    fn ctor_and_assign_initializers_render_differently() {
        let unit =
            parse("int main() { vector<int> a(3, 7); vector<int> b = {3, 7}; return 0; }").unwrap();
        let text = render(&unit, &RenderStyle::default());
        assert!(text.contains("a(3, 7)"), "{text}");
        assert!(text.contains("b = {3, 7}"), "{text}");
        let reparsed = parse(&text).unwrap();
        assert_eq!(unit.shape_hash(), reparsed.shape_hash());
    }

    #[test]
    fn comments_render_in_their_original_form() {
        let unit = parse("// top\nint main() { /* mid */ return 0; }").unwrap();
        let text = render(&unit, &RenderStyle::default());
        assert!(text.contains("// top"));
        assert!(text.contains("/* mid */"));
    }
}
