//! AST traversal: read-only kind walking (for metrics) and mutation
//! helpers (for the transformation engine).

use crate::ast::*;
use std::collections::HashMap;

/// A read-only visitor receiving every node's [`NodeKind`] and depth.
///
/// Depth 0 is the translation unit itself; each structural level of
/// nesting adds one.
pub trait Visitor {
    /// Called once per node in pre-order.
    fn visit(&mut self, kind: NodeKind, depth: usize);

    /// Called once per item, before its children. Default: no-op.
    fn visit_item(&mut self, _item: &Item) {}

    /// Called once per statement, before its children. Default: no-op.
    fn visit_stmt(&mut self, _stmt: &Stmt) {}

    /// Called once per expression, before its children. Default: no-op.
    fn visit_expr(&mut self, _expr: &Expr) {}
}

/// Feeds one traversal to two visitors, in order. Each visitor sees
/// exactly the node stream it would have seen walking alone, so
/// fusing two independent collectors into one walk is bit-identical
/// to running them back to back — at half the traversal cost.
pub struct Pair<'a, A, B>(pub &'a mut A, pub &'a mut B);

impl<A: Visitor, B: Visitor> Visitor for Pair<'_, A, B> {
    fn visit(&mut self, kind: NodeKind, depth: usize) {
        self.0.visit(kind, depth);
        self.1.visit(kind, depth);
    }

    fn visit_item(&mut self, item: &Item) {
        self.0.visit_item(item);
        self.1.visit_item(item);
    }

    fn visit_stmt(&mut self, stmt: &Stmt) {
        self.0.visit_stmt(stmt);
        self.1.visit_stmt(stmt);
    }

    fn visit_expr(&mut self, expr: &Expr) {
        self.0.visit_expr(expr);
        self.1.visit_expr(expr);
    }
}

/// Walks the unit in pre-order, invoking `v` for every node.
pub fn walk_unit<V: Visitor>(unit: &TranslationUnit, v: &mut V) {
    v.visit(NodeKind::Unit, 0);
    for item in &unit.items {
        walk_item(item, v, 1);
    }
}

/// Walks one item in pre-order at `depth` (items sit at depth 1 in a
/// whole-unit walk). Exposed so per-item collectors can reproduce the
/// exact node stream [`walk_unit`] would produce for this item.
pub fn walk_item<V: Visitor>(item: &Item, v: &mut V, depth: usize) {
    v.visit_item(item);
    match item {
        Item::Include { .. } => v.visit(NodeKind::Include, depth),
        Item::Define { .. } => v.visit(NodeKind::Define, depth),
        Item::UsingNamespace(_) => v.visit(NodeKind::UsingNamespace, depth),
        Item::Typedef { .. } => v.visit(NodeKind::Typedef, depth),
        Item::UsingAlias { .. } => v.visit(NodeKind::UsingAlias, depth),
        Item::Comment(_) => v.visit(NodeKind::CommentNode, depth),
        Item::GlobalVar(decl) => {
            v.visit(NodeKind::GlobalVar, depth);
            walk_declaration(decl, v, depth + 1);
        }
        Item::Function(f) => {
            v.visit(NodeKind::Function, depth);
            for _p in &f.params {
                v.visit(NodeKind::Param, depth + 1);
            }
            walk_block(&f.body, v, depth + 1);
        }
    }
}

fn walk_block<V: Visitor>(block: &Block, v: &mut V, depth: usize) {
    v.visit(NodeKind::Block, depth);
    for stmt in &block.stmts {
        walk_stmt(stmt, v, depth + 1);
    }
}

fn walk_declaration<V: Visitor>(decl: &Declaration, v: &mut V, depth: usize) {
    v.visit(NodeKind::TypeNode, depth);
    for d in &decl.declarators {
        v.visit(NodeKind::Declarator, depth);
        if let Some(extent) = &d.array {
            walk_expr(extent, v, depth + 1);
        }
        match &d.init {
            Some(Initializer::Assign(e)) => walk_expr(e, v, depth + 1),
            Some(Initializer::Ctor(args)) => {
                for a in args {
                    walk_expr(a, v, depth + 1);
                }
            }
            None => {}
        }
    }
}

fn walk_stmt<V: Visitor>(stmt: &Stmt, v: &mut V, depth: usize) {
    v.visit_stmt(stmt);
    match stmt {
        Stmt::Decl(d) => {
            v.visit(NodeKind::DeclStmt, depth);
            walk_declaration(d, v, depth + 1);
        }
        Stmt::Expr(e) => {
            v.visit(NodeKind::ExprStmt, depth);
            walk_expr(e, v, depth + 1);
        }
        Stmt::If {
            cond,
            then_branch,
            else_branch,
        } => {
            v.visit(NodeKind::IfStmt, depth);
            walk_expr(cond, v, depth + 1);
            walk_block(then_branch, v, depth + 1);
            if let Some(e) = else_branch {
                walk_block(e, v, depth + 1);
            }
        }
        Stmt::For {
            init,
            cond,
            step,
            body,
        } => {
            v.visit(NodeKind::ForStmt, depth);
            if let Some(i) = init {
                walk_stmt(i, v, depth + 1);
            }
            if let Some(c) = cond {
                walk_expr(c, v, depth + 1);
            }
            if let Some(s) = step {
                walk_expr(s, v, depth + 1);
            }
            walk_block(body, v, depth + 1);
        }
        Stmt::ForEach { iterable, body, .. } => {
            v.visit(NodeKind::ForEachStmt, depth);
            walk_expr(iterable, v, depth + 1);
            walk_block(body, v, depth + 1);
        }
        Stmt::While { cond, body } => {
            v.visit(NodeKind::WhileStmt, depth);
            walk_expr(cond, v, depth + 1);
            walk_block(body, v, depth + 1);
        }
        Stmt::DoWhile { body, cond } => {
            v.visit(NodeKind::DoWhileStmt, depth);
            walk_block(body, v, depth + 1);
            walk_expr(cond, v, depth + 1);
        }
        Stmt::Return(e) => {
            v.visit(NodeKind::ReturnStmt, depth);
            if let Some(e) = e {
                walk_expr(e, v, depth + 1);
            }
        }
        Stmt::Break => v.visit(NodeKind::BreakStmt, depth),
        Stmt::Continue => v.visit(NodeKind::ContinueStmt, depth),
        Stmt::Block(b) => walk_block(b, v, depth),
        Stmt::Comment(_) => v.visit(NodeKind::CommentNode, depth),
        Stmt::Empty => v.visit(NodeKind::EmptyStmt, depth),
    }
}

fn walk_expr<V: Visitor>(expr: &Expr, v: &mut V, depth: usize) {
    v.visit_expr(expr);
    match expr {
        Expr::Int(_) => v.visit(NodeKind::IntLit, depth),
        Expr::Float(_) => v.visit(NodeKind::FloatLit, depth),
        Expr::Str(_) => v.visit(NodeKind::StrLit, depth),
        Expr::Char(_) => v.visit(NodeKind::CharLit, depth),
        Expr::Bool(_) => v.visit(NodeKind::BoolLit, depth),
        Expr::Ident(_) => v.visit(NodeKind::Ident, depth),
        Expr::Unary { expr, .. } => {
            v.visit(NodeKind::Unary, depth);
            walk_expr(expr, v, depth + 1);
        }
        Expr::Binary { lhs, rhs, .. } => {
            v.visit(NodeKind::Binary, depth);
            walk_expr(lhs, v, depth + 1);
            walk_expr(rhs, v, depth + 1);
        }
        Expr::Assign { lhs, rhs, .. } => {
            v.visit(NodeKind::Assign, depth);
            walk_expr(lhs, v, depth + 1);
            walk_expr(rhs, v, depth + 1);
        }
        Expr::Ternary {
            cond,
            then_expr,
            else_expr,
        } => {
            v.visit(NodeKind::Ternary, depth);
            walk_expr(cond, v, depth + 1);
            walk_expr(then_expr, v, depth + 1);
            walk_expr(else_expr, v, depth + 1);
        }
        Expr::Call { callee, args } => {
            v.visit(NodeKind::Call, depth);
            walk_expr(callee, v, depth + 1);
            for a in args {
                walk_expr(a, v, depth + 1);
            }
        }
        Expr::Member { base, .. } => {
            v.visit(NodeKind::Member, depth);
            walk_expr(base, v, depth + 1);
        }
        Expr::Index { base, index } => {
            v.visit(NodeKind::Index, depth);
            walk_expr(base, v, depth + 1);
            walk_expr(index, v, depth + 1);
        }
        Expr::Cast { expr, .. } => {
            v.visit(NodeKind::Cast, depth);
            walk_expr(expr, v, depth + 1);
        }
        Expr::StaticCast { expr, .. } => {
            v.visit(NodeKind::StaticCastNode, depth);
            walk_expr(expr, v, depth + 1);
        }
        Expr::Paren(inner) => {
            v.visit(NodeKind::Paren, depth);
            walk_expr(inner, v, depth + 1);
        }
        Expr::InitList(elems) => {
            v.visit(NodeKind::InitList, depth);
            for e in elems {
                walk_expr(e, v, depth + 1);
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Mutation helpers
// ---------------------------------------------------------------------------

/// Extracts the defined name from a `#define` directive body (the text
/// stored in [`Item::Define`], without the leading `#`). Returns `None`
/// for non-define directives such as `pragma once`.
pub fn define_name(text: &str) -> Option<&str> {
    let mut parts = text.split_whitespace();
    if parts.next()? != "define" {
        return None;
    }
    let name = parts.next()?;
    Some(name.split('(').next().unwrap_or(name))
}

/// Collects every *user-declared* name in the unit: function names,
/// parameters, local and global variables, range-for variables,
/// `typedef`/`using` alias names, and `#define` macro names.
///
/// Library names (`cin`, `max`, member names, …) never appear here.
/// The set serves two callers with different needs: fresh-name
/// generation must avoid *everything* listed here, while renamers must
/// additionally skip the type-alias and macro names ([`rename_idents`]
/// only rewrites declarator sites and identifier expressions, so those
/// names are declaration-only from its point of view).
pub fn declared_names(unit: &TranslationUnit) -> Vec<String> {
    let mut names = Vec::new();
    for item in &unit.items {
        match item {
            Item::GlobalVar(d) => {
                names.extend(d.declarators.iter().map(|x| x.name.clone()));
            }
            Item::Function(f) => {
                if f.name != "main" {
                    names.push(f.name.clone());
                }
                names.extend(f.params.iter().map(|p| p.name.clone()));
                collect_block_names(&f.body, &mut names);
            }
            Item::Typedef { name, .. } | Item::UsingAlias { name, .. } => {
                names.push(name.clone());
            }
            Item::Define { text } => {
                if let Some(name) = define_name(text) {
                    names.push(name.to_string());
                }
            }
            _ => {}
        }
    }
    names.sort();
    names.dedup();
    names
}

/// The subset of [`declared_names`] that a renamer must leave alone:
/// `typedef`/`using` alias names and `#define` macro names, whose uses
/// live in type positions or macro expansions that [`rename_idents`]
/// cannot rewrite.
pub fn unrenameable_names(unit: &TranslationUnit) -> Vec<String> {
    let mut names: Vec<String> = unit
        .items
        .iter()
        .filter_map(|item| match item {
            Item::Typedef { name, .. } | Item::UsingAlias { name, .. } => Some(name.clone()),
            Item::Define { text } => define_name(text).map(str::to_string),
            _ => None,
        })
        .collect();
    names.sort();
    names.dedup();
    names
}

fn collect_block_names(block: &Block, names: &mut Vec<String>) {
    for stmt in &block.stmts {
        collect_stmt_names(stmt, names);
    }
}

fn collect_stmt_names(stmt: &Stmt, names: &mut Vec<String>) {
    match stmt {
        Stmt::Decl(d) => names.extend(d.declarators.iter().map(|x| x.name.clone())),
        Stmt::If {
            then_branch,
            else_branch,
            ..
        } => {
            collect_block_names(then_branch, names);
            if let Some(e) = else_branch {
                collect_block_names(e, names);
            }
        }
        Stmt::For { init, body, .. } => {
            if let Some(i) = init {
                collect_stmt_names(i, names);
            }
            collect_block_names(body, names);
        }
        Stmt::ForEach { name, body, .. } => {
            names.push(name.clone());
            collect_block_names(body, names);
        }
        Stmt::While { body, .. } => collect_block_names(body, names),
        Stmt::DoWhile { body, .. } => collect_block_names(body, names),
        Stmt::Block(b) => collect_block_names(b, names),
        _ => {}
    }
}

/// Applies `mapping` to every declaration site and identifier use in
/// the unit. Member names, include paths, string literals, and any
/// identifier not in the mapping are untouched.
pub fn rename_idents(unit: &mut TranslationUnit, mapping: &HashMap<String, String>) {
    let rename = |name: &mut String| {
        if let Some(new) = mapping.get(name) {
            *name = new.clone();
        }
    };
    for item in &mut unit.items {
        match item {
            Item::GlobalVar(d) => rename_declaration(d, mapping),
            Item::Function(f) => {
                rename(&mut f.name);
                for p in &mut f.params {
                    rename(&mut p.name);
                }
                rename_block(&mut f.body, mapping);
            }
            _ => {}
        }
    }
}

fn rename_declaration(decl: &mut Declaration, mapping: &HashMap<String, String>) {
    for d in &mut decl.declarators {
        if let Some(new) = mapping.get(&d.name) {
            d.name = new.clone();
        }
        if let Some(extent) = &mut d.array {
            rename_expr(extent, mapping);
        }
        match &mut d.init {
            Some(Initializer::Assign(e)) => rename_expr(e, mapping),
            Some(Initializer::Ctor(args)) => {
                for a in args {
                    rename_expr(a, mapping);
                }
            }
            None => {}
        }
    }
}

fn rename_block(block: &mut Block, mapping: &HashMap<String, String>) {
    for stmt in &mut block.stmts {
        rename_stmt(stmt, mapping);
    }
}

fn rename_stmt(stmt: &mut Stmt, mapping: &HashMap<String, String>) {
    match stmt {
        Stmt::Decl(d) => rename_declaration(d, mapping),
        Stmt::Expr(e) => rename_expr(e, mapping),
        Stmt::If {
            cond,
            then_branch,
            else_branch,
        } => {
            rename_expr(cond, mapping);
            rename_block(then_branch, mapping);
            if let Some(e) = else_branch {
                rename_block(e, mapping);
            }
        }
        Stmt::For {
            init,
            cond,
            step,
            body,
        } => {
            if let Some(i) = init {
                rename_stmt(i, mapping);
            }
            if let Some(c) = cond {
                rename_expr(c, mapping);
            }
            if let Some(s) = step {
                rename_expr(s, mapping);
            }
            rename_block(body, mapping);
        }
        Stmt::ForEach {
            name,
            iterable,
            body,
            ..
        } => {
            if let Some(new) = mapping.get(name) {
                *name = new.clone();
            }
            rename_expr(iterable, mapping);
            rename_block(body, mapping);
        }
        Stmt::While { cond, body } => {
            rename_expr(cond, mapping);
            rename_block(body, mapping);
        }
        Stmt::DoWhile { body, cond } => {
            rename_block(body, mapping);
            rename_expr(cond, mapping);
        }
        Stmt::Return(Some(e)) => rename_expr(e, mapping),
        Stmt::Block(b) => rename_block(b, mapping),
        _ => {}
    }
}

fn rename_expr(expr: &mut Expr, mapping: &HashMap<String, String>) {
    match expr {
        Expr::Ident(name) => {
            if let Some(new) = mapping.get(name) {
                *name = new.clone();
            }
        }
        Expr::Unary { expr, .. } => rename_expr(expr, mapping),
        Expr::Binary { lhs, rhs, .. } | Expr::Assign { lhs, rhs, .. } => {
            rename_expr(lhs, mapping);
            rename_expr(rhs, mapping);
        }
        Expr::Ternary {
            cond,
            then_expr,
            else_expr,
        } => {
            rename_expr(cond, mapping);
            rename_expr(then_expr, mapping);
            rename_expr(else_expr, mapping);
        }
        Expr::Call { callee, args } => {
            rename_expr(callee, mapping);
            for a in args {
                rename_expr(a, mapping);
            }
        }
        Expr::Member { base, .. } => rename_expr(base, mapping),
        Expr::Index { base, index } => {
            rename_expr(base, mapping);
            rename_expr(index, mapping);
        }
        Expr::Cast { expr, .. } | Expr::StaticCast { expr, .. } | Expr::Paren(expr) => {
            rename_expr(expr, mapping)
        }
        Expr::InitList(elems) => {
            for e in elems {
                rename_expr(e, mapping);
            }
        }
        _ => {}
    }
}

/// Applies `f` to every statement block in the unit (function bodies
/// and all nested blocks), outermost first. Used by structural
/// transformations that rewrite statement lists.
pub fn for_each_block_mut(unit: &mut TranslationUnit, f: &mut impl FnMut(&mut Block)) {
    for item in &mut unit.items {
        if let Item::Function(func) = item {
            visit_block_mut(&mut func.body, f);
        }
    }
}

fn visit_block_mut(block: &mut Block, f: &mut impl FnMut(&mut Block)) {
    f(block);
    for stmt in &mut block.stmts {
        match stmt {
            Stmt::If {
                then_branch,
                else_branch,
                ..
            } => {
                visit_block_mut(then_branch, f);
                if let Some(e) = else_branch {
                    visit_block_mut(e, f);
                }
            }
            Stmt::For { body, .. }
            | Stmt::ForEach { body, .. }
            | Stmt::While { body, .. }
            | Stmt::DoWhile { body, .. } => visit_block_mut(body, f),
            Stmt::Block(b) => visit_block_mut(b, f),
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse;

    const SRC: &str = r#"
#include <iostream>
using namespace std;
int total;
int helper(int a, vector<int>& xs) {
    int acc = a;
    for (auto& x : xs) acc += x;
    return acc;
}
int main() {
    int n;
    cin >> n;
    for (int i = 0; i < n; ++i) total += i;
    cout << helper(total, *&) << endl;
    return 0;
}
"#;

    fn fixture() -> TranslationUnit {
        // The `*&` above would be invalid; use a valid call instead.
        let src = SRC.replace("*&", "xsv");
        let src = src.replace("int main() {", "vector<int> xsv;\nint main() {");
        parse(&src).unwrap()
    }

    struct Counter {
        nodes: usize,
        max_depth: usize,
    }

    impl Visitor for Counter {
        fn visit(&mut self, _kind: NodeKind, depth: usize) {
            self.nodes += 1;
            self.max_depth = self.max_depth.max(depth);
        }
    }

    #[test]
    fn walk_visits_every_node_once() {
        let unit = fixture();
        let mut c = Counter {
            nodes: 0,
            max_depth: 0,
        };
        walk_unit(&unit, &mut c);
        assert!(c.nodes > 30, "expected a real tree, got {} nodes", c.nodes);
        assert!(c.max_depth >= 5, "depth {}", c.max_depth);
    }

    #[test]
    fn declared_names_excludes_library_and_main() {
        let unit = fixture();
        let names = declared_names(&unit);
        for expected in ["helper", "a", "xs", "acc", "x", "n", "i", "total", "xsv"] {
            assert!(names.contains(&expected.to_string()), "missing {expected}");
        }
        assert!(!names.contains(&"main".to_string()));
        assert!(!names.contains(&"cin".to_string()));
        assert!(!names.contains(&"cout".to_string()));
        assert!(!names.contains(&"endl".to_string()));
        assert!(!names.contains(&"max".to_string()));
    }

    #[test]
    fn declared_names_covers_params_and_for_init() {
        // Regression guard: parameters and for-init declarations are
        // declaration sites and must be visible to fresh-name
        // generation and renaming alike.
        let unit = parse(
            "int scale(int factor) { return factor * 2; }\nint main() { for (int idx = 0; idx < 3; idx++) { } return 0; }",
        )
        .unwrap();
        let names = declared_names(&unit);
        assert!(names.contains(&"factor".to_string()), "{names:?}");
        assert!(names.contains(&"idx".to_string()), "{names:?}");
    }

    #[test]
    fn declared_names_covers_aliases_and_macros() {
        // Regression guard: typedef/using/define names are declared
        // names too — fresh identifiers must not collide with them.
        let unit = parse(
            "#define MAXN 100\ntypedef long long ll;\nusing vi = vector<int>;\nint main() { return 0; }",
        )
        .unwrap();
        let names = declared_names(&unit);
        for expected in ["MAXN", "ll", "vi"] {
            assert!(names.contains(&expected.to_string()), "{names:?}");
        }
        assert_eq!(unrenameable_names(&unit), vec!["MAXN", "ll", "vi"]);
    }

    #[test]
    fn define_name_parses_directives() {
        assert_eq!(define_name("define MAXN 100"), Some("MAXN"));
        assert_eq!(define_name("define SQ(x) ((x)*(x))"), Some("SQ"));
        assert_eq!(define_name("pragma once"), None);
    }

    #[test]
    fn rename_is_consistent_across_decl_and_use() {
        let mut unit = fixture();
        let mut mapping = HashMap::new();
        mapping.insert("total".to_string(), "grandTotal".to_string());
        mapping.insert("helper".to_string(), "accumulate".to_string());
        rename_idents(&mut unit, &mapping);
        let text = crate::render::render(&unit, &crate::render::RenderStyle::default());
        assert!(!text.contains("total +="));
        assert!(text.contains("grandTotal"));
        assert!(text.contains("accumulate(grandTotal"));
        assert!(!text.contains("helper("));
        // Re-parses cleanly.
        assert!(parse(&text).is_ok(), "{text}");
    }

    #[test]
    fn rename_does_not_touch_members_or_strings() {
        let mut unit = parse(
            "int main() { vector<int> size; size.push_back(1); cout << \"size\"; return (int)size.size(); }",
        )
        .unwrap();
        let mut mapping = HashMap::new();
        mapping.insert("size".to_string(), "values".to_string());
        rename_idents(&mut unit, &mapping);
        let text = crate::render::render(&unit, &crate::render::RenderStyle::default());
        assert!(text.contains("values.push_back"));
        assert!(text.contains("values.size()"), "{text}");
        assert!(
            text.contains("\"size\""),
            "string literal must survive: {text}"
        );
    }

    #[test]
    fn for_each_block_mut_reaches_nested_blocks() {
        let mut unit =
            parse("int main() { if (1) { while (0) { int x = 1; } } for (;;) { } return 0; }")
                .unwrap();
        let mut blocks = 0;
        for_each_block_mut(&mut unit, &mut |_b| blocks += 1);
        // main body, if-then, while body, for body.
        assert_eq!(blocks, 4);
    }
}
