//! Syntactic measurements over the AST.
//!
//! These are the "syntactic features" of the Caliskan-Islam feature
//! set: tree depth statistics, node-kind term frequencies, and
//! parent–child node-kind bigram frequencies.

use crate::ast::{NodeKind, TranslationUnit};
use crate::visit::{walk_unit, Visitor};
use std::collections::HashMap;

/// Aggregated syntactic metrics of one translation unit.
#[derive(Debug, Clone, PartialEq)]
pub struct AstMetrics {
    /// Total AST nodes.
    pub node_count: usize,
    /// Maximum node depth (unit = 0).
    pub max_depth: usize,
    /// Mean node depth.
    pub avg_depth: f64,
    /// Occurrences of each [`NodeKind`], indexed by [`NodeKind::index`].
    pub kind_counts: [usize; NodeKind::COUNT],
    /// Parent–child kind bigram occurrences.
    pub bigram_counts: HashMap<(NodeKind, NodeKind), usize>,
    /// Mean number of children over internal (non-leaf) nodes.
    pub avg_branching: f64,
}

impl AstMetrics {
    /// Computes metrics for `unit`.
    ///
    /// # Example
    ///
    /// ```
    /// use synthattr_lang::{parse, metrics::AstMetrics};
    /// let unit = parse("int main() { return 1 + 2; }")?;
    /// let m = AstMetrics::measure(&unit);
    /// assert!(m.node_count > 5);
    /// assert!(m.max_depth >= 3);
    /// # Ok::<(), synthattr_lang::ParseError>(())
    /// ```
    pub fn measure(unit: &TranslationUnit) -> Self {
        let mut collector = Collector::default();
        walk_unit(unit, &mut collector);
        collector.finish()
    }

    /// Count for one node kind.
    pub fn kind_count(&self, kind: NodeKind) -> usize {
        self.kind_counts[kind.index()]
    }
}

struct Collector {
    node_count: usize,
    depth_sum: usize,
    max_depth: usize,
    kind_counts: [usize; NodeKind::COUNT],
    bigram_counts: HashMap<(NodeKind, NodeKind), usize>,
    /// Stack of ancestors: `stack[d]` is the most recent node at depth d.
    stack: Vec<NodeKind>,
    /// Total parent→child edges seen.
    children_total: usize,
    /// Number of nodes that received at least one child.
    internal_nodes: usize,
    /// Stack of "has this ancestor been counted as internal yet".
    counted: Vec<bool>,
}

impl Default for Collector {
    fn default() -> Self {
        Collector {
            node_count: 0,
            depth_sum: 0,
            max_depth: 0,
            kind_counts: [0; NodeKind::COUNT],
            bigram_counts: HashMap::new(),
            stack: Vec::new(),
            children_total: 0,
            internal_nodes: 0,
            counted: Vec::new(),
        }
    }
}

impl Visitor for Collector {
    fn visit(&mut self, kind: NodeKind, depth: usize) {
        self.node_count += 1;
        self.depth_sum += depth;
        self.max_depth = self.max_depth.max(depth);
        self.kind_counts[kind.index()] += 1;

        self.stack.truncate(depth);
        self.counted.truncate(depth);
        if depth > 0 {
            if let Some(&parent) = self.stack.last() {
                *self.bigram_counts.entry((parent, kind)).or_insert(0) += 1;
                self.children_total += 1;
                if let Some(flag) = self.counted.last_mut() {
                    if !*flag {
                        *flag = true;
                        self.internal_nodes += 1;
                    }
                }
            }
        }
        self.stack.push(kind);
        self.counted.push(false);
    }
}

impl Collector {
    fn finish(self) -> AstMetrics {
        let avg_depth = if self.node_count == 0 {
            0.0
        } else {
            self.depth_sum as f64 / self.node_count as f64
        };
        let avg_branching = if self.internal_nodes == 0 {
            0.0
        } else {
            self.children_total as f64 / self.internal_nodes as f64
        };
        AstMetrics {
            node_count: self.node_count,
            max_depth: self.max_depth,
            avg_depth,
            kind_counts: self.kind_counts,
            bigram_counts: self.bigram_counts,
            avg_branching,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse;

    #[test]
    fn counts_basic_kinds() {
        let unit = parse(
            "int main() { int x = 1; if (x > 0) { x++; } for (int i = 0; i < 3; ++i) { } return x; }",
        )
        .unwrap();
        let m = AstMetrics::measure(&unit);
        assert_eq!(m.kind_count(NodeKind::Function), 1);
        assert_eq!(m.kind_count(NodeKind::IfStmt), 1);
        assert_eq!(m.kind_count(NodeKind::ForStmt), 1);
        assert_eq!(m.kind_count(NodeKind::ReturnStmt), 1);
        assert!(m.kind_count(NodeKind::Ident) >= 4);
    }

    #[test]
    fn deeper_nesting_increases_depth() {
        let flat = parse("int main() { int a = 1; int b = 2; int c = 3; return a; }").unwrap();
        let deep =
            parse("int main() { if (1) { if (1) { if (1) { return 1; } } } return 0; }").unwrap();
        let mf = AstMetrics::measure(&flat);
        let md = AstMetrics::measure(&deep);
        assert!(md.max_depth > mf.max_depth);
    }

    #[test]
    fn bigrams_capture_parent_child_pairs() {
        let unit = parse("int main() { return 1 + 2; }").unwrap();
        let m = AstMetrics::measure(&unit);
        assert!(m
            .bigram_counts
            .contains_key(&(NodeKind::ReturnStmt, NodeKind::Binary)));
        assert_eq!(
            m.bigram_counts
                .get(&(NodeKind::Binary, NodeKind::IntLit))
                .copied(),
            Some(2)
        );
    }

    #[test]
    fn branching_factor_positive_and_consistent() {
        let unit = parse("int main() { int a = 1, b = 2; return a + b; }").unwrap();
        let m = AstMetrics::measure(&unit);
        assert!(m.avg_branching >= 1.0);
        // Total children == node_count - 1 (every node except the root
        // is someone's child).
        let children: usize = m.bigram_counts.values().sum();
        assert_eq!(children, m.node_count - 1);
    }

    #[test]
    fn empty_unit_is_all_zeroes() {
        let unit = parse("").unwrap();
        let m = AstMetrics::measure(&unit);
        assert_eq!(m.node_count, 1); // the unit node itself
        assert_eq!(m.max_depth, 0);
        assert_eq!(m.avg_branching, 0.0);
    }

    #[test]
    fn metrics_are_layout_invariant() {
        use crate::render::{render, BraceStyle, Indent, RenderStyle};
        let unit = parse("int main() { if (1) { return 1; } return 0; }").unwrap();
        let restyled = render(
            &unit,
            &RenderStyle {
                indent: Indent::Tab,
                brace: BraceStyle::NextLine,
                space_around_binary: false,
                ..RenderStyle::default()
            },
        );
        let unit2 = parse(&restyled).unwrap();
        let m1 = AstMetrics::measure(&unit);
        let m2 = AstMetrics::measure(&unit2);
        assert_eq!(m1, m2);
    }
}
