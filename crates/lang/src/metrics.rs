//! Syntactic measurements over the AST.
//!
//! These are the "syntactic features" of the Caliskan-Islam feature
//! set: tree depth statistics, node-kind term frequencies, and
//! parent–child node-kind bigram frequencies.

use crate::ast::{NodeKind, TranslationUnit};
use crate::visit::{walk_unit, Visitor};
use std::collections::HashMap;

/// Aggregated syntactic metrics of one translation unit.
#[derive(Debug, Clone, PartialEq)]
pub struct AstMetrics {
    /// Total AST nodes.
    pub node_count: usize,
    /// Maximum node depth (unit = 0).
    pub max_depth: usize,
    /// Mean node depth.
    pub avg_depth: f64,
    /// Occurrences of each [`NodeKind`], indexed by [`NodeKind::index`].
    pub kind_counts: [usize; NodeKind::COUNT],
    /// Parent–child kind bigram occurrences.
    pub bigram_counts: HashMap<(NodeKind, NodeKind), usize>,
    /// Mean number of children over internal (non-leaf) nodes.
    pub avg_branching: f64,
}

impl AstMetrics {
    /// Computes metrics for `unit`.
    ///
    /// # Example
    ///
    /// ```
    /// use synthattr_lang::{parse, metrics::AstMetrics};
    /// let unit = parse("int main() { return 1 + 2; }")?;
    /// let m = AstMetrics::measure(&unit);
    /// assert!(m.node_count > 5);
    /// assert!(m.max_depth >= 3);
    /// # Ok::<(), synthattr_lang::ParseError>(())
    /// ```
    pub fn measure(unit: &TranslationUnit) -> Self {
        let mut builder = MetricsBuilder::for_unit();
        walk_unit(unit, &mut builder);
        builder.into_metrics()
    }

    /// Count for one node kind.
    pub fn kind_count(&self, kind: NodeKind) -> usize {
        self.kind_counts[kind.index()]
    }
}

/// Raw (pre-`finish`) syntactic measurements of one top-level item,
/// exactly as a whole-unit walk would have contributed them.
///
/// [`MetricsPartial::of_item`] replays the item's node stream with the
/// unit root pre-seeded on the ancestor stack, so the `(Unit, item)`
/// bigram and the root→item edge land in the partial; the unit node
/// itself (one node at depth 0, one `Unit` kind count, one internal
/// root when any item exists) is added once at merge time. That makes
/// [`MetricsPartial::merge`] bit-identical to [`AstMetrics::measure`]
/// on the whole unit: every accumulator is an integer, and the only
/// floating-point math happens in the shared `finish` divisions over
/// identical operands.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricsPartial {
    node_count: usize,
    depth_sum: usize,
    max_depth: usize,
    kind_counts: [usize; NodeKind::COUNT],
    bigram_counts: HashMap<(NodeKind, NodeKind), usize>,
    children_total: usize,
    internal_nodes: usize,
}

impl MetricsPartial {
    /// Measures one item as a mergeable partial.
    pub fn of_item(item: &crate::ast::Item) -> Self {
        let mut builder = MetricsBuilder::for_item();
        crate::visit::walk_item(item, &mut builder, 1);
        builder.into_partial()
    }

    /// Merges per-item partials into the whole-unit [`AstMetrics`],
    /// adding the unit root's own contributions.
    pub fn merge<'a>(parts: impl IntoIterator<Item = &'a Self>) -> AstMetrics {
        let mut c = Collector::default();
        let mut any = false;
        for p in parts {
            any = true;
            c.node_count += p.node_count;
            c.depth_sum += p.depth_sum;
            c.max_depth = c.max_depth.max(p.max_depth);
            for (k, n) in p.kind_counts.iter().enumerate() {
                c.kind_counts[k] += n;
            }
            for (&bigram, &n) in &p.bigram_counts {
                *c.bigram_counts.entry(bigram).or_insert(0) += n;
            }
            c.children_total += p.children_total;
            c.internal_nodes += p.internal_nodes;
        }
        // The unit root: one node at depth 0, internal iff it has items.
        c.node_count += 1;
        c.kind_counts[NodeKind::Unit.index()] += 1;
        if any {
            c.internal_nodes += 1;
        }
        c.finish()
    }
}

/// An in-progress syntactic measurement that can ride a shared AST
/// walk: construct, feed it a walk (alone or fused with another
/// visitor via [`crate::visit::Pair`]), then finish. The node stream a
/// builder observes is exactly what [`AstMetrics::measure`] /
/// [`MetricsPartial::of_item`] would produce, so fused use is
/// bit-identical to the stand-alone constructors.
pub struct MetricsBuilder(Collector);

impl MetricsBuilder {
    /// Ready to observe a whole-unit walk ([`walk_unit`]).
    pub fn for_unit() -> Self {
        MetricsBuilder(Collector::default())
    }

    /// Ready to observe one item's walk at depth 1, pre-seeded with
    /// the unit root: the item's root node then records the
    /// `(Unit, item)` bigram and the root-to-item edge exactly like
    /// the whole-unit walk, and `counted = true` stops the partial
    /// from re-counting the root as internal (merge adds it once).
    pub fn for_item() -> Self {
        let mut c = Collector::default();
        c.stack.push(NodeKind::Unit);
        c.counted.push(true);
        MetricsBuilder(c)
    }

    /// Finishes a whole-unit observation.
    pub fn into_metrics(self) -> AstMetrics {
        self.0.finish()
    }

    /// Finishes a per-item observation.
    pub fn into_partial(self) -> MetricsPartial {
        let c = self.0;
        MetricsPartial {
            node_count: c.node_count,
            depth_sum: c.depth_sum,
            max_depth: c.max_depth,
            kind_counts: c.kind_counts,
            bigram_counts: c.bigram_counts,
            children_total: c.children_total,
            internal_nodes: c.internal_nodes,
        }
    }
}

impl Visitor for MetricsBuilder {
    fn visit(&mut self, kind: NodeKind, depth: usize) {
        self.0.visit(kind, depth);
    }
}

struct Collector {
    node_count: usize,
    depth_sum: usize,
    max_depth: usize,
    kind_counts: [usize; NodeKind::COUNT],
    bigram_counts: HashMap<(NodeKind, NodeKind), usize>,
    /// Stack of ancestors: `stack[d]` is the most recent node at depth d.
    stack: Vec<NodeKind>,
    /// Total parent→child edges seen.
    children_total: usize,
    /// Number of nodes that received at least one child.
    internal_nodes: usize,
    /// Stack of "has this ancestor been counted as internal yet".
    counted: Vec<bool>,
}

impl Default for Collector {
    fn default() -> Self {
        Collector {
            node_count: 0,
            depth_sum: 0,
            max_depth: 0,
            kind_counts: [0; NodeKind::COUNT],
            bigram_counts: HashMap::new(),
            stack: Vec::new(),
            children_total: 0,
            internal_nodes: 0,
            counted: Vec::new(),
        }
    }
}

impl Visitor for Collector {
    fn visit(&mut self, kind: NodeKind, depth: usize) {
        self.node_count += 1;
        self.depth_sum += depth;
        self.max_depth = self.max_depth.max(depth);
        self.kind_counts[kind.index()] += 1;

        self.stack.truncate(depth);
        self.counted.truncate(depth);
        if depth > 0 {
            if let Some(&parent) = self.stack.last() {
                *self.bigram_counts.entry((parent, kind)).or_insert(0) += 1;
                self.children_total += 1;
                if let Some(flag) = self.counted.last_mut() {
                    if !*flag {
                        *flag = true;
                        self.internal_nodes += 1;
                    }
                }
            }
        }
        self.stack.push(kind);
        self.counted.push(false);
    }
}

impl Collector {
    fn finish(self) -> AstMetrics {
        let avg_depth = if self.node_count == 0 {
            0.0
        } else {
            self.depth_sum as f64 / self.node_count as f64
        };
        let avg_branching = if self.internal_nodes == 0 {
            0.0
        } else {
            self.children_total as f64 / self.internal_nodes as f64
        };
        AstMetrics {
            node_count: self.node_count,
            max_depth: self.max_depth,
            avg_depth,
            kind_counts: self.kind_counts,
            bigram_counts: self.bigram_counts,
            avg_branching,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse;

    #[test]
    fn counts_basic_kinds() {
        let unit = parse(
            "int main() { int x = 1; if (x > 0) { x++; } for (int i = 0; i < 3; ++i) { } return x; }",
        )
        .unwrap();
        let m = AstMetrics::measure(&unit);
        assert_eq!(m.kind_count(NodeKind::Function), 1);
        assert_eq!(m.kind_count(NodeKind::IfStmt), 1);
        assert_eq!(m.kind_count(NodeKind::ForStmt), 1);
        assert_eq!(m.kind_count(NodeKind::ReturnStmt), 1);
        assert!(m.kind_count(NodeKind::Ident) >= 4);
    }

    #[test]
    fn deeper_nesting_increases_depth() {
        let flat = parse("int main() { int a = 1; int b = 2; int c = 3; return a; }").unwrap();
        let deep =
            parse("int main() { if (1) { if (1) { if (1) { return 1; } } } return 0; }").unwrap();
        let mf = AstMetrics::measure(&flat);
        let md = AstMetrics::measure(&deep);
        assert!(md.max_depth > mf.max_depth);
    }

    #[test]
    fn bigrams_capture_parent_child_pairs() {
        let unit = parse("int main() { return 1 + 2; }").unwrap();
        let m = AstMetrics::measure(&unit);
        assert!(m
            .bigram_counts
            .contains_key(&(NodeKind::ReturnStmt, NodeKind::Binary)));
        assert_eq!(
            m.bigram_counts
                .get(&(NodeKind::Binary, NodeKind::IntLit))
                .copied(),
            Some(2)
        );
    }

    #[test]
    fn branching_factor_positive_and_consistent() {
        let unit = parse("int main() { int a = 1, b = 2; return a + b; }").unwrap();
        let m = AstMetrics::measure(&unit);
        assert!(m.avg_branching >= 1.0);
        // Total children == node_count - 1 (every node except the root
        // is someone's child).
        let children: usize = m.bigram_counts.values().sum();
        assert_eq!(children, m.node_count - 1);
    }

    #[test]
    fn empty_unit_is_all_zeroes() {
        let unit = parse("").unwrap();
        let m = AstMetrics::measure(&unit);
        assert_eq!(m.node_count, 1); // the unit node itself
        assert_eq!(m.max_depth, 0);
        assert_eq!(m.avg_branching, 0.0);
    }

    #[test]
    fn merged_partials_equal_whole_unit_measure() {
        for src in [
            "",
            "int main() { return 0; }",
            "#include <iostream>\nusing namespace std;\nint helper(int a) { return a * 2; }\nint main() { int x = 0; cin >> x; if (x > 1) { x = helper(x); } cout << x; return 0; }",
            "// note\ntypedef long long ll;\nll v = 4;\nint main() { for (int i = 0; i < 3; ++i) { v += i; } return 0; }",
        ] {
            let unit = parse(src).unwrap();
            let parts: Vec<MetricsPartial> =
                unit.items.iter().map(MetricsPartial::of_item).collect();
            let merged = MetricsPartial::merge(&parts);
            assert_eq!(merged, AstMetrics::measure(&unit), "mismatch for {src:?}");
        }
    }

    #[test]
    fn metrics_are_layout_invariant() {
        use crate::render::{render, BraceStyle, Indent, RenderStyle};
        let unit = parse("int main() { if (1) { return 1; } return 0; }").unwrap();
        let restyled = render(
            &unit,
            &RenderStyle {
                indent: Indent::Tab,
                brace: BraceStyle::NextLine,
                space_around_binary: false,
                ..RenderStyle::default()
            },
        );
        let unit2 = parse(&restyled).unwrap();
        let m1 = AstMetrics::measure(&unit);
        let m2 = AstMetrics::measure(&unit2);
        assert_eq!(m1, m2);
    }
}
