//! Stable structural hashing of AST nodes.
//!
//! The incremental frontend keys caches on *structure*: two items with
//! the same AST share one hash regardless of how they were rendered.
//! Hashing goes through [`std::hash::Hash`] (every AST node derives
//! it) driven by an FNV-1a hasher — the same function the artifact
//! cache uses for text — so the stream of hashed bytes is fixed by the
//! derive and the result is deterministic within a process and across
//! runs on the same target.
//!
//! A 64-bit structural hash is trusted without a full `Eq` check on
//! hot paths (verifying would re-walk the tree and erase the win); the
//! A/B suites in `synthattr-core` prove bit-identical outputs over the
//! full seed × setting × fault-rate grid, and debug builds re-verify
//! the products themselves via the transformer's semantic gate.

use crate::ast::{Item, TranslationUnit};
use std::hash::{Hash, Hasher};

/// FNV-1a offset basis (matches the artifact cache's text hash).
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a prime.
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// A [`Hasher`] implementing 64-bit FNV-1a.
#[derive(Debug, Clone)]
pub struct Fnv64(u64);

impl Default for Fnv64 {
    fn default() -> Self {
        Fnv64(FNV_OFFSET)
    }
}

impl Hasher for Fnv64 {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        let mut h = self.0;
        for &b in bytes {
            h ^= u64::from(b);
            h = h.wrapping_mul(FNV_PRIME);
        }
        self.0 = h;
    }
}

/// FNV-1a over a byte slice (the artifact cache's text hash, exported
/// for region-text keys).
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = Fnv64::default();
    h.write(bytes);
    h.finish()
}

/// Structural hash of any `Hash` value through [`Fnv64`].
pub fn structural_hash<T: Hash + ?Sized>(value: &T) -> u64 {
    let mut h = Fnv64::default();
    value.hash(&mut h);
    h.finish()
}

/// Structural hash of one top-level item.
pub fn item_hash(item: &Item) -> u64 {
    structural_hash(item)
}

/// Combines per-item hashes into a whole-unit hash. Equal units (same
/// items, same order) combine to the same value; the length is mixed
/// in so a prefix never aliases the full sequence.
pub fn unit_hash_of(item_hashes: &[u64]) -> u64 {
    let mut h = Fnv64::default();
    h.write_usize(item_hashes.len());
    for &ih in item_hashes {
        h.write_u64(ih);
    }
    h.finish()
}

/// Structural hash of a whole unit (equals [`unit_hash_of`] over its
/// per-item hashes).
pub fn unit_hash(unit: &TranslationUnit) -> u64 {
    let hashes: Vec<u64> = unit.items.iter().map(item_hash).collect();
    unit_hash_of(&hashes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse;

    #[test]
    fn equal_items_hash_equal() {
        let a = parse("int main() { return 1 + 2; }").unwrap();
        let b = parse("int  main( )\n{\n  return 1+2;\n}").unwrap();
        assert_eq!(a, b);
        assert_eq!(item_hash(&a.items[0]), item_hash(&b.items[0]));
        assert_eq!(unit_hash(&a), unit_hash(&b));
    }

    #[test]
    fn different_items_hash_differently() {
        let a = parse("int main() { return 1; }").unwrap();
        let b = parse("int main() { return 2; }").unwrap();
        assert_ne!(item_hash(&a.items[0]), item_hash(&b.items[0]));
    }

    #[test]
    fn unit_hash_depends_on_item_order() {
        let a = parse("int f() { return 0; }\nint g() { return 1; }").unwrap();
        let b = parse("int g() { return 1; }\nint f() { return 0; }").unwrap();
        assert_ne!(unit_hash(&a), unit_hash(&b));
    }

    #[test]
    fn unit_hash_matches_combined_item_hashes() {
        let u = parse("#include <iostream>\nint main() { return 0; }").unwrap();
        let hashes: Vec<u64> = u.items.iter().map(item_hash).collect();
        assert_eq!(unit_hash(&u), unit_hash_of(&hashes));
    }

    #[test]
    fn fnv1a_matches_known_vector() {
        // FNV-1a("a") from the reference implementation.
        assert_eq!(fnv1a(b"a"), 0xaf63dc4c8601ec8c);
    }

    #[test]
    fn empty_prefix_does_not_alias() {
        assert_ne!(unit_hash_of(&[]), unit_hash_of(&[unit_hash_of(&[])]));
    }
}
