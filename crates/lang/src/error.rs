//! Error type shared by the lexer and parser.

use std::error::Error;
use std::fmt;

/// An error produced while lexing or parsing C++ source.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    message: String,
    line: u32,
}

impl ParseError {
    /// Creates an error at 1-based source `line`.
    pub fn new(message: impl Into<String>, line: u32) -> Self {
        ParseError {
            message: message.into(),
            line,
        }
    }

    /// The 1-based source line the error was detected on.
    pub fn line(&self) -> u32 {
        self.line
    }

    /// The human-readable description (without position).
    pub fn message(&self) -> &str {
        &self.message
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at line {}: {}", self.line, self.message)
    }
}

impl Error for ParseError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_line_and_message() {
        let e = ParseError::new("expected ';'", 12);
        assert_eq!(e.to_string(), "parse error at line 12: expected ';'");
        assert_eq!(e.line(), 12);
        assert_eq!(e.message(), "expected ';'");
    }

    #[test]
    fn is_std_error() {
        fn takes_err<E: std::error::Error>(_: E) {}
        takes_err(ParseError::new("x", 1));
    }
}
