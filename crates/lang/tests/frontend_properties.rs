//! Property tests for the C++ frontend: total functions never panic,
//! and structured inputs round-trip.

use proptest::prelude::*;
use synthattr_lang::lexer::lex;
use synthattr_lang::parse;
use synthattr_lang::render::{render, BraceStyle, Indent, RenderStyle};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The lexer is total: any byte soup either lexes or returns an
    /// error — it never panics.
    #[test]
    fn lexer_never_panics(input in ".{0,200}") {
        let _ = lex(&input);
    }

    /// The parser is total over arbitrary input too.
    #[test]
    fn parser_never_panics(input in ".{0,200}") {
        let _ = parse(&input);
    }

    /// Arbitrary C-ish token soup (identifiers, numbers, punctuation)
    /// never panics the parser either.
    #[test]
    fn parser_never_panics_on_token_soup(
        tokens in prop::collection::vec(
            prop::sample::select(vec![
                "int", "x", "1", ";", "{", "}", "(", ")", "if", "else", "for",
                "while", "return", "+", "-", "*", "/", "=", "==", "<", ">",
                "<<", ">>", ",", "\"s\"", "'c'", "vector", "&", "++", "[", "]",
            ]),
            0..60,
        )
    ) {
        let input = tokens.join(" ");
        let _ = parse(&input);
    }

    /// Lexing preserves enough information that token display text
    /// re-lexes to the same token stream (for non-trivia tokens —
    /// comments and directives display as placeholders, so they are
    /// excluded).
    #[test]
    fn token_display_relexes(input in "[a-z0-9 +\\-*/<>=;(){},]{0,80}") {
        use synthattr_lang::token::TokenKind;
        let is_trivia = |k: &TokenKind| {
            matches!(k, TokenKind::Eof | TokenKind::Comment(_, _) | TokenKind::Directive(_))
        };
        if let Ok(tokens) = lex(&input) {
            let text: String = tokens
                .iter()
                .filter(|t| !is_trivia(&t.kind))
                .map(|t| format!("{} ", t.kind))
                .collect();
            if let Ok(again) = lex(&text) {
                let a: Vec<String> = tokens
                    .iter()
                    .filter(|t| !is_trivia(&t.kind))
                    .map(|t| format!("{}", t.kind))
                    .collect();
                let b: Vec<String> = again
                    .iter()
                    .filter(|t| !is_trivia(&t.kind))
                    .map(|t| format!("{}", t.kind))
                    .collect();
                prop_assert_eq!(a, b);
            }
        }
    }

    /// For any valid program accepted by the parser, every render
    /// style yields text that reparses to the same shape hash.
    #[test]
    fn render_roundtrips_under_arbitrary_styles(
        indent_pick in 0usize..3,
        next_line in any::<bool>(),
        braceless in any::<bool>(),
        spaced in any::<bool>(),
        template_space in any::<bool>(),
    ) {
        let src = r#"
#include <iostream>
using namespace std;
int helper(int a, vector<int>& xs) {
    int acc = a;
    for (auto& x : xs) acc += x;
    if (acc > 3) return acc; else if (acc > 1) { return 1; } else return 0;
}
int main() {
    vector<vector<int>> g;
    int n;
    cin >> n;
    do { n--; } while (n > 0 && n < 100);
    double d = (double)n / 2.0;
    cout << "Case #" << 1 << ": " << d << endl;
    return 0;
}
"#;
        let unit = parse(src).unwrap();
        let style = RenderStyle {
            indent: [Indent::Spaces(2), Indent::Spaces(4), Indent::Tab][indent_pick],
            brace: if next_line { BraceStyle::NextLine } else { BraceStyle::SameLine },
            braceless_single_stmt: braceless,
            space_around_binary: spaced,
            space_after_comma: spaced,
            space_after_keyword: spaced,
            space_in_template_close: template_space,
            ..RenderStyle::default()
        };
        let text = render(&unit, &style);
        let again = parse(&text).expect("rendered text parses");
        prop_assert_eq!(unit.shape_hash(), again.shape_hash());
    }
}
