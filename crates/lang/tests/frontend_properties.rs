//! Property tests for the C++ frontend: total functions never panic,
//! and structured inputs round-trip.
//!
//! Driven by the in-repo harness (`synthattr_util::prop`) — see
//! DESIGN.md's hermetic zero-dependency policy.

use synthattr_lang::lexer::lex;
use synthattr_lang::parse;
use synthattr_lang::render::{render, BraceStyle, Indent, RenderStyle};
use synthattr_util::prop::{gen, Runner};
use synthattr_util::{prop_assert, prop_assert_eq};

/// The lexer is total: any byte soup either lexes or returns an
/// error — it never panics.
#[test]
fn lexer_never_panics() {
    Runner::new("lexer_never_panics").cases(256).run(
        |rng| gen::any_string(rng, 200),
        |input| {
            let _ = lex(input);
            Ok(())
        },
    );
}

/// The parser is total over arbitrary input too.
#[test]
fn parser_never_panics() {
    Runner::new("parser_never_panics").cases(256).run(
        |rng| gen::any_string(rng, 200),
        |input| {
            let _ = parse(input);
            Ok(())
        },
    );
}

/// Arbitrary C-ish token soup (identifiers, numbers, punctuation)
/// never panics the parser either.
#[test]
fn parser_never_panics_on_token_soup() {
    const VOCAB: [&str; 33] = [
        "int", "x", "1", ";", "{", "}", "(", ")", "if", "else", "for", "while", "return", "+", "-",
        "*", "/", "=", "==", "<", ">", "<<", ">>", ",", "\"s\"", "'c'", "vector", "&", "++", "[",
        "]", "auto", "do",
    ];
    Runner::new("parser_never_panics_on_token_soup")
        .cases(256)
        .run(
            |rng| gen::vec_of(rng, 60, |r| gen::select(r, &VOCAB)),
            |tokens| {
                let input = tokens.join(" ");
                let _ = parse(&input);
                Ok(())
            },
        );
}

/// Lexing preserves enough information that token display text
/// re-lexes to the same token stream (for non-trivia tokens —
/// comments and directives display as placeholders, so they are
/// excluded).
#[test]
fn token_display_relexes() {
    use synthattr_lang::token::TokenKind;
    let charset: Vec<char> = "abcdefghijklmnopqrstuvwxyz0123456789 +-*/<>=;(){},"
        .chars()
        .collect();
    let is_trivia = |k: &TokenKind| {
        matches!(
            k,
            TokenKind::Eof | TokenKind::Comment(_, _) | TokenKind::Directive(_)
        )
    };
    Runner::new("token_display_relexes").cases(256).run(
        |rng| gen::string_from(rng, &charset, 80),
        |input| {
            if let Ok(tokens) = lex(input) {
                let text: String = tokens
                    .iter()
                    .filter(|t| !is_trivia(&t.kind))
                    .map(|t| format!("{} ", t.kind))
                    .collect();
                if let Ok(again) = lex(&text) {
                    let a: Vec<String> = tokens
                        .iter()
                        .filter(|t| !is_trivia(&t.kind))
                        .map(|t| format!("{}", t.kind))
                        .collect();
                    let b: Vec<String> = again
                        .iter()
                        .filter(|t| !is_trivia(&t.kind))
                        .map(|t| format!("{}", t.kind))
                        .collect();
                    prop_assert_eq!(a, b);
                }
            }
            Ok(())
        },
    );
}

/// For any valid program accepted by the parser, every render
/// style yields text that reparses to the same shape hash.
#[test]
fn render_roundtrips_under_arbitrary_styles() {
    let src = r#"
#include <iostream>
using namespace std;
int helper(int a, vector<int>& xs) {
    int acc = a;
    for (auto& x : xs) acc += x;
    if (acc > 3) return acc; else if (acc > 1) { return 1; } else return 0;
}
int main() {
    vector<vector<int>> g;
    int n;
    cin >> n;
    do { n--; } while (n > 0 && n < 100);
    double d = (double)n / 2.0;
    cout << "Case #" << 1 << ": " << d << endl;
    return 0;
}
"#;
    let unit = parse(src).unwrap();
    Runner::new("render_roundtrips_under_arbitrary_styles")
        .cases(256)
        .run(
            |rng| {
                (
                    rng.next_below(3),
                    rng.next_bool(0.5),
                    rng.next_bool(0.5),
                    rng.next_bool(0.5),
                    rng.next_bool(0.5),
                )
            },
            |&(indent_pick, next_line, braceless, spaced, template_space)| {
                let style = RenderStyle {
                    indent: [Indent::Spaces(2), Indent::Spaces(4), Indent::Tab][indent_pick],
                    brace: if next_line {
                        BraceStyle::NextLine
                    } else {
                        BraceStyle::SameLine
                    },
                    braceless_single_stmt: braceless,
                    space_around_binary: spaced,
                    space_after_comma: spaced,
                    space_after_keyword: spaced,
                    space_in_template_close: template_space,
                    ..RenderStyle::default()
                };
                let text = render(&unit, &style);
                let again = parse(&text).expect("rendered text parses");
                prop_assert!(
                    unit.shape_hash() == again.shape_hash(),
                    "shape hash changed under style {style:?}"
                );
                Ok(())
            },
        );
}
