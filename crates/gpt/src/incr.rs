//! Node-level incremental frontend for transformation chains.
//!
//! A CT chain step rewrites only a few top-level items of its
//! predecessor — measured over the calibrated pools, ~91% of item ASTs
//! and ~81% of rendered region bytes recur across a 64-step chain. The
//! whole-file frontend still re-renders, re-detects, re-parses and
//! re-featurizes every byte of every step. This module keys each of
//! those products at the *node* (top-level item / rendered region)
//! level so unchanged sub-trees are shared across steps:
//!
//! * [`StyleScan`] — a mergeable per-region partial of
//!   [`detect_render_style`], cached by region text;
//! * [`FrontendCache`] — the per-dispatch-unit node cache: rendered
//!   item text by `(item structural hash, style)`, per-item feature
//!   partials and per-region layout scans, and whole-unit
//!   diagnostics/fingerprints by unit structural hash;
//! * [`transform_step_cached`] — one chain step through the caches,
//!   consuming the exact RNG stream of
//!   [`Transformer::transform_parsed`] and producing byte-identical
//!   text plus a parsed unit equal to `parse(text)` (handed through
//!   from the rewrite — the renderer is the parser's inverse on the
//!   rewriter's AST subset, so the step never re-parses its own
//!   render);
//! * [`try_run_nct_steps_cached`] / [`try_run_ct_steps_cached`] —
//!   drop-in chain drivers returning each step's [`RegionInfo`] so
//!   downstream stages can featurize incrementally.
//!
//! Collision policy (DESIGN.md §12): text-keyed caches are exact by
//! construction; 64-bit structural-hash caches are trusted in release
//! and re-verified by `debug_assert`s plus the `reference-increment`
//! A/B grid in the core crate.

use crate::error::GptError;
use crate::transform::{detect_render_style, Transformer};
use std::collections::HashMap;
use std::sync::Arc;
use synthattr_analysis::{fingerprint, Analyzer, Diagnostic};
use synthattr_features::incr::ItemFeatures;
use synthattr_features::layout::RegionLayout;
use synthattr_lang::ast::Item;
use synthattr_lang::hash::{item_hash, unit_hash_of};
use synthattr_lang::render::{
    render_item_text, separator_plan, BraceStyle, Indent, RegionSpan, RenderStyle,
};
use synthattr_lang::{parse, TranslationUnit};
use synthattr_util::Pcg64;

// ---------------------------------------------------------------------------
// Per-region layout-detection partials
// ---------------------------------------------------------------------------

/// The per-region partial of [`detect_render_style`]: every counter,
/// minimum and containment flag the detector reads, measured over one
/// rendered region, plus the region-edge flags needed to reconstruct
/// the patterns that span a region/separator boundary (`"}\n\n"`,
/// `";\n\n"`, `">\n\n"`).
///
/// Regions are `'\n'`-terminated and never start with `'\n'`, and
/// separators are pure newline runs, so no other detector pattern can
/// cross a boundary; [`detect_from_scans`] proves the reconstruction
/// exact against the whole-text detector.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StyleScan {
    tab_lines: usize,
    indent_lines: usize,
    min_indent: Option<usize>,
    own_line: usize,
    tail_brace: usize,
    commas: usize,
    spaced_commas: usize,
    kw_spaced: usize,
    kw_tight: usize,
    braceless: bool,
    binary_spaced: bool,
    assign_spaced: bool,
    template_spaced: bool,
    blank_after_brace: bool,
    blank_after_semi: bool,
    blank_after_angle: bool,
    ends_brace_nl: bool,
    ends_semi_nl: bool,
    ends_angle_nl: bool,
}

impl StyleScan {
    /// Measures one rendered region.
    pub fn scan(region: &str) -> Self {
        let mut tab_lines = 0usize;
        let mut indent_lines = 0usize;
        let mut min_indent: Option<usize> = None;
        let mut own_line = 0usize;
        let mut tail_brace = 0usize;
        let mut braceless = false;
        for l in region.lines() {
            let t = l.trim();
            if !t.is_empty() {
                let lead: String = l.chars().take_while(|c| *c == ' ' || *c == '\t').collect();
                if lead.contains('\t') {
                    tab_lines += 1;
                } else if !lead.is_empty() {
                    indent_lines += 1;
                    min_indent = Some(min_indent.map_or(lead.len(), |m| m.min(lead.len())));
                }
            }
            if t == "{" {
                own_line += 1;
            }
            if t.len() > 1 && t.ends_with('{') {
                tail_brace += 1;
            }
            braceless |= (t.starts_with("if ")
                || t.starts_with("if(")
                || t.starts_with("for ")
                || t.starts_with("for(")
                || t.starts_with("while ")
                || t.starts_with("while("))
                && t.ends_with(')');
        }
        StyleScan {
            tab_lines,
            indent_lines,
            min_indent,
            own_line,
            tail_brace,
            commas: region.matches(',').count(),
            spaced_commas: region.matches(", ").count(),
            kw_spaced: region.matches("if (").count()
                + region.matches("for (").count()
                + region.matches("while (").count(),
            kw_tight: region.matches("if(").count()
                + region.matches("for(").count()
                + region.matches("while(").count(),
            braceless,
            binary_spaced: region.contains(" + ")
                || region.contains(" < ")
                || region.contains(" << "),
            assign_spaced: region.contains(" = "),
            template_spaced: region.contains("> >"),
            blank_after_brace: region.contains("}\n\n"),
            blank_after_semi: region.contains(";\n\n"),
            blank_after_angle: region.contains(">\n\n"),
            ends_brace_nl: region.ends_with("}\n"),
            ends_semi_nl: region.ends_with(";\n"),
            ends_angle_nl: region.ends_with(">\n"),
        }
    }
}

/// Reconstructs [`detect_render_style`] of the assembled text from
/// per-region scans. `scans` yields `(separator_lines, scan)` in
/// region order, exactly as
/// [`render_with_regions`](synthattr_lang::render::render_with_regions)
/// reports them. Bit-identical to detecting on the whole text.
pub fn detect_from_scans(scans: &[(usize, &StyleScan)]) -> RenderStyle {
    let mut tab_lines = 0usize;
    let mut indent_lines = 0usize;
    let mut min_indent: Option<usize> = None;
    let mut own_line = 0usize;
    let mut tail_brace = 0usize;
    let mut commas = 0usize;
    let mut spaced_commas = 0usize;
    let mut kw_spaced = 0usize;
    let mut kw_tight = 0usize;
    let mut braceless = false;
    let mut binary_spaced = false;
    let mut assign_spaced = false;
    let mut template_spaced = false;
    let mut blank_after_brace = false;
    let mut blank_after_semi = false;
    let mut blank_after_angle = false;
    for (i, (sep, s)) in scans.iter().enumerate() {
        if i > 0 && *sep >= 1 {
            // A blank separator line turns the previous region's final
            // `X\n` into `X\n\n` in the assembled text.
            let prev = scans[i - 1].1;
            blank_after_brace |= prev.ends_brace_nl;
            blank_after_semi |= prev.ends_semi_nl;
            blank_after_angle |= prev.ends_angle_nl;
        }
        tab_lines += s.tab_lines;
        indent_lines += s.indent_lines;
        if let Some(m) = s.min_indent {
            min_indent = Some(min_indent.map_or(m, |c| c.min(m)));
        }
        own_line += s.own_line;
        tail_brace += s.tail_brace;
        commas += s.commas;
        spaced_commas += s.spaced_commas;
        kw_spaced += s.kw_spaced;
        kw_tight += s.kw_tight;
        braceless |= s.braceless;
        binary_spaced |= s.binary_spaced;
        assign_spaced |= s.assign_spaced;
        template_spaced |= s.template_spaced;
        blank_after_brace |= s.blank_after_brace;
        blank_after_semi |= s.blank_after_semi;
        blank_after_angle |= s.blank_after_angle;
    }
    let indent = if tab_lines > indent_lines {
        Indent::Tab
    } else {
        match min_indent.unwrap_or(4) {
            0..=2 => Indent::Spaces(2),
            3 => Indent::Spaces(3),
            _ => Indent::Spaces(4),
        }
    };
    let brace = if own_line > tail_brace {
        BraceStyle::NextLine
    } else {
        BraceStyle::SameLine
    };
    RenderStyle {
        indent,
        brace,
        space_around_binary: binary_spaced,
        space_around_assign: assign_spaced,
        space_after_comma: commas == 0 || spaced_commas * 2 >= commas,
        space_after_keyword: kw_spaced >= kw_tight,
        space_in_template_close: template_spaced,
        braceless_single_stmt: braceless,
        collapse_else_if: true,
        blank_lines_between_fns: if blank_after_brace { 1 } else { 0 },
        blank_line_after_prologue: blank_after_semi || blank_after_angle,
    }
}

// ---------------------------------------------------------------------------
// Step metadata
// ---------------------------------------------------------------------------

/// Node-level structure of one rendered step: the region spans tiling
/// the text, the structural hash of each region's parsed item, and the
/// whole-unit hash folded from them.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RegionInfo {
    /// One span per top-level item, tiling the source text.
    pub spans: Vec<RegionSpan>,
    /// Structural hash of each region's parsed item, aligned with
    /// `spans` and with the unit's `items`.
    pub item_hashes: Vec<u64>,
    /// `unit_hash_of(&item_hashes)`.
    pub unit_hash: u64,
}

/// One chain step produced through the node caches: rendered text, the
/// unit `parse(source)` would produce, and the step's region structure.
#[derive(Debug, Clone)]
pub struct StepFrontend {
    /// The rendered step text (byte-identical to the whole-file path).
    pub source: String,
    /// The parsed unit, equal to `parse(&source)`.
    pub unit: TranslationUnit,
    /// Node-level structure of `source`.
    pub regions: RegionInfo,
}

// ---------------------------------------------------------------------------
// The node cache
// ---------------------------------------------------------------------------

/// Per-dispatch-unit cache of node-level frontend products.
///
/// Sharded exactly like the artifact cache — one per challenge task,
/// one per chain driver in tests — so hit/miss totals are a pure
/// function of the inputs, never of worker scheduling.
#[derive(Debug, Default)]
pub struct FrontendCache {
    /// Region text → layout-detection partial (exact: text-keyed).
    scans: HashMap<String, StyleScan>,
    /// `(item hash, style)` → rendered region text (trusted hash,
    /// debug-verified).
    rendered: HashMap<(u64, RenderStyle), Arc<str>>,
    /// Item hash → per-item feature partials (trusted hash).
    item_feats: HashMap<u64, Arc<ItemFeatures>>,
    /// Region text → per-region layout feature scan (exact).
    layouts: HashMap<String, Arc<RegionLayout>>,
    /// Unit hash → analyzer diagnostics (trusted hash).
    diags: HashMap<u64, Arc<Vec<Diagnostic>>>,
    /// Unit hash → semantic fingerprint (trusted hash).
    fps: HashMap<u64, u64>,
    node_hits: u64,
    node_misses: u64,
}

impl FrontendCache {
    /// An empty cache.
    pub fn new() -> Self {
        FrontendCache::default()
    }

    /// Node-level lookups served from cache.
    pub fn node_hits(&self) -> u64 {
        self.node_hits
    }

    /// Node-level lookups that computed and stored a new product.
    pub fn node_misses(&self) -> u64 {
        self.node_misses
    }

    /// The layout-detection partial for one region text.
    fn scan_for(&mut self, region: &str) -> &StyleScan {
        if self.scans.contains_key(region) {
            self.node_hits += 1;
        } else {
            self.node_misses += 1;
            self.scans
                .insert(region.to_string(), StyleScan::scan(region));
        }
        &self.scans[region]
    }

    /// The rendered text of `item` under `style`, keyed by structural
    /// hash.
    fn rendered_for(&mut self, hash: u64, item: &Item, style: &RenderStyle) -> Arc<str> {
        if let Some(piece) = self.rendered.get(&(hash, style.clone())) {
            self.node_hits += 1;
            debug_assert_eq!(piece.as_ref(), render_item_text(item, style).as_str());
            return Arc::clone(piece);
        }
        self.node_misses += 1;
        let piece: Arc<str> = render_item_text(item, style).into();
        self.rendered
            .insert((hash, style.clone()), Arc::clone(&piece));
        piece
    }

    /// Per-item feature partials keyed by structural hash.
    pub fn item_features_for(&mut self, hash: u64, item: &Item) -> Arc<ItemFeatures> {
        if let Some(f) = self.item_feats.get(&hash) {
            self.node_hits += 1;
            debug_assert_eq!(**f, ItemFeatures::of_item(item));
            return Arc::clone(f);
        }
        self.node_misses += 1;
        let f = Arc::new(ItemFeatures::of_item(item));
        self.item_feats.insert(hash, Arc::clone(&f));
        f
    }

    /// Per-region layout scan keyed by region text.
    pub fn layout_for(&mut self, region: &str) -> Arc<RegionLayout> {
        if let Some(l) = self.layouts.get(region) {
            self.node_hits += 1;
            return Arc::clone(l);
        }
        self.node_misses += 1;
        let l = Arc::new(RegionLayout::scan(region));
        self.layouts.insert(region.to_string(), Arc::clone(&l));
        l
    }

    /// Whole-unit analyzer diagnostics keyed by unit hash.
    pub fn diags_for(
        &mut self,
        unit_hash: u64,
        unit: &TranslationUnit,
        analyzer: &Analyzer,
    ) -> Arc<Vec<Diagnostic>> {
        if let Some(d) = self.diags.get(&unit_hash) {
            self.node_hits += 1;
            debug_assert_eq!(**d, analyzer.analyze(unit));
            return Arc::clone(d);
        }
        self.node_misses += 1;
        let d = Arc::new(analyzer.analyze(unit));
        self.diags.insert(unit_hash, Arc::clone(&d));
        d
    }

    /// Whole-unit semantic fingerprint keyed by unit hash.
    pub fn fingerprint_for(&mut self, unit_hash: u64, unit: &TranslationUnit) -> u64 {
        if let Some(fp) = self.fps.get(&unit_hash) {
            self.node_hits += 1;
            debug_assert_eq!(*fp, fingerprint(unit));
            return *fp;
        }
        self.node_misses += 1;
        let fp = fingerprint(unit);
        self.fps.insert(unit_hash, fp);
        fp
    }
}

/// Detects the layout style of `source` from cached per-region scans,
/// bit-identical to [`detect_render_style`] on the whole text.
pub fn detect_with_regions(
    fc: &mut FrontendCache,
    source: &str,
    regions: &RegionInfo,
) -> RenderStyle {
    for span in &regions.spans {
        fc.scan_for(&source[span.start..span.end]);
    }
    let pairs: Vec<(usize, &StyleScan)> = regions
        .spans
        .iter()
        .map(|span| (span.sep_before, &fc.scans[&source[span.start..span.end]]))
        .collect();
    let style = detect_from_scans(&pairs);
    debug_assert_eq!(style, detect_render_style(source));
    style
}

// ---------------------------------------------------------------------------
// One chain step through the caches
// ---------------------------------------------------------------------------

/// Runs one transformation step through the node caches.
///
/// Byte-identical to
/// [`Transformer::transform_parsed`]`(source, unit, pool_idx, rng)`
/// followed by `parse(&output)`: the rewrite pass consumes the exact
/// RNG stream, the render assembles cached per-item pieces under the
/// blended style, and the returned unit is the rewritten AST itself —
/// equal to a fresh whole parse because the renderer is the parser's
/// inverse on every AST the rewrite passes can produce (re-proved by
/// `debug_assert` on every debug run and by the `reference-increment`
/// A/B grid against the whole-file path's real parses).
/// `src_render` must equal `detect_render_style(source)` (callers get
/// it from [`detect_with_regions`] or the whole-text detector).
///
/// # Errors
///
/// Infallible in practice; the `Result` carries the debug-only
/// semantics check (and keeps the signature aligned with the reference
/// path, which re-parses and can surface [`GptError::Parse`]).
pub fn transform_step_cached(
    transformer: &Transformer<'_>,
    source: &str,
    unit: &TranslationUnit,
    src_render: &RenderStyle,
    pool_idx: usize,
    rng: &mut Pcg64,
    fc: &mut FrontendCache,
) -> Result<StepFrontend, GptError> {
    debug_assert_eq!(src_render, &detect_render_style(source));
    let (rewritten, style) = transformer.rewrite_styled(src_render, unit.clone(), pool_idx, rng);

    // Render: cached per-item pieces joined by the separator plan. The
    // structural hashes computed for the render lookup double as the
    // step's `RegionInfo` item hashes.
    let seps = separator_plan(&rewritten.items, &style);
    let mut pieces: Vec<Arc<str>> = Vec::with_capacity(rewritten.items.len());
    let mut item_hashes: Vec<u64> = Vec::with_capacity(rewritten.items.len());
    for item in &rewritten.items {
        let h = item_hash(item);
        item_hashes.push(h);
        pieces.push(fc.rendered_for(h, item, &style));
    }
    let total: usize = seps.iter().sum::<usize>() + pieces.iter().map(|p| p.len()).sum::<usize>();
    let mut out = String::with_capacity(total);
    let mut spans = Vec::with_capacity(pieces.len());
    for (piece, sep) in pieces.iter().zip(&seps) {
        for _ in 0..*sep {
            out.push('\n');
        }
        let start = out.len();
        out.push_str(piece);
        spans.push(RegionSpan {
            start,
            end: out.len(),
            sep_before: *sep,
        });
    }
    debug_assert_eq!(out, synthattr_lang::render::render(&rewritten, &style));

    // Parse: skipped. The renderer is the parser's inverse on the
    // rewriter's AST subset — `parse(render(unit, style)) == unit` for
    // every unit the rewrite passes can produce (the rewriter only
    // rearranges canonical constructs; it cannot synthesise a node the
    // renderer prints ambiguously). The rewritten AST *is* the parse of
    // the assembled text, so the step hands it straight through instead
    // of re-parsing its own render region by region. The identity is
    // re-proved on every debug run below and end-to-end by the
    // `reference-increment` A/B grid (units are compared against the
    // whole-file path, whose units come from real `parse` calls).
    debug_assert_eq!(
        rewritten,
        parse(&out).expect("assembled text re-parses"),
        "render/parse round-trip must reproduce the rewritten AST"
    );
    let unit_hash = unit_hash_of(&item_hashes);
    let (parsed, regions) = (
        rewritten,
        RegionInfo {
            spans,
            item_hashes,
            unit_hash,
        },
    );

    #[cfg(debug_assertions)]
    crate::transform::debug_assert_semantics_preserved(source, &out)?;
    Ok(StepFrontend {
        source: out,
        unit: parsed,
        regions,
    })
}

// ---------------------------------------------------------------------------
// Cached chain drivers
// ---------------------------------------------------------------------------

/// One chain step with its node-level structure, as produced by the
/// cached drivers.
#[derive(Debug, Clone)]
pub struct CachedStep {
    /// The transformed sample (text + provenance).
    pub sample: crate::chain::TransformedSample,
    /// The AST of `sample.source`, equal to a fresh parse.
    pub unit: TranslationUnit,
    /// Node-level structure of `sample.source`.
    pub regions: RegionInfo,
}

/// Cached NCT driver: byte-identical to
/// [`try_run_nct_steps`](crate::chain::try_run_nct_steps), with the
/// seed's layout detection hoisted out of the loop (the seed never
/// changes) and every per-item product shared through `fc`.
///
/// # Errors
///
/// Returns [`GptError::Parse`] if a rendered output leaves the subset.
pub fn try_run_nct_steps_cached(
    transformer: &Transformer<'_>,
    seed_code: &str,
    seed_unit: &TranslationUnit,
    n: usize,
    seed_origin: synthattr_gen::corpus::Origin,
    rng: &mut Pcg64,
    fc: &mut FrontendCache,
) -> Result<Vec<CachedStep>, GptError> {
    use crate::chain::{TransformMode, TransformedSample};
    let pool = transformer.pool();
    #[cfg(debug_assertions)]
    let seed_fp = fingerprint(seed_unit);
    let src_render = detect_render_style(seed_code);
    (1..=n)
        .map(|step| {
            let pool_index = pool.sample_index(rng);
            let sf = transform_step_cached(
                transformer,
                seed_code,
                seed_unit,
                &src_render,
                pool_index,
                rng,
                fc,
            )?;
            #[cfg(debug_assertions)]
            debug_assert_eq!(
                fingerprint(&sf.unit),
                seed_fp,
                "NCT step {step} drifted from the seed's semantic fingerprint"
            );
            Ok(CachedStep {
                sample: TransformedSample {
                    source: sf.source,
                    step,
                    mode: TransformMode::NonChaining,
                    seed_origin,
                    pool_index,
                },
                unit: sf.unit,
                regions: sf.regions,
            })
        })
        .collect()
}

/// Cached CT driver: byte-identical to
/// [`try_run_ct_steps`](crate::chain::try_run_ct_steps). Step `i+1`
/// detects layout from step `i`'s cached region scans and reuses every
/// unchanged item's rendered text, parse, and hashes through `fc`.
///
/// # Errors
///
/// Returns [`GptError::Parse`] if a rendered output leaves the subset.
pub fn try_run_ct_steps_cached(
    transformer: &Transformer<'_>,
    seed_code: &str,
    seed_unit: &TranslationUnit,
    n: usize,
    seed_origin: synthattr_gen::corpus::Origin,
    rng: &mut Pcg64,
    fc: &mut FrontendCache,
) -> Result<Vec<CachedStep>, GptError> {
    use crate::chain::{TransformMode, TransformedSample};
    let pool = transformer.pool();
    #[cfg(debug_assertions)]
    let seed_fp = fingerprint(seed_unit);
    let mut style_idx = pool.sample_index(rng);
    let mut out: Vec<CachedStep> = Vec::with_capacity(n);
    for step in 1..=n {
        if step > 1 && !rng.next_bool(pool.ct_stickiness) {
            style_idx = pool.sample_index(rng);
        }
        let sf = match out.last() {
            Some(prev) => {
                let sr = detect_with_regions(fc, &prev.sample.source, &prev.regions);
                transform_step_cached(
                    transformer,
                    &prev.sample.source,
                    &prev.unit,
                    &sr,
                    style_idx,
                    rng,
                    fc,
                )?
            }
            None => {
                let sr = detect_render_style(seed_code);
                transform_step_cached(transformer, seed_code, seed_unit, &sr, style_idx, rng, fc)?
            }
        };
        #[cfg(debug_assertions)]
        debug_assert_eq!(
            fingerprint(&sf.unit),
            seed_fp,
            "CT step {step} drifted from the seed's semantic fingerprint"
        );
        out.push(CachedStep {
            sample: TransformedSample {
                source: sf.source,
                step,
                mode: TransformMode::Chaining,
                seed_origin,
                pool_index: style_idx,
            },
            unit: sf.unit,
            regions: sf.regions,
        });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chain::{try_run_ct_steps, try_run_nct_steps};
    use crate::pool::YearPool;
    use synthattr_gen::challenges::ChallengeId;
    use synthattr_gen::corpus::{solution_in_style, Origin};
    use synthattr_gen::style::AuthorStyle;
    use synthattr_lang::render::render_with_regions;

    fn seed_code(seed: u64) -> String {
        let mut rng = Pcg64::new(seed);
        let style = AuthorStyle::sample(&mut rng);
        solution_in_style(ChallengeId::SumSeries, &style, seed, &["incr-seed"])
    }

    #[test]
    fn scan_merge_reconstructs_whole_text_detection() {
        for seed in [1u64, 2, 3, 9] {
            let src = seed_code(seed);
            let unit = parse(&src).unwrap();
            // Detect over many rendered layouts, merged from regions.
            for style in [
                RenderStyle::default(),
                RenderStyle {
                    indent: Indent::Tab,
                    brace: BraceStyle::NextLine,
                    blank_lines_between_fns: 0,
                    space_after_comma: false,
                    space_after_keyword: false,
                    blank_line_after_prologue: false,
                    ..RenderStyle::default()
                },
                RenderStyle {
                    indent: Indent::Spaces(2),
                    braceless_single_stmt: true,
                    space_around_binary: false,
                    space_around_assign: false,
                    blank_lines_between_fns: 2,
                    ..RenderStyle::default()
                },
            ] {
                let (text, spans) = render_with_regions(&unit, &style);
                let scans: Vec<StyleScan> = spans
                    .iter()
                    .map(|s| StyleScan::scan(&text[s.start..s.end]))
                    .collect();
                let pairs: Vec<(usize, &StyleScan)> = spans
                    .iter()
                    .zip(&scans)
                    .map(|(s, scan)| (s.sep_before, scan))
                    .collect();
                assert_eq!(detect_from_scans(&pairs), detect_render_style(&text));
            }
        }
    }

    #[test]
    fn detect_from_no_regions_matches_empty_text() {
        assert_eq!(detect_from_scans(&[]), detect_render_style(""));
    }

    #[test]
    fn cached_ct_driver_matches_plain_driver_byte_for_byte() {
        let pool = YearPool::calibrated(2018, 3);
        let gpt = Transformer::new(&pool);
        let seed = seed_code(9);
        let seed_unit = parse(&seed).unwrap();

        let plain = try_run_ct_steps(
            &gpt,
            &seed,
            &seed_unit,
            12,
            Origin::Human,
            &mut Pcg64::new(32),
        )
        .unwrap();
        let mut fc = FrontendCache::new();
        let cached = try_run_ct_steps_cached(
            &gpt,
            &seed,
            &seed_unit,
            12,
            Origin::Human,
            &mut Pcg64::new(32),
            &mut fc,
        )
        .unwrap();
        assert_eq!(plain.len(), cached.len());
        for (p, c) in plain.iter().zip(&cached) {
            assert_eq!(p.sample, c.sample);
            assert_eq!(p.unit, c.unit);
            assert_eq!(c.unit, parse(&c.sample.source).unwrap());
            // Region structure tiles the text and hashes its items.
            let mut pos = 0usize;
            for (span, (item, hash)) in c
                .regions
                .spans
                .iter()
                .zip(c.unit.items.iter().zip(&c.regions.item_hashes))
            {
                assert_eq!(span.start, pos + span.sep_before);
                assert_eq!(*hash, item_hash(item));
                pos = span.end;
            }
            assert_eq!(pos, c.sample.source.len());
            assert_eq!(c.regions.unit_hash, unit_hash_of(&c.regions.item_hashes));
        }
        assert!(fc.node_hits() > 0, "a chain must reuse nodes across steps");

        // A second identical run through the same warm cache stays
        // byte-identical (every product now comes from cache).
        let warm = try_run_ct_steps_cached(
            &gpt,
            &seed,
            &seed_unit,
            12,
            Origin::Human,
            &mut Pcg64::new(32),
            &mut fc,
        )
        .unwrap();
        for (p, c) in plain.iter().zip(&warm) {
            assert_eq!(p.sample, c.sample);
            assert_eq!(p.unit, c.unit);
        }
    }

    #[test]
    fn cached_nct_driver_matches_plain_driver_byte_for_byte() {
        let pool = YearPool::calibrated(2019, 2);
        let gpt = Transformer::new(&pool);
        let seed = seed_code(4);
        let seed_unit = parse(&seed).unwrap();

        let plain = try_run_nct_steps(
            &gpt,
            &seed,
            &seed_unit,
            10,
            Origin::ChatGpt,
            &mut Pcg64::new(31),
        )
        .unwrap();
        let mut fc = FrontendCache::new();
        let cached = try_run_nct_steps_cached(
            &gpt,
            &seed,
            &seed_unit,
            10,
            Origin::ChatGpt,
            &mut Pcg64::new(31),
            &mut fc,
        )
        .unwrap();
        assert_eq!(plain.len(), cached.len());
        for (p, c) in plain.iter().zip(&cached) {
            assert_eq!(p.sample, c.sample);
            assert_eq!(p.unit, c.unit);
        }
    }

    #[test]
    fn unit_hash_caches_serve_diags_and_fingerprints_across_texts() {
        // Two texts with identical structure (different layout only)
        // share one diagnostics product and one fingerprint.
        let src = seed_code(5);
        let unit = parse(&src).unwrap();
        let analyzer = Analyzer::new();
        let mut fc = FrontendCache::new();
        let h = synthattr_lang::hash::unit_hash(&unit);
        let d1 = fc.diags_for(h, &unit, &analyzer);
        let fp1 = fc.fingerprint_for(h, &unit);
        assert_eq!(fc.node_misses(), 2);
        let relaid = parse(&synthattr_lang::render::render(
            &unit,
            &RenderStyle {
                indent: Indent::Tab,
                ..RenderStyle::default()
            },
        ))
        .unwrap();
        if synthattr_lang::hash::unit_hash(&relaid) == h {
            let d2 = fc.diags_for(h, &relaid, &analyzer);
            let fp2 = fc.fingerprint_for(h, &relaid);
            assert!(Arc::ptr_eq(&d1, &d2));
            assert_eq!(fp1, fp2);
            assert_eq!(fc.node_hits(), 2);
        }
        assert_eq!(*d1, analyzer.analyze(&unit));
        assert_eq!(fp1, fingerprint(&unit));
    }
}
