//! The AST-level code transformation engine.
//!
//! `Transformer::transform` models one ChatGPT "rewrite this code in a
//! different style" request: it parses the input, rewrites content
//! style toward a sampled latent pool style (identifiers, casts,
//! increments, compound assignments, loop forms, IO idiom, comments,
//! optional per-case helper extraction — the paper's Figure 4a), and
//! re-renders under a per-dimension *blend* of the source's detected
//! layout and the target layout. The blend probability is the pool's
//! `fidelity`: at fidelity 1 the output is fully in-pool; below 1,
//! source traits leak through, producing the hybrid styles the paper
//! observes on human-seeded transformations.

use crate::error::GptError;
use crate::pool::YearPool;
use std::collections::HashMap;
use synthattr_gen::naming::{apply_case, NamingStyle, Verbosity};
use synthattr_gen::style::AuthorStyle;
use synthattr_lang::ast::*;
use synthattr_lang::parse;
use synthattr_lang::render::{render, BraceStyle, Indent, RenderStyle};
use synthattr_lang::visit::{
    declared_names, for_each_block_mut, rename_idents, unrenameable_names,
};
use synthattr_util::Pcg64;

/// The transformation engine bound to one year pool.
#[derive(Debug, Clone)]
pub struct Transformer<'a> {
    pool: &'a YearPool,
}

impl<'a> Transformer<'a> {
    /// Creates an engine over `pool`.
    pub fn new(pool: &'a YearPool) -> Self {
        Transformer { pool }
    }

    /// The pool in use.
    pub fn pool(&self) -> &YearPool {
        self.pool
    }

    /// Applies one simulated LLM transformation of `source` toward the
    /// pool style at `pool_idx`.
    ///
    /// # Errors
    ///
    /// Returns [`GptError::Parse`] when `source` is not in the
    /// supported C++ subset (the simulator, like the paper's pipeline,
    /// only handles parseable inputs).
    pub fn transform(
        &self,
        source: &str,
        pool_idx: usize,
        rng: &mut Pcg64,
    ) -> Result<String, GptError> {
        let unit = parse(source).map_err(GptError::Parse)?;
        self.transform_owned(source, unit, pool_idx, rng)
    }

    /// Like [`Transformer::transform`], but reuses an already-parsed
    /// `unit` of `source` instead of re-parsing it. This is the
    /// single-parse frontend entry point: callers that hold the
    /// artifact for `source` (the chain drivers, the fault service)
    /// pay one AST clone here instead of a full lex+parse.
    ///
    /// `source` must be the exact text `unit` was parsed from — the
    /// layout detector reads the raw text while the rewrites walk the
    /// AST, and the two must agree for results to match `transform`.
    pub fn transform_parsed(
        &self,
        source: &str,
        unit: &TranslationUnit,
        pool_idx: usize,
        rng: &mut Pcg64,
    ) -> Result<String, GptError> {
        self.transform_owned(source, unit.clone(), pool_idx, rng)
    }

    /// The rewrite body, consuming its working AST (freshly parsed in
    /// [`Transformer::transform`], cloned from the caller's shared unit
    /// in [`Transformer::transform_parsed`]).
    fn transform_owned(
        &self,
        source: &str,
        unit: TranslationUnit,
        pool_idx: usize,
        rng: &mut Pcg64,
    ) -> Result<String, GptError> {
        let src_render = detect_render_style(source);
        let (unit, style) = self.rewrite_styled(&src_render, unit, pool_idx, rng);
        let out = render(&unit, &style);
        #[cfg(debug_assertions)]
        debug_assert_semantics_preserved(source, &out)?;
        Ok(out)
    }

    /// The content-style rewrites plus the layout blend, factored out of
    /// [`Transformer::transform_owned`] so the incremental frontend
    /// ([`crate::incr`]) can run the identical rewrite pass while
    /// supplying a cached source-layout detection and rendering from
    /// cached per-item pieces. Consumes exactly the same RNG stream as
    /// the rewrite section of `transform_owned` — every `next_bool`
    /// gate fires in the same order whether or not the caller's layout
    /// detection and render were cached.
    pub(crate) fn rewrite_styled(
        &self,
        src_render: &RenderStyle,
        mut unit: TranslationUnit,
        pool_idx: usize,
        rng: &mut Pcg64,
    ) -> (TranslationUnit, RenderStyle) {
        let target = &self.pool.styles[pool_idx].style;
        let fidelity = self.pool.fidelity;
        // NOTE: the type environment is captured *before* renaming, so
        // IO-idiom conversion only fires for statements whose variables
        // kept their pre-rename names. This partial adoption is part of
        // the hybridization model (and of the calibration recorded in
        // EXPERIMENTS.md): real restyling is rarely total either, and
        // the resulting mixed-idiom outputs are what keep human-seeded
        // NCT the most style-diverse setting, as in the paper.
        let env = TypeEnv::of(&unit);

        // Content-style rewrites, each adopted with probability
        // `fidelity` (otherwise the source trait is retained).
        if rng.next_bool(fidelity) {
            // The vocabulary is keyed on the pool style's *anchor*, not
            // the per-sample stream: every sample rewritten toward one
            // latent style family reuses the same small word pool in
            // the same order, so the family produces one consistent
            // lexical signature across challenges — the mechanism
            // behind the paper's label collapse (≤12 styles, one label
            // covering 77% in 2017).
            let anchor = self.pool.styles[pool_idx].anchor;
            let vocab = StyleVocab::for_anchor(self.pool.seed, self.pool.year, anchor);
            rename_all(&mut unit, target.naming, &vocab);
        }
        if rng.next_bool(fidelity) {
            flip_casts(&mut unit, target.structure.static_cast);
        }
        if rng.next_bool(fidelity) {
            set_incdec(&mut unit, target.loops.post_increment);
        }
        if rng.next_bool(fidelity) {
            set_compound(&mut unit, target.structure.compound_assign);
        }
        if rng.next_bool(fidelity * 0.4) {
            convert_loops(&mut unit, target.loops.while_bias > 0.5, rng);
        }
        if rng.next_bool(fidelity) {
            convert_conditionals(&mut unit, target.structure.ternary);
        }
        if rng.next_bool(fidelity) {
            restyle_declarations(&mut unit, target.structure.merge_decls);
        }
        if rng.next_bool(fidelity * 0.3) {
            lower_foreach(&mut unit, rng);
        }
        if rng.next_bool(fidelity) {
            if target.io.stdio {
                stream_to_stdio(&mut unit, &env);
            } else {
                stdio_to_stream(&mut unit, target.io.endl);
            }
        }
        if rng.next_bool(fidelity) {
            swap_endl(&mut unit, target.io.endl);
        }
        if rng.next_bool(fidelity) {
            restyle_comments(&mut unit, target, rng);
        }
        if target.structure.helper_bias > 0.5 && rng.next_bool(fidelity * 0.6) {
            // Safety gate: helper extraction moves statements out of
            // `main`; if the moved block reads a local that stays
            // behind (the loop counter, a pre-loop accumulator), the
            // helper would reference an undeclared name. Run the
            // extraction on a candidate and commit only when the
            // resolver sees no new undeclared identifiers. The RNG is
            // drawn on the candidate path either way, so skipping a
            // bad extraction never perturbs later sampling.
            let before = synthattr_analysis::resolve(&unit).undeclared.len();
            let mut candidate = unit.clone();
            extract_case_helper(&mut candidate, target, &env, rng);
            if synthattr_analysis::resolve(&candidate).undeclared.len() <= before {
                unit = candidate;
            }
        }

        // Layout blend: each field adopts the target with probability
        // `fidelity`, else keeps the detected source value.
        let style = blend_render_styles(src_render, &target.render, fidelity, rng);
        (unit, style)
    }
}

/// Debug-build gate behind every transform: the output must introduce
/// no new error-severity diagnostics and must keep the input's
/// semantic fingerprint. This is the checked form of the paper's
/// style-not-semantics assumption (see `synthattr-analysis`).
///
/// Re-analysis failures surface as typed [`GptError::Parse`] values
/// (not `expect` panics) so the fault-injected service layer can treat
/// them like any other invalid response; the fingerprint and lint
/// comparisons themselves keep assert semantics — a violation there is
/// a transformer bug, not an input problem.
#[cfg(debug_assertions)]
pub(crate) fn debug_assert_semantics_preserved(source: &str, out: &str) -> Result<(), GptError> {
    use synthattr_analysis::{fingerprint_source, new_errors, Analyzer};
    let analyzer = Analyzer::new();
    let pre = analyzer.analyze_source(source).map_err(GptError::Parse)?;
    let post = analyzer.analyze_source(out).map_err(GptError::Parse)?;
    let fresh = new_errors(&pre, &post);
    assert!(
        fresh.is_empty(),
        "transform introduced error diagnostics:\n{}\n--- input ---\n{source}\n--- output ---\n{out}",
        fresh
            .iter()
            .map(|d| d.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
    let fp_in = fingerprint_source(source).map_err(GptError::Parse)?;
    let fp_out = fingerprint_source(out).map_err(GptError::Parse)?;
    assert_eq!(
        fp_in, fp_out,
        "transform changed the semantic fingerprint\n--- input ---\n{source}\n--- output ---\n{out}"
    );
    Ok(())
}

// ---------------------------------------------------------------------------
// Layout detection and blending
// ---------------------------------------------------------------------------

/// Heuristically recovers the layout style of raw source text (used to
/// let source layout traits survive low-fidelity transformations).
pub fn detect_render_style(src: &str) -> RenderStyle {
    let lines: Vec<&str> = src.lines().collect();
    let mut tab_lines = 0usize;
    let mut indents: Vec<usize> = Vec::new();
    for l in &lines {
        if l.trim().is_empty() {
            continue;
        }
        let lead: String = l.chars().take_while(|c| *c == ' ' || *c == '\t').collect();
        if lead.contains('\t') {
            tab_lines += 1;
        } else if !lead.is_empty() {
            indents.push(lead.len());
        }
    }
    let indent = if tab_lines > indents.len() {
        Indent::Tab
    } else {
        let min_indent = indents.iter().copied().min().unwrap_or(4);
        match min_indent {
            0..=2 => Indent::Spaces(2),
            3 => Indent::Spaces(3),
            _ => Indent::Spaces(4),
        }
    };
    let own_line = lines.iter().filter(|l| l.trim() == "{").count();
    let tail_brace = lines
        .iter()
        .filter(|l| {
            let t = l.trim();
            t.len() > 1 && t.ends_with('{')
        })
        .count();
    let brace = if own_line > tail_brace {
        BraceStyle::NextLine
    } else {
        BraceStyle::SameLine
    };
    let commas = src.matches(',').count();
    let spaced_commas = src.matches(", ").count();
    let kw_spaced =
        src.matches("if (").count() + src.matches("for (").count() + src.matches("while (").count();
    let kw_tight =
        src.matches("if(").count() + src.matches("for(").count() + src.matches("while(").count();
    // Braceless bodies: control headers without an opening brace.
    let braceless = lines.iter().any(|l| {
        let t = l.trim();
        (t.starts_with("if ")
            || t.starts_with("if(")
            || t.starts_with("for ")
            || t.starts_with("for(")
            || t.starts_with("while ")
            || t.starts_with("while("))
            && t.ends_with(')')
    });
    RenderStyle {
        indent,
        brace,
        space_around_binary: src.contains(" + ") || src.contains(" < ") || src.contains(" << "),
        space_around_assign: src.contains(" = "),
        space_after_comma: commas == 0 || spaced_commas * 2 >= commas,
        space_after_keyword: kw_spaced >= kw_tight,
        space_in_template_close: src.contains("> >"),
        braceless_single_stmt: braceless,
        collapse_else_if: true,
        blank_lines_between_fns: if src.contains("}\n\n") { 1 } else { 0 },
        blank_line_after_prologue: src.contains(";\n\n") || src.contains(">\n\n"),
    }
}

fn blend_render_styles(
    source: &RenderStyle,
    target: &RenderStyle,
    fidelity: f64,
    rng: &mut Pcg64,
) -> RenderStyle {
    macro_rules! pick {
        ($field:ident) => {
            if rng.next_bool(fidelity) {
                target.$field.clone()
            } else {
                source.$field.clone()
            }
        };
    }
    RenderStyle {
        indent: pick!(indent),
        brace: pick!(brace),
        space_around_binary: pick!(space_around_binary),
        space_around_assign: pick!(space_around_assign),
        space_after_comma: pick!(space_after_comma),
        space_after_keyword: pick!(space_after_keyword),
        space_in_template_close: pick!(space_in_template_close),
        braceless_single_stmt: pick!(braceless_single_stmt),
        collapse_else_if: true,
        blank_lines_between_fns: pick!(blank_lines_between_fns),
        blank_line_after_prologue: pick!(blank_line_after_prologue),
    }
}

// ---------------------------------------------------------------------------
// Type environment (drives IO conversion and helper extraction)
// ---------------------------------------------------------------------------

/// Rough scalar types for IO-format inference.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Ty {
    Int,
    Long,
    Double,
    Str,
    Char,
}

/// Maps declared variable names to types and function names to return
/// types.
struct TypeEnv {
    vars: HashMap<String, Type>,
    fns: HashMap<String, Type>,
}

impl TypeEnv {
    fn of(unit: &TranslationUnit) -> Self {
        let mut vars = HashMap::new();
        let mut fns = HashMap::new();
        for item in &unit.items {
            match item {
                Item::GlobalVar(d) => note_decl(d, &mut vars),
                Item::Function(f) => {
                    fns.insert(f.name.clone(), f.ret.clone());
                    for p in &f.params {
                        vars.insert(p.name.clone(), p.ty.clone());
                    }
                    note_block(&f.body, &mut vars);
                }
                _ => {}
            }
        }
        TypeEnv { vars, fns }
    }

    fn scalar(&self, ty: &Type) -> Option<Ty> {
        match ty {
            Type::Int | Type::Bool | Type::Unsigned => Some(Ty::Int),
            Type::Long | Type::LongLong => Some(Ty::Long),
            Type::Named(n) if n == "ll" => Some(Ty::Long),
            Type::Float | Type::Double => Some(Ty::Double),
            Type::Str => Some(Ty::Str),
            Type::Char => Some(Ty::Char),
            Type::Ref(inner) | Type::Const(inner) => self.scalar(inner),
            _ => None,
        }
    }

    /// Best-effort type of an expression; `None` means "don't touch".
    fn infer(&self, e: &Expr) -> Option<Ty> {
        match e {
            Expr::Int(_) | Expr::Bool(_) => Some(Ty::Int),
            Expr::Float(_) => Some(Ty::Double),
            Expr::Str(_) => Some(Ty::Str),
            Expr::Char(_) => Some(Ty::Char),
            Expr::Ident(name) => self.vars.get(name).and_then(|t| self.scalar(t)),
            Expr::Paren(inner) => self.infer(inner),
            Expr::Cast { ty, .. } | Expr::StaticCast { ty, .. } => self.scalar(ty),
            Expr::Unary { expr, .. } => self.infer(expr),
            Expr::Assign { lhs, .. } => self.infer(lhs),
            Expr::Ternary {
                then_expr,
                else_expr,
                ..
            } => promote(self.infer(then_expr), self.infer(else_expr)),
            Expr::Binary { op, lhs, rhs } => match op {
                BinaryOp::Add | BinaryOp::Sub | BinaryOp::Mul | BinaryOp::Div | BinaryOp::Mod => {
                    promote(self.infer(lhs), self.infer(rhs))
                }
                BinaryOp::Lt
                | BinaryOp::Gt
                | BinaryOp::Le
                | BinaryOp::Ge
                | BinaryOp::Eq
                | BinaryOp::Ne
                | BinaryOp::And
                | BinaryOp::Or => Some(Ty::Int),
                _ => None,
            },
            Expr::Call { callee, .. } => match callee.unparenthesized() {
                Expr::Ident(name) => match name.as_str() {
                    "max" | "min" | "abs" => None, // depends on args; be safe
                    _ => self.fns.get(name).and_then(|t| self.scalar(t)),
                },
                Expr::Member { member, .. } if member == "size" => Some(Ty::Int),
                Expr::Member { member, .. } if member == "c_str" => Some(Ty::Str),
                _ => None,
            },
            Expr::Index { base, .. } => match base.unparenthesized() {
                Expr::Ident(name) => match self.vars.get(name) {
                    Some(Type::Str) => Some(Ty::Char),
                    Some(Type::Vector(inner)) => self.scalar(inner),
                    Some(other) => self.scalar(other),
                    None => None,
                },
                _ => None,
            },
            _ => None,
        }
    }
}

fn promote(a: Option<Ty>, b: Option<Ty>) -> Option<Ty> {
    match (a?, b?) {
        (Ty::Str, _) | (_, Ty::Str) => None,
        (Ty::Double, _) | (_, Ty::Double) => Some(Ty::Double),
        (Ty::Long, _) | (_, Ty::Long) => Some(Ty::Long),
        _ => Some(Ty::Int),
    }
}

fn note_decl(d: &Declaration, vars: &mut HashMap<String, Type>) {
    for dd in &d.declarators {
        vars.entry(dd.name.clone()).or_insert_with(|| d.ty.clone());
    }
}

fn note_block(block: &Block, vars: &mut HashMap<String, Type>) {
    for stmt in &block.stmts {
        note_stmt(stmt, vars);
    }
}

fn note_stmt(stmt: &Stmt, vars: &mut HashMap<String, Type>) {
    match stmt {
        Stmt::Decl(d) => note_decl(d, vars),
        Stmt::If {
            then_branch,
            else_branch,
            ..
        } => {
            note_block(then_branch, vars);
            if let Some(e) = else_branch {
                note_block(e, vars);
            }
        }
        Stmt::For { init, body, .. } => {
            if let Some(i) = init {
                note_stmt(i, vars);
            }
            note_block(body, vars);
        }
        Stmt::ForEach { ty, name, body, .. } => {
            vars.entry(name.clone()).or_insert_with(|| ty.clone());
            note_block(body, vars);
        }
        Stmt::While { body, .. } | Stmt::DoWhile { body, .. } => note_block(body, vars),
        Stmt::Block(b) => note_block(b, vars),
        _ => {}
    }
}

// ---------------------------------------------------------------------------
// Identifier renaming
// ---------------------------------------------------------------------------

const VAR_WORDS: &[&[&str]] = &[
    &["val"],
    &["num"],
    &["count"],
    &["idx"],
    &["pos"],
    &["total"],
    &["result"],
    &["temp"],
    &["item"],
    &["cur"],
    &["best"],
    &["limit"],
    &["data"],
    &["sum"],
    &["ans"],
    &["len"],
    &["speed"],
    &["dist"],
    &["time", "val"],
    &["flag"],
    &["left"],
    &["right"],
    &["aux"],
    &["key"],
    &["low"],
    &["high"],
    &["max", "time"],
    &["case", "result"],
    &["num", "items"],
    &["input", "value"],
    &["test", "count"],
    &["cur", "val"],
    &["horse", "position"],
    &["horse", "speed"],
    &["max", "distance"],
    &["case", "number"],
];

const FN_WORDS: &[&[&str]] = &[
    &["solve"],
    &["process"],
    &["compute"],
    &["calc"],
    &["work"],
    &["run"],
    &["eval"],
    &["check"],
    &["solve", "case"],
    &["process", "case"],
    &["handle", "case"],
    &["solve", "test", "case"],
    &["do", "work"],
    &["compute", "answer"],
];

const SHORT_NAMES: &[&str] = &[
    "a", "b", "c", "d", "e", "f", "g", "h", "i", "j", "k", "m", "n", "p", "q", "r", "s", "t", "u",
    "v", "w", "x", "y", "z",
];

/// A style family's fixed renaming vocabulary: a small shuffled slice
/// of the word pools, reused in order for every program, so the family
/// has a stable lexical fingerprint.
#[derive(Debug, Clone)]
pub struct StyleVocab {
    vars: Vec<&'static [&'static str]>,
    fns: Vec<&'static [&'static str]>,
    shorts: Vec<&'static str>,
}

impl StyleVocab {
    /// The vocabulary of anchor `anchor` in `year` under `seed`.
    pub fn for_anchor(seed: u64, year: u32, anchor: usize) -> Self {
        let mut rng = Pcg64::seed_from(
            seed,
            &["style-vocab", &year.to_string(), &anchor.to_string()],
        );
        let vars = rng
            .sample_indices(VAR_WORDS.len(), 12)
            .into_iter()
            .map(|i| VAR_WORDS[i])
            .collect();
        let fns = rng
            .sample_indices(FN_WORDS.len(), 4)
            .into_iter()
            .map(|i| FN_WORDS[i])
            .collect();
        let shorts = rng
            .sample_indices(SHORT_NAMES.len(), 10)
            .into_iter()
            .map(|i| SHORT_NAMES[i])
            .collect();
        StyleVocab { vars, fns, shorts }
    }
}

/// Renames every user-declared identifier into `naming`, assigning
/// vocabulary entries by position so the mapping is deterministic for
/// a given (program, vocabulary) pair.
fn rename_all(unit: &mut TranslationUnit, naming: NamingStyle, vocab: &StyleVocab) {
    // Typedef/using/define names are declared names but live in type
    // and macro positions `rename_idents` cannot rewrite; renaming
    // them would orphan their uses, so they are skipped (and their
    // names stay off-limits to the `used` collision check below).
    let skip = unrenameable_names(unit);
    let names: Vec<String> = declared_names(unit) // sorted and deduplicated
        .into_iter()
        .filter(|n| !skip.contains(n))
        .collect();
    let fn_names: Vec<String> = unit
        .functions()
        .filter(|f| f.name != "main")
        .map(|f| f.name.clone())
        .collect();
    let mut mapping = HashMap::new();
    let mut used: Vec<String> = skip;
    let mut var_i = 0usize;
    let mut fn_i = 0usize;
    for name in names {
        let is_fn = fn_names.contains(&name);
        let mut candidate = match (naming.verbosity, is_fn) {
            (Verbosity::Short, false) => {
                let c = vocab.shorts[var_i % vocab.shorts.len()].to_string();
                var_i += 1;
                c
            }
            (_, true) => {
                let words = vocab.fns[fn_i % vocab.fns.len()];
                fn_i += 1;
                apply_case(words, naming.case_style)
            }
            (Verbosity::Medium, false) | (Verbosity::Long, false) => {
                let words = vocab.vars[var_i % vocab.vars.len()];
                var_i += 1;
                apply_case(words, naming.case_style)
            }
        };
        while used.iter().any(|u| u == &candidate) || is_reserved_name(&candidate) {
            candidate.push(match naming.verbosity {
                Verbosity::Short => '2',
                _ => 'X',
            });
        }
        used.push(candidate.clone());
        mapping.insert(name, candidate);
    }
    rename_idents(unit, &mapping);
}

fn is_reserved_name(name: &str) -> bool {
    matches!(
        name,
        "int"
            | "long"
            | "char"
            | "bool"
            | "float"
            | "double"
            | "void"
            | "auto"
            | "const"
            | "if"
            | "else"
            | "for"
            | "while"
            | "do"
            | "return"
            | "break"
            | "continue"
            | "true"
            | "false"
            | "string"
            | "vector"
            | "pair"
            | "map"
            | "set"
            | "cin"
            | "cout"
            | "endl"
            | "std"
            | "main"
            | "max"
            | "min"
            | "abs"
            | "sort"
            | "swap"
            | "printf"
            | "scanf"
            | "ll"
            | "case"
            | "switch"
            | "default"
            | "struct"
            | "typedef"
            | "using"
            | "namespace"
            | "unsigned"
            | "signed"
            | "short"
            | "sizeof"
            | "static_cast"
            | "cerr"
            | "getline"
            | "to_string"
            | "puts"
            | "sqrt"
            | "pow"
            | "floor"
            | "ceil"
    )
}

// ---------------------------------------------------------------------------
// Micro-style rewrites
// ---------------------------------------------------------------------------

fn flip_casts(unit: &mut TranslationUnit, to_static: bool) {
    for_each_expr_mut(unit, &mut |e| match e {
        Expr::Cast { ty, expr } if to_static => {
            let inner = std::mem::replace(expr, Box::new(Expr::Int(0)));
            let inner = match *inner {
                Expr::Paren(p) => p,
                other => Box::new(other),
            };
            *e = Expr::StaticCast {
                ty: ty.clone(),
                expr: inner,
            };
        }
        Expr::StaticCast { ty, expr } if !to_static => {
            let inner = std::mem::replace(expr, Box::new(Expr::Int(0)));
            let wrapped = match *inner {
                p @ (Expr::Int(_)
                | Expr::Float(_)
                | Expr::Ident(_)
                | Expr::Paren(_)
                | Expr::Call { .. }
                | Expr::Member { .. }
                | Expr::Index { .. }) => Box::new(p),
                other => Box::new(Expr::Paren(Box::new(other))),
            };
            *e = Expr::Cast {
                ty: ty.clone(),
                expr: wrapped,
            };
        }
        _ => {}
    });
}

fn set_incdec(unit: &mut TranslationUnit, post: bool) {
    let fix = |e: &mut Expr| {
        if let Expr::Unary { op, .. } = e {
            *op = match (*op, post) {
                (UnaryOp::PreInc | UnaryOp::PostInc, true) => UnaryOp::PostInc,
                (UnaryOp::PreInc | UnaryOp::PostInc, false) => UnaryOp::PreInc,
                (UnaryOp::PreDec | UnaryOp::PostDec, true) => UnaryOp::PostDec,
                (UnaryOp::PreDec | UnaryOp::PostDec, false) => UnaryOp::PreDec,
                (other, _) => other,
            };
        }
    };
    for_each_block_mut(unit, &mut |block| {
        for stmt in &mut block.stmts {
            match stmt {
                // Only value-unused positions are semantics-preserving.
                Stmt::Expr(e) => fix(e),
                Stmt::For { step: Some(s), .. } => fix(s),
                _ => {}
            }
        }
    });
}

fn set_compound(unit: &mut TranslationUnit, compound: bool) {
    for_each_block_mut(unit, &mut |block| {
        for stmt in &mut block.stmts {
            let (Stmt::Expr(e) | Stmt::For { step: Some(e), .. }) = stmt else {
                continue;
            };
            if compound {
                // x = x op v  =>  x op= v
                let Expr::Assign {
                    op: AssignOp::Assign,
                    lhs,
                    rhs,
                } = e
                else {
                    continue;
                };
                let Expr::Ident(x) = lhs.as_ref() else {
                    continue;
                };
                let Expr::Binary {
                    op,
                    lhs: bl,
                    rhs: br,
                } = rhs.as_ref()
                else {
                    continue;
                };
                let Expr::Ident(bx) = bl.as_ref() else {
                    continue;
                };
                if bx != x {
                    continue;
                }
                let aop = match op {
                    BinaryOp::Add => AssignOp::Add,
                    BinaryOp::Sub => AssignOp::Sub,
                    BinaryOp::Mul => AssignOp::Mul,
                    BinaryOp::Div => AssignOp::Div,
                    BinaryOp::Mod => AssignOp::Mod,
                    _ => continue,
                };
                *e = Expr::assign(aop, Expr::Ident(x.clone()), (**br).clone());
            } else {
                // x op= v  =>  x = x op v
                let Expr::Assign { op, lhs, rhs } = e else {
                    continue;
                };
                let bop = match op {
                    AssignOp::Add => BinaryOp::Add,
                    AssignOp::Sub => BinaryOp::Sub,
                    AssignOp::Mul => BinaryOp::Mul,
                    AssignOp::Div => BinaryOp::Div,
                    AssignOp::Mod => BinaryOp::Mod,
                    AssignOp::Assign => continue,
                };
                let Expr::Ident(x) = lhs.as_ref() else {
                    continue;
                };
                let rhs_needs_paren = matches!(
                    rhs.as_ref(),
                    Expr::Binary { .. } | Expr::Ternary { .. } | Expr::Assign { .. }
                );
                let r = if rhs_needs_paren {
                    Expr::Paren(rhs.clone())
                } else {
                    (**rhs).clone()
                };
                *e = Expr::assign(
                    AssignOp::Assign,
                    Expr::Ident(x.clone()),
                    Expr::bin(bop, Expr::Ident(x.clone()), r),
                );
            }
        }
    });
}

/// Whether `block` contains a `continue` that would bind to the loop
/// directly enclosing it (descends into `if`/bare blocks but not into
/// nested loops, whose `continue`s bind to themselves).
fn has_direct_continue(block: &Block) -> bool {
    block.stmts.iter().any(|stmt| match stmt {
        Stmt::Continue => true,
        Stmt::If {
            then_branch,
            else_branch,
            ..
        } => {
            has_direct_continue(then_branch)
                || else_branch.as_ref().is_some_and(has_direct_continue)
        }
        Stmt::Block(b) => has_direct_continue(b),
        _ => false,
    })
}

fn convert_loops(unit: &mut TranslationUnit, to_while: bool, rng: &mut Pcg64) {
    for_each_block_mut(unit, &mut |block| {
        for stmt in &mut block.stmts {
            if to_while {
                let Stmt::For {
                    init,
                    cond: Some(_),
                    step,
                    body,
                    ..
                } = stmt
                else {
                    continue;
                };
                // `continue` in a `for` body still runs the step;
                // after the rewrite it would jump past the appended
                // step statement. Such loops must keep their form.
                if has_direct_continue(body) {
                    continue;
                }
                if init.is_none() || step.is_none() || !rng.next_bool(0.7) {
                    continue;
                }
                let Stmt::For {
                    init,
                    cond,
                    step,
                    body,
                } = std::mem::replace(stmt, Stmt::Empty)
                else {
                    unreachable!();
                };
                let mut inner = body.stmts;
                inner.push(Stmt::Expr(step.expect("checked above")));
                // The init declaration is scoped with a wrapping block
                // so sibling loops reusing the name stay valid.
                *stmt = Stmt::Block(Block::new(vec![
                    *init.expect("checked above"),
                    Stmt::While {
                        cond: cond.expect("for cond present"),
                        body: Block::new(inner),
                    },
                ]));
            } else {
                // while { ...; i++ }  =>  for (; cond; i++) { ... }
                let Stmt::While { body, .. } = stmt else {
                    continue;
                };
                let is_step = matches!(
                    body.stmts.last(),
                    Some(Stmt::Expr(Expr::Unary {
                        op: UnaryOp::PreInc | UnaryOp::PostInc | UnaryOp::PreDec | UnaryOp::PostDec,
                        ..
                    }))
                );
                if !is_step || !rng.next_bool(0.7) {
                    continue;
                }
                let Stmt::While { cond, mut body } = std::mem::replace(stmt, Stmt::Empty) else {
                    unreachable!();
                };
                let Some(Stmt::Expr(step)) = body.stmts.pop() else {
                    unreachable!();
                };
                *stmt = Stmt::For {
                    init: None,
                    cond: Some(cond),
                    step: Some(step),
                    body,
                };
            }
        }
    });
}

/// Converts between `if (c) x = a; else x = b;` and `x = c ? a : b;`
/// (both directions preserve the `if + ternary` branching total).
fn convert_conditionals(unit: &mut TranslationUnit, to_ternary: bool) {
    for_each_block_mut(unit, &mut |block| {
        for stmt in &mut block.stmts {
            if to_ternary {
                let Stmt::If {
                    cond,
                    then_branch,
                    else_branch: Some(else_branch),
                } = stmt
                else {
                    continue;
                };
                let (
                    Some(Stmt::Expr(Expr::Assign {
                        op: op_a,
                        lhs: lhs_a,
                        rhs: rhs_a,
                    })),
                    Some(Stmt::Expr(Expr::Assign {
                        op: op_b,
                        lhs: lhs_b,
                        rhs: rhs_b,
                    })),
                ) = (
                    (then_branch.stmts.len() == 1).then(|| &then_branch.stmts[0]),
                    (else_branch.stmts.len() == 1).then(|| &else_branch.stmts[0]),
                )
                else {
                    continue;
                };
                if op_a != op_b || lhs_a != lhs_b {
                    continue;
                }
                let ternary = Expr::Ternary {
                    cond: Box::new(wrap_ternary_cond(cond.clone())),
                    then_expr: rhs_a.clone(),
                    else_expr: rhs_b.clone(),
                };
                *stmt = Stmt::Expr(Expr::Assign {
                    op: *op_a,
                    lhs: lhs_a.clone(),
                    rhs: Box::new(ternary),
                });
            } else {
                let Stmt::Expr(Expr::Assign { op, lhs, rhs }) = stmt else {
                    continue;
                };
                let Expr::Ternary {
                    cond,
                    then_expr,
                    else_expr,
                } = rhs.as_ref()
                else {
                    continue;
                };
                let mk = |value: &Expr| {
                    Block::new(vec![Stmt::Expr(Expr::Assign {
                        op: *op,
                        lhs: lhs.clone(),
                        rhs: Box::new(value.clone()),
                    })])
                };
                *stmt = Stmt::If {
                    cond: cond.unparenthesized().clone(),
                    then_branch: mk(then_expr),
                    else_branch: Some(mk(else_expr)),
                };
            }
        }
    });
}

/// A ternary condition binds looser than comparison; parenthesize
/// anything that is not already tight enough.
fn wrap_ternary_cond(cond: Expr) -> Expr {
    match &cond {
        Expr::Assign { .. } | Expr::Ternary { .. } => Expr::Paren(Box::new(cond)),
        _ => cond,
    }
}

/// Merges consecutive single-declarator declarations of the same type
/// (`int a; int b;` → `int a, b;`) or splits multi-declarator ones,
/// per the target's habit.
fn restyle_declarations(unit: &mut TranslationUnit, merge: bool) {
    for_each_block_mut(unit, &mut |block| {
        if merge {
            let mut out: Vec<Stmt> = Vec::with_capacity(block.stmts.len());
            for stmt in block.stmts.drain(..) {
                if let (Stmt::Decl(d), Some(Stmt::Decl(prev))) = (&stmt, out.last_mut()) {
                    if prev.ty == d.ty {
                        prev.declarators.extend(d.declarators.iter().cloned());
                        continue;
                    }
                }
                out.push(stmt);
            }
            block.stmts = out;
        } else {
            let mut out: Vec<Stmt> = Vec::with_capacity(block.stmts.len());
            for stmt in block.stmts.drain(..) {
                if let Stmt::Decl(d) = &stmt {
                    if d.declarators.len() > 1 {
                        for dd in &d.declarators {
                            out.push(Stmt::Decl(Declaration {
                                ty: d.ty.clone(),
                                declarators: vec![dd.clone()],
                            }));
                        }
                        continue;
                    }
                }
                out.push(stmt);
            }
            block.stmts = out;
        }
    });
}

/// Lowers read-only range-`for` loops over a named container into
/// indexed `for` loops (`for (char c : s)` → `for (int i = 0; ...)`),
/// one of the structural rewrites real LLM restyling performs.
/// By-reference loops are left alone (the loop variable would lose its
/// aliasing).
fn lower_foreach(unit: &mut TranslationUnit, rng: &mut Pcg64) {
    let taken = declared_names(unit);
    let mut counter = 0usize;
    for_each_block_mut(unit, &mut |block| {
        for stmt in &mut block.stmts {
            let Stmt::ForEach {
                by_ref: false,
                iterable: Expr::Ident(_),
                ..
            } = stmt
            else {
                continue;
            };
            if !rng.next_bool(0.8) {
                continue;
            }
            let Stmt::ForEach {
                ty,
                name,
                iterable: Expr::Ident(container),
                body,
                ..
            } = std::mem::replace(stmt, Stmt::Empty)
            else {
                unreachable!();
            };
            // A fresh index name that collides with nothing.
            let mut idx = "i".to_string();
            while taken.contains(&idx) || idx == name {
                counter += 1;
                idx = format!("i{counter}");
            }
            let elem_ty = match ty {
                Type::Auto => Type::Int,
                other => other,
            };
            let mut inner = vec![Stmt::Decl(Declaration {
                ty: elem_ty,
                declarators: vec![Declarator::init(
                    name,
                    Expr::index(Expr::ident(container.clone()), Expr::ident(idx.clone())),
                )],
            })];
            inner.extend(body.stmts);
            let bound = Expr::Cast {
                ty: Type::Int,
                expr: Box::new(Expr::method(Expr::ident(container), "size", vec![])),
            };
            *stmt = Stmt::For {
                init: Some(Box::new(Stmt::Decl(Declaration {
                    ty: Type::Int,
                    declarators: vec![Declarator::init(idx.clone(), Expr::Int(0))],
                }))),
                cond: Some(Expr::bin(BinaryOp::Lt, Expr::ident(idx.clone()), bound)),
                step: Some(Expr::Unary {
                    op: UnaryOp::PostInc,
                    expr: Box::new(Expr::ident(idx)),
                }),
                body: Block::new(inner),
            };
        }
    });
}

fn swap_endl(unit: &mut TranslationUnit, want_endl: bool) {
    for_each_expr_mut(unit, &mut |e| {
        if let Expr::Binary {
            op: BinaryOp::Shl,
            rhs,
            ..
        } = e
        {
            match rhs.as_ref() {
                Expr::Ident(name) if name == "endl" && !want_endl => {
                    **rhs = Expr::Str("\n".into());
                }
                Expr::Str(s) if s == "\n" && want_endl => {
                    **rhs = Expr::ident("endl");
                }
                _ => {}
            }
        }
    });
}

fn restyle_comments(unit: &mut TranslationUnit, target: &AuthorStyle, rng: &mut Pcg64) {
    let keep = target.comments.density > 0.2;
    let block_style = target.comments.block;
    // Items.
    unit.items.retain(|item| {
        if matches!(item, Item::Comment(_)) {
            keep && rng.next_bool(0.8)
        } else {
            true
        }
    });
    for item in &mut unit.items {
        if let Item::Comment(c) = item {
            c.block = block_style;
        }
    }
    let mut coin = rng.fork(&["comments"]);
    for_each_block_mut(unit, &mut |b| {
        b.stmts.retain(|s| {
            if matches!(s, Stmt::Comment(_)) {
                keep && coin.next_bool(0.8)
            } else {
                true
            }
        });
        for s in &mut b.stmts {
            if let Stmt::Comment(c) = s {
                c.block = block_style;
            }
        }
    });
    // LLM house behaviour: transformed code usually gains a short
    // explanatory comment at the top of `main`, *regardless* of the
    // target style — ChatGPT comments habitually. This is the one
    // trait the simulator applies across every latent style; it keeps
    // transformed code separable from the human author whose style it
    // imitates (the paper's Table IX `T` column) and detectable across
    // years (Table X combined).
    if rng.next_bool(0.85) {
        let text = *rng
            .choose(&[
                "Process each test case",
                "Read the input and solve the case",
                "Iterate over all test cases",
            ])
            .expect("non-empty");
        if let Some(main) = unit.items.iter_mut().find_map(|i| match i {
            Item::Function(f) if f.name == "main" => Some(f),
            _ => None,
        }) {
            if !matches!(main.body.stmts.first(), Some(Stmt::Comment(_))) {
                main.body.stmts.insert(
                    0,
                    Stmt::Comment(Comment {
                        text: text.into(),
                        block: block_style,
                    }),
                );
            }
        }
    }
}

// ---------------------------------------------------------------------------
// IO idiom conversion
// ---------------------------------------------------------------------------

/// Collects the operands of a left-nested `<<`/`>>` chain rooted at
/// `root_name`, in source order. Returns `None` when the expression is
/// not such a chain.
fn chain_operands(e: &Expr, op: BinaryOp, root_name: &str) -> Option<Vec<Expr>> {
    match e {
        Expr::Binary {
            op: actual,
            lhs,
            rhs,
        } if *actual == op => {
            let mut left = chain_operands(lhs, op, root_name)?;
            left.push((**rhs).clone());
            Some(left)
        }
        Expr::Ident(name) if name == root_name => Some(Vec::new()),
        _ => None,
    }
}

fn rebuild_chain(root: &str, op: BinaryOp, operands: Vec<Expr>) -> Expr {
    let mut e = Expr::ident(root);
    for operand in operands {
        e = Expr::bin(op, e, operand);
    }
    e
}

fn spec_for(ty: Ty) -> &'static str {
    match ty {
        Ty::Int => "%d",
        Ty::Long => "%lld",
        Ty::Double => "%.6lf",
        Ty::Str => "%s",
        Ty::Char => "%c",
    }
}

fn stream_to_stdio(unit: &mut TranslationUnit, env: &TypeEnv) {
    for_each_block_mut(unit, &mut |block| {
        for stmt in &mut block.stmts {
            let Stmt::Expr(e) = stmt else { continue };
            // cin >> a >> b  =>  scanf("%d %d", &a, &b)
            if let Some(ops) = chain_operands(e, BinaryOp::Shr, "cin") {
                if !ops.is_empty() {
                    let tys: Option<Vec<Ty>> = ops.iter().map(|o| env.infer(o)).collect();
                    if let Some(tys) = tys {
                        if tys.iter().all(|t| !matches!(t, Ty::Str)) {
                            let fmt: Vec<&str> = tys.iter().map(|&t| scan_spec_for(t)).collect();
                            let mut args = vec![Expr::Str(fmt.join(" "))];
                            args.extend(ops.into_iter().map(|o| Expr::Unary {
                                op: UnaryOp::AddrOf,
                                expr: Box::new(o),
                            }));
                            *e = Expr::call("scanf", args);
                            continue;
                        }
                    }
                }
            }
            // cout << ... => printf(...)
            if let Some(ops) = chain_operands(e, BinaryOp::Shl, "cout") {
                if ops.is_empty() {
                    continue;
                }
                let mut fmt = String::new();
                let mut args = Vec::new();
                let mut ok = true;
                for op in ops {
                    match &op {
                        Expr::Str(s) => fmt.push_str(&s.replace('%', "%%")),
                        Expr::Ident(name) if name == "endl" => fmt.push('\n'),
                        other => match env.infer(other) {
                            Some(Ty::Str) => {
                                fmt.push_str("%s");
                                args.push(Expr::method(op.clone(), "c_str", vec![]));
                            }
                            Some(t) => {
                                fmt.push_str(spec_for(t));
                                args.push(op.clone());
                            }
                            None => {
                                ok = false;
                                break;
                            }
                        },
                    }
                }
                if ok {
                    let mut call_args = vec![Expr::Str(fmt)];
                    call_args.extend(args);
                    *e = Expr::call("printf", call_args);
                }
            }
        }
    });
}

fn scan_spec_for(ty: Ty) -> &'static str {
    match ty {
        Ty::Int => "%d",
        Ty::Long => "%lld",
        Ty::Double => "%lf",
        Ty::Str => "%s",
        Ty::Char => " %c",
    }
}

fn stdio_to_stream(unit: &mut TranslationUnit, want_endl: bool) {
    for_each_block_mut(unit, &mut |block| {
        for stmt in &mut block.stmts {
            let Stmt::Expr(e) = stmt else { continue };
            let Expr::Call { callee, args } = e else {
                continue;
            };
            let Expr::Ident(name) = callee.unparenthesized() else {
                continue;
            };
            if name == "scanf" && args.len() >= 2 {
                let operands: Vec<Expr> = args[1..]
                    .iter()
                    .map(|a| match a {
                        Expr::Unary {
                            op: UnaryOp::AddrOf,
                            expr,
                        } => (**expr).clone(),
                        other => other.clone(),
                    })
                    .collect();
                *e = rebuild_chain("cin", BinaryOp::Shr, operands);
            } else if name == "printf" && !args.is_empty() {
                let Expr::Str(fmt) = &args[0] else { continue };
                let Some(operands) = printf_to_operands(fmt, &args[1..], want_endl) else {
                    continue;
                };
                *e = rebuild_chain("cout", BinaryOp::Shl, operands);
            }
        }
    });
}

/// Splits a printf format string into cout operands, consuming `args`
/// for each `%` spec. Returns `None` for unsupported formats.
fn printf_to_operands(fmt: &str, args: &[Expr], want_endl: bool) -> Option<Vec<Expr>> {
    let mut operands = Vec::new();
    let mut text = String::new();
    let mut arg_iter = args.iter();
    let bytes: Vec<char> = fmt.chars().collect();
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] == '%' {
            if i + 1 < bytes.len() && bytes[i + 1] == '%' {
                text.push('%');
                i += 2;
                continue;
            }
            // Consume the spec: flags/width/precision then a letter.
            let mut j = i + 1;
            while j < bytes.len() && !bytes[j].is_ascii_alphabetic() {
                j += 1;
            }
            // Length modifiers (l, ll) then the conversion letter.
            while j < bytes.len() && bytes[j] == 'l' {
                j += 1;
            }
            if j >= bytes.len() {
                return None;
            }
            let conv = bytes[j];
            if !matches!(conv, 'd' | 'f' | 's' | 'c' | 'u') {
                return None;
            }
            if !text.is_empty() {
                operands.push(Expr::Str(std::mem::take(&mut text)));
            }
            let arg = arg_iter.next()?.clone();
            // `x.c_str()` goes back to plain `x` for cout.
            let arg = match &arg {
                Expr::Call { callee, args } if args.is_empty() => match callee.as_ref() {
                    Expr::Member { base, member, .. } if member == "c_str" => (**base).clone(),
                    _ => arg.clone(),
                },
                _ => arg,
            };
            operands.push(arg);
            i = j + 1;
        } else {
            text.push(bytes[i]);
            i += 1;
        }
    }
    if !text.is_empty() {
        if text.ends_with('\n') && want_endl {
            text.pop();
            if !text.is_empty() {
                operands.push(Expr::Str(text));
            }
            operands.push(Expr::ident("endl"));
        } else {
            operands.push(Expr::Str(text));
        }
    }
    Some(operands)
}

// ---------------------------------------------------------------------------
// Helper extraction (the paper's Figure 4a)
// ---------------------------------------------------------------------------

fn is_case_print(stmt: &Stmt) -> bool {
    let Stmt::Expr(e) = stmt else { return false };
    if let Expr::Call { callee, args } = e {
        if let Expr::Ident(name) = callee.unparenthesized() {
            if name == "printf" {
                if let Some(Expr::Str(fmt)) = args.first() {
                    return fmt.starts_with("Case #");
                }
            }
        }
    }
    if let Some(ops) = chain_operands(e, BinaryOp::Shl, "cout") {
        return matches!(ops.first(), Some(Expr::Str(s)) if s == "Case #");
    }
    false
}

/// Pulls the per-case body out of `main`'s case loop into a standalone
/// function named in the target's convention — the transformation shown
/// in the paper's Figure 4a.
fn extract_case_helper(
    unit: &mut TranslationUnit,
    target: &AuthorStyle,
    env: &TypeEnv,
    rng: &mut Pcg64,
) {
    // Only when `main` is the single function (otherwise a helper
    // already exists).
    if unit.functions().count() != 1 {
        return;
    }
    let fname = fresh_helper_name(unit, target.naming, rng);

    // Locate the case loop inside main and split its body.
    let mut extracted: Option<(Vec<Stmt>, Expr, Type)> = None;
    if let Some(Item::Function(main)) = unit
        .items
        .iter_mut()
        .find(|i| matches!(i, Item::Function(f) if f.name == "main"))
    {
        for stmt in &mut main.body.stmts {
            let body = match stmt {
                Stmt::For { body, .. } | Stmt::While { body, .. } => body,
                _ => continue,
            };
            let Some(print_pos) = body.stmts.iter().position(is_case_print) else {
                continue;
            };
            if print_pos == 0 {
                continue; // nothing to extract
            }
            let work: Vec<Stmt> = body.stmts.drain(..print_pos).collect();
            // Pull the result value out of the print statement and
            // substitute the helper call.
            let call = Expr::call(fname.clone(), vec![]);
            let Some(Stmt::Expr(print_expr)) = body.stmts.get_mut(0) else {
                body.stmts.splice(0..0, work);
                return;
            };
            let Some(value) = replace_print_value(print_expr, call) else {
                body.stmts.splice(0..0, work);
                return;
            };
            let ret_ty = match env.infer(&value) {
                Some(Ty::Double) => Type::Double,
                Some(Ty::Long) => Type::LongLong,
                Some(Ty::Str) => Type::Str,
                _ => Type::Int,
            };
            extracted = Some((work, value, ret_ty));
            break;
        }
    }
    let Some((mut work, value, ret_ty)) = extracted else {
        return;
    };
    work.push(Stmt::Return(Some(value)));
    let main_pos = unit
        .items
        .iter()
        .position(|i| matches!(i, Item::Function(f) if f.name == "main"))
        .expect("main exists");
    unit.items.insert(
        main_pos,
        Item::Function(Function {
            ret: ret_ty,
            name: fname,
            params: vec![],
            body: Block::new(work),
        }),
    );
}

fn fresh_helper_name(unit: &TranslationUnit, naming: NamingStyle, rng: &mut Pcg64) -> String {
    let existing = declared_names(unit);
    let mut name = match naming.verbosity {
        Verbosity::Short => "go".to_string(),
        _ => {
            let words = *rng.choose(FN_WORDS).expect("fn pool");
            apply_case(words, naming.case_style)
        }
    };
    while existing.contains(&name) || is_reserved_name(&name) {
        name.push('X');
    }
    name
}

/// In a case-print statement, swaps the printed result value for
/// `replacement`, returning the original value expression.
fn replace_print_value(e: &mut Expr, replacement: Expr) -> Option<Expr> {
    // printf("Case #...", case, value)
    if let Expr::Call { callee, args } = e {
        if matches!(callee.unparenthesized(), Expr::Ident(n) if n == "printf") && args.len() >= 3 {
            let old = args[2].clone();
            args[2] = replacement;
            return Some(old);
        }
        return None;
    }
    // cout << "Case #" << case << ": " << value << nl
    let ops = chain_operands(e, BinaryOp::Shl, "cout")?;
    let sep = ops
        .iter()
        .position(|o| matches!(o, Expr::Str(s) if s == ": "))?;
    let value_idx = sep + 1;
    if value_idx >= ops.len() {
        return None;
    }
    let mut new_ops = ops.clone();
    let old = std::mem::replace(&mut new_ops[value_idx], replacement);
    *e = rebuild_chain("cout", BinaryOp::Shl, new_ops);
    Some(old)
}

// ---------------------------------------------------------------------------
// Mutable expression walker (statement-level entry points)
// ---------------------------------------------------------------------------

fn for_each_expr_mut(unit: &mut TranslationUnit, f: &mut impl FnMut(&mut Expr)) {
    for item in &mut unit.items {
        match item {
            Item::GlobalVar(d) => decl_exprs(d, f),
            Item::Function(func) => block_exprs(&mut func.body, f),
            _ => {}
        }
    }
}

fn decl_exprs(d: &mut Declaration, f: &mut impl FnMut(&mut Expr)) {
    for dd in &mut d.declarators {
        if let Some(a) = &mut dd.array {
            expr_mut(a, f);
        }
        match &mut dd.init {
            Some(Initializer::Assign(e)) => expr_mut(e, f),
            Some(Initializer::Ctor(args)) => {
                for a in args {
                    expr_mut(a, f);
                }
            }
            None => {}
        }
    }
}

fn block_exprs(b: &mut Block, f: &mut impl FnMut(&mut Expr)) {
    for stmt in &mut b.stmts {
        stmt_exprs(stmt, f);
    }
}

fn stmt_exprs(s: &mut Stmt, f: &mut impl FnMut(&mut Expr)) {
    match s {
        Stmt::Decl(d) => decl_exprs(d, f),
        Stmt::Expr(e) => expr_mut(e, f),
        Stmt::If {
            cond,
            then_branch,
            else_branch,
        } => {
            expr_mut(cond, f);
            block_exprs(then_branch, f);
            if let Some(e) = else_branch {
                block_exprs(e, f);
            }
        }
        Stmt::For {
            init,
            cond,
            step,
            body,
        } => {
            if let Some(i) = init {
                stmt_exprs(i, f);
            }
            if let Some(c) = cond {
                expr_mut(c, f);
            }
            if let Some(st) = step {
                expr_mut(st, f);
            }
            block_exprs(body, f);
        }
        Stmt::ForEach { iterable, body, .. } => {
            expr_mut(iterable, f);
            block_exprs(body, f);
        }
        Stmt::While { cond, body } => {
            expr_mut(cond, f);
            block_exprs(body, f);
        }
        Stmt::DoWhile { body, cond } => {
            block_exprs(body, f);
            expr_mut(cond, f);
        }
        Stmt::Return(Some(e)) => expr_mut(e, f),
        Stmt::Block(b) => block_exprs(b, f),
        _ => {}
    }
}

fn expr_mut(e: &mut Expr, f: &mut impl FnMut(&mut Expr)) {
    // Children first so rewrites see already-rewritten subtrees.
    match e {
        Expr::Unary { expr, .. } => expr_mut(expr, f),
        Expr::Binary { lhs, rhs, .. } | Expr::Assign { lhs, rhs, .. } => {
            expr_mut(lhs, f);
            expr_mut(rhs, f);
        }
        Expr::Ternary {
            cond,
            then_expr,
            else_expr,
        } => {
            expr_mut(cond, f);
            expr_mut(then_expr, f);
            expr_mut(else_expr, f);
        }
        Expr::Call { callee, args } => {
            expr_mut(callee, f);
            for a in args {
                expr_mut(a, f);
            }
        }
        Expr::Member { base, .. } => expr_mut(base, f),
        Expr::Index { base, index } => {
            expr_mut(base, f);
            expr_mut(index, f);
        }
        Expr::Cast { expr, .. } | Expr::StaticCast { expr, .. } | Expr::Paren(expr) => {
            expr_mut(expr, f)
        }
        Expr::InitList(elems) => {
            for el in elems {
                expr_mut(el, f);
            }
        }
        _ => {}
    }
    f(e);
}

#[cfg(test)]
mod tests {
    use super::*;
    use synthattr_gen::challenges::ChallengeId;
    use synthattr_gen::corpus::solution_in_style;
    use synthattr_gen::naming::Case;

    fn sample_source(seed: u64) -> String {
        let mut rng = Pcg64::new(seed);
        let style = AuthorStyle::sample(&mut rng);
        solution_in_style(ChallengeId::HorseRace, &style, seed, &["src"])
    }

    #[test]
    fn transform_outputs_reparse_for_many_inputs() {
        let pool = YearPool::calibrated(2018, 3);
        let gpt = Transformer::new(&pool);
        for seed in 0..20 {
            let src = sample_source(seed);
            let mut rng = Pcg64::new(1000 + seed);
            let idx = pool.sample_index(&mut rng);
            let out = gpt.transform(&src, idx, &mut rng).unwrap();
            parse(&out).unwrap_or_else(|e| panic!("seed {seed}: {e}\n{out}"));
        }
    }

    #[test]
    fn transform_changes_the_text() {
        let pool = YearPool::calibrated(2018, 3);
        let gpt = Transformer::new(&pool);
        let src = sample_source(1);
        let mut rng = Pcg64::new(5);
        let out = gpt.transform(&src, 0, &mut rng).unwrap();
        assert_ne!(src, out);
    }

    #[test]
    fn transform_is_deterministic() {
        let pool = YearPool::calibrated(2019, 3);
        let gpt = Transformer::new(&pool);
        let src = sample_source(2);
        let a = gpt.transform(&src, 1, &mut Pcg64::new(9)).unwrap();
        let b = gpt.transform(&src, 1, &mut Pcg64::new(9)).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn preserves_io_protocol_skeleton() {
        // Whatever the transformation does, the program must still
        // print the GCJ "Case #" banner.
        let pool = YearPool::calibrated(2017, 3);
        let gpt = Transformer::new(&pool);
        for seed in 0..10 {
            let src = sample_source(seed);
            let mut rng = Pcg64::new(30 + seed);
            let idx = pool.sample_index(&mut rng);
            let out = gpt.transform(&src, idx, &mut rng).unwrap();
            assert!(out.contains("Case #"), "seed {seed}:\n{out}");
        }
    }

    #[test]
    fn set_compound_contracts_and_expands() {
        let mut unit = parse("int main() { int x = 0; x = x + 2; return x; }").unwrap();
        set_compound(&mut unit, true);
        let text = render(&unit, &RenderStyle::default());
        assert!(text.contains("x += 2"), "{text}");
        set_compound(&mut unit, false);
        let text = render(&unit, &RenderStyle::default());
        assert!(text.contains("x = x + 2"), "{text}");
        parse(&text).unwrap();
    }

    #[test]
    fn set_compound_parenthesizes_expanded_rhs() {
        let mut unit = parse("int main() { int x = 9; x /= 1 + 2; return x; }").unwrap();
        set_compound(&mut unit, false);
        let text = render(&unit, &RenderStyle::default());
        assert!(text.contains("x = x / (1 + 2)"), "{text}");
    }

    #[test]
    fn set_incdec_flips_statement_positions_only() {
        let mut unit =
            parse("int main() { int i = 0; int y = ++i; for (; i < 3; ++i) { i++; } return y; }")
                .unwrap();
        set_incdec(&mut unit, true);
        let text = render(&unit, &RenderStyle::default());
        // The value-used ++i in the initializer must NOT flip.
        assert!(text.contains("int y = ++i"), "{text}");
        assert!(text.contains("i < 3; i++"), "{text}");
    }

    #[test]
    fn flip_casts_roundtrip() {
        let mut unit =
            parse("int main() { int x = 3; double d = (double)(x + 1) / (double)x; return 0; }")
                .unwrap();
        flip_casts(&mut unit, true);
        let text = render(&unit, &RenderStyle::default());
        assert!(text.contains("static_cast<double>(x + 1)"), "{text}");
        assert!(!text.contains("(double)("), "{text}");
        flip_casts(&mut unit, false);
        let text = render(&unit, &RenderStyle::default());
        assert!(text.contains("(double)(x + 1)"), "{text}");
        parse(&text).unwrap();
    }

    #[test]
    fn stream_to_stdio_converts_reads_and_writes() {
        let src = r#"
#include <iostream>
using namespace std;
int main() {
    int n;
    cin >> n;
    double t = 1.5;
    cout << "Case #" << 1 << ": " << t << endl;
    return 0;
}
"#;
        let mut unit = parse(src).unwrap();
        let env = TypeEnv::of(&unit);
        stream_to_stdio(&mut unit, &env);
        let text = render(&unit, &RenderStyle::default());
        assert!(text.contains("scanf(\"%d\", &n)"), "{text}");
        assert!(
            text.contains("printf(\"Case #%d: %.6lf\\n\", 1, t)"),
            "{text}"
        );
        parse(&text).unwrap();
    }

    #[test]
    fn stream_to_stdio_leaves_string_reads_alone() {
        let src = "#include <iostream>\nusing namespace std;\nint main() { string s; cin >> s; cout << s; return 0; }";
        let mut unit = parse(src).unwrap();
        let env = TypeEnv::of(&unit);
        stream_to_stdio(&mut unit, &env);
        let text = render(&unit, &RenderStyle::default());
        assert!(text.contains("cin >> s"), "{text}");
        // Output of a string CAN convert (via c_str).
        assert!(text.contains("printf(\"%s\", s.c_str())"), "{text}");
    }

    #[test]
    fn stdio_to_stream_converts_back() {
        let src = r#"
#include <cstdio>
int main() {
    int n;
    scanf("%d", &n);
    printf("Case #%d: %d\n", 1, n);
    return 0;
}
"#;
        let mut unit = parse(src).unwrap();
        stdio_to_stream(&mut unit, true);
        let text = render(&unit, &RenderStyle::default());
        assert!(text.contains("cin >> n"), "{text}");
        assert!(
            text.contains("cout << \"Case #\" << 1 << \": \" << n << endl"),
            "{text}"
        );
        parse(&text).unwrap();
    }

    #[test]
    fn io_roundtrip_preserves_protocol() {
        let src = r#"
#include <iostream>
using namespace std;
int main() {
    int a, b;
    cin >> a >> b;
    cout << "Case #" << 1 << ": " << a + b << "\n";
    return 0;
}
"#;
        let mut unit = parse(src).unwrap();
        let env = TypeEnv::of(&unit);
        stream_to_stdio(&mut unit, &env);
        stdio_to_stream(&mut unit, false);
        let text = render(&unit, &RenderStyle::default());
        assert!(text.contains("cin >> a >> b"), "{text}");
        assert!(text.contains("\"Case #\""), "{text}");
        parse(&text).unwrap();
    }

    #[test]
    fn swap_endl_both_directions() {
        let mut unit =
            parse("int main() { cout << 1 << endl; cout << 2 << \"\\n\"; return 0; }").unwrap();
        swap_endl(&mut unit, false);
        let text = render(&unit, &RenderStyle::default());
        assert!(!text.contains("endl"), "{text}");
        swap_endl(&mut unit, true);
        let text = render(&unit, &RenderStyle::default());
        assert_eq!(text.matches("endl").count(), 2, "{text}");
    }

    #[test]
    fn convert_loops_for_to_while_and_back() {
        let mut rng = Pcg64::new(1);
        let mut unit =
            parse("int main() { for (int i = 0; i < 5; i++) { cout << i; } return 0; }").unwrap();
        // Force conversion by retrying until the coin lands (prob 0.7).
        for _ in 0..10 {
            convert_loops(&mut unit, true, &mut rng);
            let text = render(&unit, &RenderStyle::default());
            if text.contains("while") {
                parse(&text).unwrap();
                return;
            }
        }
        panic!("for->while never fired");
    }

    #[test]
    fn extract_case_helper_matches_figure4a() {
        // An inline main in the Figure-3 shape grows a helper function.
        let src = r#"
#include <iostream>
#include <algorithm>
using namespace std;
int main() {
    int nCase;
    cin >> nCase;
    for (int iCase = 1; iCase <= nCase; ++iCase) {
        int d, n;
        double t = 0;
        cin >> d >> n;
        for (int i = 0; i < n; ++i) {
            int x, y;
            cin >> x >> y;
            x = d - x;
            t = max(t, (double)x / (double)y);
        }
        cout << "Case #" << iCase << ": " << (double)d / t << "\n";
    }
    return 0;
}
"#;
        let mut unit = parse(src).unwrap();
        let env = TypeEnv::of(&unit);
        let mut rng = Pcg64::new(2);
        let style = AuthorStyle::sample(&mut rng);
        extract_case_helper(&mut unit, &style, &env, &mut rng);
        assert_eq!(unit.functions().count(), 2, "helper should be extracted");
        let text = render(&unit, &RenderStyle::default());
        let reparsed = parse(&text).unwrap();
        assert_eq!(reparsed.functions().count(), 2);
        // The helper returns double (inferred from the printed value).
        let helper = reparsed
            .functions()
            .find(|f| f.name != "main")
            .expect("helper");
        assert_eq!(helper.ret, Type::Double);
        // Main's loop now only prints.
        assert!(text.contains("Case #"), "{text}");
    }

    #[test]
    fn conditionals_convert_both_ways() {
        let src =
            "int main() { int x = 0; int c = 1; if (c > 0) { x = 1; } else { x = 2; } return x; }";
        let mut unit = parse(src).unwrap();
        convert_conditionals(&mut unit, true);
        let text = render(&unit, &RenderStyle::default());
        assert!(text.contains("x = c > 0 ? 1 : 2"), "{text}");
        assert!(!text.contains("else"), "{text}");
        convert_conditionals(&mut unit, false);
        let text = render(&unit, &RenderStyle::default());
        assert!(text.contains("if (c > 0)"), "{text}");
        assert!(text.contains("else"), "{text}");
        parse(&text).unwrap();
    }

    #[test]
    fn conditionals_require_matching_targets() {
        // Different assignment targets must NOT merge into a ternary.
        let src =
            "int main() { int x = 0, y = 0; if (x < 1) { x = 1; } else { y = 2; } return x + y; }";
        let mut unit = parse(src).unwrap();
        convert_conditionals(&mut unit, true);
        let text = render(&unit, &RenderStyle::default());
        assert!(text.contains("if"), "{text}");
        assert!(!text.contains('?'), "{text}");
    }

    #[test]
    fn declarations_merge_and_split() {
        let src = "int main() { int a = 1; int b = 2; double d = 0.5; return a + b; }";
        let mut unit = parse(src).unwrap();
        restyle_declarations(&mut unit, true);
        let text = render(&unit, &RenderStyle::default());
        assert!(text.contains("int a = 1, b = 2;"), "{text}");
        assert!(text.contains("double d = 0.5;"), "{text}");
        restyle_declarations(&mut unit, false);
        let text = render(&unit, &RenderStyle::default());
        assert!(text.contains("int a = 1;"), "{text}");
        assert!(text.contains("int b = 2;"), "{text}");
        parse(&text).unwrap();
    }

    #[test]
    fn merge_respects_type_boundaries() {
        let src = "int main() { int a; double d; int b; return a; }";
        let mut unit = parse(src).unwrap();
        restyle_declarations(&mut unit, true);
        let text = render(&unit, &RenderStyle::default());
        // a and b are separated by d, so they stay separate.
        assert!(text.contains("int a;"), "{text}");
        assert!(text.contains("int b;"), "{text}");
    }

    #[test]
    fn foreach_lowers_to_indexed_loop() {
        let src = "#include <string>\nusing namespace std;\nint main() { string s; int n = 0; for (char c : s) { if (c == 'a') { n = n + 1; } } return n; }";
        let mut unit = parse(src).unwrap();
        // The conversion fires with probability 0.8 per loop; force it.
        let mut rng = Pcg64::new(1);
        for _ in 0..20 {
            lower_foreach(&mut unit, &mut rng);
            let text = render(&unit, &RenderStyle::default());
            if !text.contains(" : ") {
                assert!(text.contains("(int)s.size()"), "{text}");
                assert!(text.contains("char c = s["), "{text}");
                parse(&text).unwrap();
                return;
            }
        }
        panic!("foreach lowering never fired");
    }

    #[test]
    fn foreach_by_ref_is_left_alone() {
        let src = "#include <vector>\nusing namespace std;\nint main() { vector<int> v; for (auto& x : v) { x = x + 1; } return 0; }";
        let mut unit = parse(src).unwrap();
        let mut rng = Pcg64::new(2);
        for _ in 0..10 {
            lower_foreach(&mut unit, &mut rng);
        }
        let text = render(&unit, &RenderStyle::default());
        assert!(text.contains("auto& x : v"), "{text}");
    }

    #[test]
    fn lowered_index_avoids_collisions() {
        // `i` is taken, so the generated index must be fresh.
        let src = "#include <string>\nusing namespace std;\nint main() { string s; int i = 7; int n = 0; for (char c : s) { n = n + 1; } return n + i; }";
        let mut unit = parse(src).unwrap();
        let mut rng = Pcg64::new(3);
        for _ in 0..20 {
            lower_foreach(&mut unit, &mut rng);
        }
        let text = render(&unit, &RenderStyle::default());
        if !text.contains(" : ") {
            assert!(text.contains("int i1 = 0"), "{text}");
            parse(&text).unwrap();
        }
    }

    #[test]
    fn rename_all_changes_identifiers_consistently() {
        let mut unit = parse(
            "int helper(int aa) { return aa * 2; } int main() { int xx = 3; return helper(xx); }",
        )
        .unwrap();
        let naming = NamingStyle {
            case_style: Case::Snake,
            verbosity: Verbosity::Long,
            flavor: 0,
        };
        let vocab = StyleVocab::for_anchor(4, 2018, 0);
        rename_all(&mut unit, naming, &vocab);
        let text = render(&unit, &RenderStyle::default());
        assert!(!text.contains("aa"), "{text}");
        assert!(!text.contains("xx"), "{text}");
        assert!(text.contains("main"), "{text}");
        parse(&text).unwrap();
    }

    #[test]
    fn detect_render_style_recovers_layout() {
        let tabbed = "int main()\n{\n\tint a = 1;\n\treturn a;\n}\n";
        let d = detect_render_style(tabbed);
        assert_eq!(d.indent, Indent::Tab);
        assert_eq!(d.brace, BraceStyle::NextLine);

        let spaced = "int main() {\n  int a = 1;\n  return a;\n}\n";
        let d = detect_render_style(spaced);
        assert_eq!(d.indent, Indent::Spaces(2));
        assert_eq!(d.brace, BraceStyle::SameLine);
    }

    #[test]
    fn high_fidelity_transform_lands_near_target_layout() {
        let mut pool = YearPool::uniform(2018, 1, 7);
        pool.fidelity = 1.0;
        // Give the single pool style a distinctive layout.
        pool.styles[0].style.render.indent = Indent::Tab;
        pool.styles[0].style.render.brace = BraceStyle::NextLine;
        let gpt = Transformer::new(&pool);
        let src = sample_source(3);
        let out = gpt.transform(&src, 0, &mut Pcg64::new(8)).unwrap();
        let detected = detect_render_style(&out);
        assert_eq!(detected.indent, Indent::Tab, "{out}");
        assert_eq!(detected.brace, BraceStyle::NextLine, "{out}");
    }
}
