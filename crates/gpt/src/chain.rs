//! NCT / CT transformation drivers (the paper's Figure 2).
//!
//! * **Non-chaining (NCT)**: `c_i = GPT(c_0)` for `i in 1..=50` — the
//!   same seed transformed independently 50 times.
//! * **Chaining (CT)**: `c_{i+1} = GPT(c_i)` — a 50-step chain where
//!   each output feeds the next transformation.
//!
//! The simulated model keeps its previous latent style between chain
//! steps with probability `YearPool::ct_stickiness`, which makes CT
//! chains converge onto few styles — exactly the NCT > CT style-count
//! gap of the paper's Table IV.

use crate::error::GptError;
use crate::transform::Transformer;
use synthattr_gen::corpus::Origin;
use synthattr_lang::{parse, TranslationUnit};
use synthattr_util::Pcg64;

/// Which protocol produced a transformed sample.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TransformMode {
    /// Independent transformations of the same seed.
    NonChaining,
    /// Each output feeds the next transformation.
    Chaining,
}

/// One transformed code sample with its provenance.
#[derive(Debug, Clone, PartialEq)]
pub struct TransformedSample {
    /// The transformed source text.
    pub source: String,
    /// 1-based step index within the run.
    pub step: usize,
    /// The protocol used.
    pub mode: TransformMode,
    /// Whether the seed was human- or LLM-written.
    pub seed_origin: Origin,
    /// The latent pool style targeted at this step (ground truth the
    /// oracle model never sees; used for diagnostics).
    pub pool_index: usize,
}

/// One transformed sample together with the parsed AST of its rendered
/// text.
///
/// The single-parse drivers ([`try_run_nct_steps`] /
/// [`try_run_ct_steps`]) hand the AST back to the caller instead of
/// discarding it, so downstream stages (lint, fingerprint, feature
/// extraction) never re-parse text the chain already parsed.
#[derive(Debug, Clone, PartialEq)]
pub struct ChainStep {
    /// The transformed sample (text + provenance).
    pub sample: TransformedSample,
    /// The AST parsed from `sample.source`, exactly once.
    pub unit: TranslationUnit,
}

/// Runs non-chaining transformation: `n` independent transforms of
/// `seed_code`.
///
/// # Errors
///
/// Returns [`GptError::Parse`] if `seed_code` is outside the supported
/// C++ subset.
pub fn try_run_nct(
    transformer: &Transformer<'_>,
    seed_code: &str,
    n: usize,
    seed_origin: Origin,
    rng: &mut Pcg64,
) -> Result<Vec<TransformedSample>, GptError> {
    let pool = transformer.pool();
    #[cfg(debug_assertions)]
    let seed_fp = synthattr_analysis::fingerprint_source(seed_code).map_err(GptError::Parse)?;
    (1..=n)
        .map(|step| {
            let pool_index = pool.sample_index(rng);
            let source = transformer.transform(seed_code, pool_index, rng)?;
            #[cfg(debug_assertions)]
            debug_assert_eq!(
                synthattr_analysis::fingerprint_source(&source).map_err(GptError::Parse)?,
                seed_fp,
                "NCT step {step} drifted from the seed's semantic fingerprint"
            );
            Ok(TransformedSample {
                source,
                step,
                mode: TransformMode::NonChaining,
                seed_origin,
                pool_index,
            })
        })
        .collect()
}

/// Runs non-chaining transformation, panicking on error.
///
/// # Panics
///
/// Panics if `seed_code` is outside the supported C++ subset (seeds
/// are generator-produced, so this indicates a bug, not bad input).
/// Fallible callers should use [`try_run_nct`].
pub fn run_nct(
    transformer: &Transformer<'_>,
    seed_code: &str,
    n: usize,
    seed_origin: Origin,
    rng: &mut Pcg64,
) -> Vec<TransformedSample> {
    try_run_nct(transformer, seed_code, n, seed_origin, rng)
        .unwrap_or_else(|e| panic!("generator-produced seed must transform: {e}"))
}

/// Runs chaining transformation: a chain of `n` steps starting from
/// `seed_code`.
///
/// # Errors
///
/// Returns [`GptError::Parse`] if `seed_code` is outside the supported
/// C++ subset.
pub fn try_run_ct(
    transformer: &Transformer<'_>,
    seed_code: &str,
    n: usize,
    seed_origin: Origin,
    rng: &mut Pcg64,
) -> Result<Vec<TransformedSample>, GptError> {
    let pool = transformer.pool();
    #[cfg(debug_assertions)]
    let seed_fp = synthattr_analysis::fingerprint_source(seed_code).map_err(GptError::Parse)?;
    let mut current = seed_code.to_string();
    let mut style_idx = pool.sample_index(rng);
    let mut out = Vec::with_capacity(n);
    for step in 1..=n {
        if step > 1 && !rng.next_bool(pool.ct_stickiness) {
            style_idx = pool.sample_index(rng);
        }
        let source = transformer.transform(&current, style_idx, rng)?;
        // Fingerprint stability is transitive through the per-step
        // transform gate, but chains are where drift would compound;
        // assert against the *seed*, not just the previous step.
        #[cfg(debug_assertions)]
        debug_assert_eq!(
            synthattr_analysis::fingerprint_source(&source).map_err(GptError::Parse)?,
            seed_fp,
            "CT step {step} drifted from the seed's semantic fingerprint"
        );
        current = source.clone();
        out.push(TransformedSample {
            source,
            step,
            mode: TransformMode::Chaining,
            seed_origin,
            pool_index: style_idx,
        });
    }
    Ok(out)
}

/// Runs chaining transformation, panicking on error.
///
/// # Panics
///
/// Panics if `seed_code` is outside the supported C++ subset.
/// Fallible callers should use [`try_run_ct`].
pub fn run_ct(
    transformer: &Transformer<'_>,
    seed_code: &str,
    n: usize,
    seed_origin: Origin,
    rng: &mut Pcg64,
) -> Vec<TransformedSample> {
    try_run_ct(transformer, seed_code, n, seed_origin, rng)
        .unwrap_or_else(|e| panic!("chain steps stay inside the subset: {e}"))
}

/// Single-parse NCT driver: like [`try_run_nct`] but takes the seed's
/// already-parsed `seed_unit` and returns each step's AST alongside
/// its text. Each rendered output is parsed exactly once; the seed is
/// never re-parsed. RNG consumption and produced samples are
/// byte-identical to [`try_run_nct`].
///
/// # Errors
///
/// Returns [`GptError::Parse`] if a rendered output leaves the subset
/// (a transformer bug, surfaced as a typed error for the fault layer).
pub fn try_run_nct_steps(
    transformer: &Transformer<'_>,
    seed_code: &str,
    seed_unit: &TranslationUnit,
    n: usize,
    seed_origin: Origin,
    rng: &mut Pcg64,
) -> Result<Vec<ChainStep>, GptError> {
    let pool = transformer.pool();
    #[cfg(debug_assertions)]
    let seed_fp = synthattr_analysis::fingerprint(seed_unit);
    (1..=n)
        .map(|step| {
            let pool_index = pool.sample_index(rng);
            let source = transformer.transform_parsed(seed_code, seed_unit, pool_index, rng)?;
            let unit = parse(&source).map_err(GptError::Parse)?;
            #[cfg(debug_assertions)]
            debug_assert_eq!(
                synthattr_analysis::fingerprint(&unit),
                seed_fp,
                "NCT step {step} drifted from the seed's semantic fingerprint"
            );
            Ok(ChainStep {
                sample: TransformedSample {
                    source,
                    step,
                    mode: TransformMode::NonChaining,
                    seed_origin,
                    pool_index,
                },
                unit,
            })
        })
        .collect()
}

/// Single-parse CT driver: like [`try_run_ct`] but takes the seed's
/// already-parsed `seed_unit` and returns each step's AST alongside
/// its text. Step `i+1` transforms step `i`'s AST directly — the chain
/// parses each rendered output once and re-parses nothing. RNG
/// consumption and produced samples are byte-identical to
/// [`try_run_ct`].
///
/// # Errors
///
/// Returns [`GptError::Parse`] if a rendered output leaves the subset.
pub fn try_run_ct_steps(
    transformer: &Transformer<'_>,
    seed_code: &str,
    seed_unit: &TranslationUnit,
    n: usize,
    seed_origin: Origin,
    rng: &mut Pcg64,
) -> Result<Vec<ChainStep>, GptError> {
    let pool = transformer.pool();
    #[cfg(debug_assertions)]
    let seed_fp = synthattr_analysis::fingerprint(seed_unit);
    let mut style_idx = pool.sample_index(rng);
    let mut out: Vec<ChainStep> = Vec::with_capacity(n);
    for step in 1..=n {
        if step > 1 && !rng.next_bool(pool.ct_stickiness) {
            style_idx = pool.sample_index(rng);
        }
        let source = match out.last() {
            Some(prev) => {
                transformer.transform_parsed(&prev.sample.source, &prev.unit, style_idx, rng)?
            }
            None => transformer.transform_parsed(seed_code, seed_unit, style_idx, rng)?,
        };
        let unit = parse(&source).map_err(GptError::Parse)?;
        #[cfg(debug_assertions)]
        debug_assert_eq!(
            synthattr_analysis::fingerprint(&unit),
            seed_fp,
            "CT step {step} drifted from the seed's semantic fingerprint"
        );
        out.push(ChainStep {
            sample: TransformedSample {
                source,
                step,
                mode: TransformMode::Chaining,
                seed_origin,
                pool_index: style_idx,
            },
            unit,
        });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pool::YearPool;
    use synthattr_gen::challenges::ChallengeId;
    use synthattr_gen::corpus::solution_in_style;
    use synthattr_gen::style::AuthorStyle;
    use synthattr_lang::parse;
    use synthattr_util::stats::distinct_count;

    fn seed_code(seed: u64) -> String {
        let mut rng = Pcg64::new(seed);
        let style = AuthorStyle::sample(&mut rng);
        solution_in_style(ChallengeId::SumSeries, &style, seed, &["chain-seed"])
    }

    #[test]
    fn nct_produces_n_parseable_variants() {
        let pool = YearPool::calibrated(2018, 1);
        let gpt = Transformer::new(&pool);
        let seed = seed_code(1);
        let out = run_nct(&gpt, &seed, 12, Origin::ChatGpt, &mut Pcg64::new(2));
        assert_eq!(out.len(), 12);
        for (i, s) in out.iter().enumerate() {
            assert_eq!(s.step, i + 1);
            assert_eq!(s.mode, TransformMode::NonChaining);
            parse(&s.source).unwrap_or_else(|e| panic!("step {}: {e}\n{}", s.step, s.source));
        }
    }

    #[test]
    fn ct_chains_feed_forward() {
        let pool = YearPool::calibrated(2018, 1);
        let gpt = Transformer::new(&pool);
        let seed = seed_code(2);
        let out = run_ct(&gpt, &seed, 8, Origin::Human, &mut Pcg64::new(3));
        assert_eq!(out.len(), 8);
        for s in &out {
            assert_eq!(s.mode, TransformMode::Chaining);
            assert_eq!(s.seed_origin, Origin::Human);
            parse(&s.source).unwrap();
        }
    }

    #[test]
    fn ct_uses_fewer_styles_than_nct() {
        // The paper's Table IV shape: chains converge.
        let pool = YearPool::calibrated(2019, 5);
        let gpt = Transformer::new(&pool);
        let seed = seed_code(3);
        let mut nct_styles = Vec::new();
        let mut ct_styles = Vec::new();
        for rep in 0..4 {
            let mut rng = Pcg64::seed_from(70, &["rep", &rep.to_string()]);
            nct_styles.extend(
                run_nct(&gpt, &seed, 25, Origin::ChatGpt, &mut rng)
                    .iter()
                    .map(|s| s.pool_index),
            );
            let mut rng = Pcg64::seed_from(71, &["rep", &rep.to_string()]);
            ct_styles.extend(
                run_ct(&gpt, &seed, 25, Origin::ChatGpt, &mut rng)
                    .iter()
                    .map(|s| s.pool_index),
            );
        }
        let nct_distinct = distinct_count(&nct_styles);
        let ct_distinct = distinct_count(&ct_styles);
        assert!(
            nct_distinct > ct_distinct,
            "NCT {nct_distinct} should exceed CT {ct_distinct}"
        );
    }

    #[test]
    fn runs_are_deterministic() {
        let pool = YearPool::calibrated(2017, 1);
        let gpt = Transformer::new(&pool);
        let seed = seed_code(4);
        let a = run_nct(&gpt, &seed, 5, Origin::ChatGpt, &mut Pcg64::new(11));
        let b = run_nct(&gpt, &seed, 5, Origin::ChatGpt, &mut Pcg64::new(11));
        assert_eq!(a, b);
    }

    #[test]
    fn bad_seed_yields_typed_parse_error_not_panic() {
        let pool = YearPool::calibrated(2018, 1);
        let gpt = Transformer::new(&pool);
        let bad = "int main( { return 0; }"; // malformed: not in the subset
        let mut rng = Pcg64::new(5);
        let nct = try_run_nct(&gpt, bad, 3, Origin::ChatGpt, &mut rng);
        assert!(matches!(nct, Err(GptError::Parse(_))), "{nct:?}");
        let ct = try_run_ct(&gpt, bad, 3, Origin::Human, &mut rng);
        assert!(matches!(ct, Err(GptError::Parse(_))), "{ct:?}");
        // The error composes as a std error with a ParseError source.
        let err: Box<dyn std::error::Error> = Box::new(ct.unwrap_err());
        assert!(err.source().is_some());
    }

    #[test]
    fn try_and_panicking_drivers_agree() {
        let pool = YearPool::calibrated(2019, 2);
        let gpt = Transformer::new(&pool);
        let seed = seed_code(8);
        let a = run_nct(&gpt, &seed, 6, Origin::ChatGpt, &mut Pcg64::new(21));
        let b = try_run_nct(&gpt, &seed, 6, Origin::ChatGpt, &mut Pcg64::new(21)).unwrap();
        assert_eq!(a, b);
        let c = run_ct(&gpt, &seed, 6, Origin::Human, &mut Pcg64::new(22));
        let d = try_run_ct(&gpt, &seed, 6, Origin::Human, &mut Pcg64::new(22)).unwrap();
        assert_eq!(c, d);
    }

    #[test]
    fn steps_drivers_match_plain_drivers_byte_for_byte() {
        // The single-parse drivers must be invisible: same RNG draws,
        // same rendered text, and the returned ASTs re-parse to the
        // exact unit of the returned text.
        let pool = YearPool::calibrated(2018, 3);
        let gpt = Transformer::new(&pool);
        let seed = seed_code(9);
        let seed_unit = parse(&seed).unwrap();

        let plain = try_run_nct(&gpt, &seed, 7, Origin::ChatGpt, &mut Pcg64::new(31)).unwrap();
        let steps = try_run_nct_steps(
            &gpt,
            &seed,
            &seed_unit,
            7,
            Origin::ChatGpt,
            &mut Pcg64::new(31),
        )
        .unwrap();
        assert_eq!(
            plain,
            steps.iter().map(|s| s.sample.clone()).collect::<Vec<_>>()
        );
        for s in &steps {
            assert_eq!(s.unit, parse(&s.sample.source).unwrap());
        }

        let plain = try_run_ct(&gpt, &seed, 7, Origin::Human, &mut Pcg64::new(32)).unwrap();
        let steps = try_run_ct_steps(
            &gpt,
            &seed,
            &seed_unit,
            7,
            Origin::Human,
            &mut Pcg64::new(32),
        )
        .unwrap();
        assert_eq!(
            plain,
            steps.iter().map(|s| s.sample.clone()).collect::<Vec<_>>()
        );
        for s in &steps {
            assert_eq!(s.unit, parse(&s.sample.source).unwrap());
        }
    }

    #[test]
    fn pool_skew_shows_in_nct_style_usage() {
        let pool = YearPool::calibrated(2017, 1);
        let gpt = Transformer::new(&pool);
        let seed = seed_code(5);
        let out = run_nct(&gpt, &seed, 60, Origin::ChatGpt, &mut Pcg64::new(13));
        let majority = out.iter().filter(|s| s.pool_index == 0).count();
        // Style 0 holds 77% of the 2017 mass.
        assert!(majority > 30, "dominant style used {majority}/60");
    }
}
