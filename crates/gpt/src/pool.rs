//! Latent style pools.
//!
//! The paper's central empirical observation is that ChatGPT
//! transforms code into a *bounded* set of styles (≤ 12), some styles
//! being far more common than others, with the skew differing by year
//! of the underlying dataset (Tables IV–VII: GCJ 2017 is dominated by
//! one style at 77%; 2018's top three cover 66%; 2019's top two cover
//! 59%). The real sampling distribution is unobservable offline, so
//! the pool sizes and weights below are the documented calibration
//! point of the reproduction — everything downstream of the oracle
//! labels is measured, not hard-coded.

use synthattr_gen::style::AuthorStyle;
use synthattr_util::Pcg64;

/// One latent style with its sampling weight.
#[derive(Debug, Clone)]
pub struct PoolStyle {
    /// The complete style profile.
    pub style: AuthorStyle,
    /// Unnormalized sampling weight.
    pub weight: f64,
    /// The anchor cluster this style belongs to (styles in one cluster
    /// are jittered copies of the same anchor, so the oracle maps them
    /// to the same or nearby author labels — the paper's label
    /// collapse).
    pub anchor: usize,
}

/// The simulator's per-year style pool and chain behaviour.
#[derive(Debug, Clone)]
pub struct YearPool {
    /// Year this pool models.
    pub year: u32,
    /// Root seed (drives per-style deterministic choices such as the
    /// rename vocabulary, so samples in one style look alike).
    pub seed: u64,
    /// The latent styles.
    pub styles: Vec<PoolStyle>,
    /// Probability that a transformation fully adopts the target style
    /// on each stylistic dimension (lower ⇒ more source traits leak
    /// through ⇒ more hybrid styles observed downstream).
    pub fidelity: f64,
    /// Probability that a chaining step keeps the previous step's
    /// style instead of resampling (higher ⇒ CT converges faster ⇒
    /// fewer distinct CT styles, as in Table IV).
    pub ct_stickiness: f64,
}

impl YearPool {
    /// Builds the calibrated pool for a paper year.
    ///
    /// Pool styles cluster around a handful of *anchor* styles per
    /// year. Each anchor is the exact style of one synthetic corpus
    /// author (derived from the same root seed the corpus generator
    /// uses), which reproduces the paper's central observation: the
    /// oracle maps transformed code onto a small set of concrete
    /// author labels (`A49` covering 77% of GCJ 2017, `A64/A135/A19`
    /// covering 66% of 2018, …). Heavy styles are the anchor verbatim;
    /// tail styles are jittered copies. The `(anchor, weight)`
    /// assignment mirrors the head of Tables V–VII.
    ///
    /// # Panics
    ///
    /// Panics if `year` is not 2017, 2018, or 2019.
    pub fn calibrated(year: u32, root_seed: u64) -> Self {
        // (anchor id, weight) per pool style, plus the corpus author
        // whose style each anchor copies (ids stay below the smallest
        // supported corpus size so reduced-scale runs share them).
        let (assignment, anchor_authors, fidelity, ct_stickiness): (
            &[(usize, f64)],
            &[usize],
            f64,
            f64,
        ) = match year {
            2017 => (
                &[
                    (0, 77.0),
                    (0, 4.0),
                    (1, 3.0),
                    (0, 2.6),
                    (1, 2.5),
                    (0, 2.1),
                    (1, 2.0),
                    (0, 1.5),
                ],
                &[9, 21],
                0.995,
                0.95,
            ),
            2018 => (
                &[
                    (0, 25.0),
                    (1, 23.0),
                    (2, 18.0),
                    (3, 6.0),
                    (0, 6.0),
                    (1, 3.0),
                    (2, 2.4),
                    (3, 1.7),
                    (0, 1.7),
                    (1, 1.7),
                    (2, 1.5),
                    (3, 1.1),
                ],
                &[4, 13, 7, 18],
                0.93,
                0.96,
            ),
            2019 => (
                &[
                    (0, 40.0),
                    (1, 19.0),
                    (2, 8.3),
                    (2, 8.3),
                    (1, 8.2),
                    (0, 3.9),
                    (1, 2.6),
                    (2, 1.8),
                    (0, 1.5),
                    (1, 1.1),
                    (2, 0.8),
                ],
                &[5, 16, 11],
                0.955,
                0.96,
            ),
            other => panic!("paper years are 2017-2019, got {other}"),
        };
        let mut rng = Pcg64::seed_from(root_seed, &["gpt-pool", &year.to_string()]);
        let anchors: Vec<AuthorStyle> = anchor_authors
            .iter()
            .map(|&author| AuthorStyle::for_author(root_seed, year, author))
            .collect();
        let styles = assignment
            .iter()
            .map(|&(anchor, weight)| {
                let mut style = anchors[anchor].clone();
                // Heavy styles reproduce the anchor exactly; tail
                // styles drift slightly (the paper's minor labels).
                if weight < 2.0 {
                    jitter_style(&mut style, &mut rng);
                }
                PoolStyle {
                    style,
                    weight,
                    anchor,
                }
            })
            .collect();
        YearPool {
            year,
            seed: root_seed,
            styles,
            fidelity,
            ct_stickiness,
        }
    }

    /// A small uniform pool for tests.
    pub fn uniform(year: u32, k: usize, root_seed: u64) -> Self {
        let mut rng = Pcg64::seed_from(root_seed, &["gpt-pool-uniform", &year.to_string()]);
        YearPool {
            year,
            seed: root_seed,
            styles: (0..k)
                .map(|anchor| PoolStyle {
                    style: AuthorStyle::sample(&mut rng),
                    weight: 1.0,
                    anchor,
                })
                .collect(),
            fidelity: 0.95,
            ct_stickiness: 0.9,
        }
    }

    /// Number of latent styles.
    pub fn len(&self) -> usize {
        self.styles.len()
    }

    /// Whether the pool is empty (never true for calibrated pools).
    pub fn is_empty(&self) -> bool {
        self.styles.is_empty()
    }

    /// Samples a style index by weight.
    pub fn sample_index(&self, rng: &mut Pcg64) -> usize {
        let weights: Vec<f64> = self.styles.iter().map(|s| s.weight).collect();
        rng.choose_weighted(&weights)
    }

    /// The style at `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn style(&self, index: usize) -> &AuthorStyle {
        &self.styles[index].style
    }
}

/// Re-samples one minor dimension of `style` (pool styles are
/// near-copies of their anchor, not clones).
fn jitter_style(style: &mut AuthorStyle, rng: &mut Pcg64) {
    match rng.next_below(6) {
        0 => style.io.endl = !style.io.endl,
        1 => style.loops.post_increment = !style.loops.post_increment,
        2 => style.structure.compound_assign = !style.structure.compound_assign,
        3 => style.render.space_after_keyword = !style.render.space_after_keyword,
        4 => style.comments.block = !style.comments.block,
        _ => style.render.blank_lines_between_fns = 1 - style.render.blank_lines_between_fns.min(1),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn calibrated_pools_are_bounded_like_the_paper() {
        for year in [2017, 2018, 2019] {
            let pool = YearPool::calibrated(year, 1);
            assert!(pool.len() <= 12, "paper observes at most 12 styles");
            assert!(!pool.is_empty());
        }
        assert_eq!(YearPool::calibrated(2018, 1).len(), 12);
    }

    #[test]
    fn sampling_respects_skew() {
        let pool = YearPool::calibrated(2017, 1);
        let mut rng = Pcg64::new(42);
        let mut counts = vec![0usize; pool.len()];
        for _ in 0..5_000 {
            counts[pool.sample_index(&mut rng)] += 1;
        }
        // Style 0 carries 77% of the 2017 mass.
        let share = counts[0] as f64 / 5_000.0;
        assert!((share - 0.77).abs() < 0.05, "share {share}");
    }

    #[test]
    fn pools_are_deterministic_per_seed() {
        let a = YearPool::calibrated(2019, 9);
        let b = YearPool::calibrated(2019, 9);
        for (x, y) in a.styles.iter().zip(&b.styles) {
            assert_eq!(x.style, y.style);
            assert_eq!(x.weight, y.weight);
        }
    }

    #[test]
    fn year_pools_differ() {
        let a = YearPool::calibrated(2017, 5);
        let b = YearPool::calibrated(2018, 5);
        assert_ne!(a.style(0), b.style(0));
    }

    #[test]
    #[should_panic(expected = "paper years")]
    fn unknown_year_panics() {
        YearPool::calibrated(2021, 1);
    }

    #[test]
    fn uniform_pool_for_tests() {
        let pool = YearPool::uniform(2018, 4, 3);
        assert_eq!(pool.len(), 4);
        let mut rng = Pcg64::new(1);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..200 {
            seen.insert(pool.sample_index(&mut rng));
        }
        assert_eq!(seen.len(), 4);
    }
}
