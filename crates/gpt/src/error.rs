//! Typed errors for the simulated LLM service.
//!
//! Until PR 4 the simulator was *too perfect*: every call either
//! succeeded or panicked through an `expect`. Real LLM backends time
//! out, rate-limit, drop connections, and return truncated or mangled
//! code — the dominant operational cost reported by every large-scale
//! LLM code-harvesting effort. [`GptError`] is the typed vocabulary
//! for all of those failure modes, shared by the plain transformer
//! (`Parse`, `Gate`) and by the fault-injected service layer in
//! `synthattr-faults` (`Service`, `InvalidResponse`,
//! `RetriesExhausted`, `CircuitOpen`, `BudgetExhausted`).
//!
//! Both [`GptError`] and [`synthattr_lang::ParseError`] implement
//! [`std::error::Error`], so callers can hold either behind
//! `Box<dyn Error>` and walk `source()` chains.

use std::error::Error;
use std::fmt;
use synthattr_lang::ParseError;

/// A call-level fault of the simulated remote service. These model the
/// transport/HTTP layer: the request never produced a usable response
/// body, so retrying is always safe.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServiceFault {
    /// The request exceeded its deadline.
    Timeout {
        /// Simulated elapsed time at abort, in milliseconds.
        after_ms: u64,
    },
    /// The service shed load (HTTP 429).
    RateLimited {
        /// Simulated `Retry-After` hint, in milliseconds.
        retry_after_ms: u64,
    },
    /// A transient server-side error (HTTP 5xx, dropped connection).
    Transient {
        /// Simulated status code.
        code: u16,
    },
}

impl ServiceFault {
    /// Short lowercase tag for logs and stats keys.
    pub fn tag(&self) -> &'static str {
        match self {
            ServiceFault::Timeout { .. } => "timeout",
            ServiceFault::RateLimited { .. } => "rate-limited",
            ServiceFault::Transient { .. } => "transient",
        }
    }
}

impl fmt::Display for ServiceFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServiceFault::Timeout { after_ms } => {
                write!(f, "request timed out after {after_ms}ms")
            }
            ServiceFault::RateLimited { retry_after_ms } => {
                write!(f, "rate limited (retry after {retry_after_ms}ms)")
            }
            ServiceFault::Transient { code } => {
                write!(f, "transient service error (status {code})")
            }
        }
    }
}

/// Why a response body was rejected by validation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ResponseViolation {
    /// The response did not parse (typical of truncation).
    Unparseable,
    /// The response parsed but introduced error-severity lint
    /// diagnostics.
    LintErrors,
    /// The response parsed cleanly but its semantic fingerprint
    /// differs from the input's (the transform changed behaviour).
    FingerprintMismatch,
}

impl ResponseViolation {
    /// Short lowercase tag for logs and stats keys.
    pub fn tag(self) -> &'static str {
        match self {
            ResponseViolation::Unparseable => "unparseable",
            ResponseViolation::LintErrors => "lint-errors",
            ResponseViolation::FingerprintMismatch => "fingerprint-mismatch",
        }
    }
}

/// An error from one simulated LLM call or call sequence.
#[derive(Debug, Clone, PartialEq)]
pub enum GptError {
    /// The *input* is outside the supported C++ subset. Deterministic:
    /// retrying can never succeed, so the service layer fails fast.
    Parse(ParseError),
    /// A call-level service fault (timeout / rate limit / transient).
    Service(ServiceFault),
    /// The response body failed validation (truncated or corrupted
    /// code that the lint + fingerprint gate rejected).
    InvalidResponse {
        /// What the validator objected to.
        violation: ResponseViolation,
        /// Human-readable detail (first diagnostic, parse error, …).
        detail: String,
    },
    /// The retry policy ran out of attempts; `last` is the final
    /// attempt's error.
    RetriesExhausted {
        /// Attempts performed (including the first call).
        attempts: u32,
        /// The error of the last attempt.
        last: Box<GptError>,
    },
    /// The per-pipeline retry budget is spent; no retry was performed.
    BudgetExhausted {
        /// The error that wanted a retry.
        last: Box<GptError>,
    },
    /// The circuit breaker is open: the call was rejected without
    /// reaching the service.
    CircuitOpen {
        /// Consecutive failures that tripped the breaker.
        consecutive_failures: u32,
    },
}

impl GptError {
    /// Whether a retry of the same request could possibly succeed.
    ///
    /// Service faults and invalid responses are retryable; a
    /// [`GptError::Parse`] of the *input* is deterministic and is not,
    /// and the terminal wrappers (`RetriesExhausted`,
    /// `BudgetExhausted`, `CircuitOpen`) are final by construction.
    pub fn is_retryable(&self) -> bool {
        matches!(
            self,
            GptError::Service(_) | GptError::InvalidResponse { .. }
        )
    }

    /// Short lowercase tag naming the error family (stable key for
    /// stats and logs).
    pub fn tag(&self) -> &'static str {
        match self {
            GptError::Parse(_) => "parse",
            GptError::Service(s) => s.tag(),
            GptError::InvalidResponse { violation, .. } => violation.tag(),
            GptError::RetriesExhausted { .. } => "retries-exhausted",
            GptError::BudgetExhausted { .. } => "budget-exhausted",
            GptError::CircuitOpen { .. } => "circuit-open",
        }
    }
}

impl fmt::Display for GptError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GptError::Parse(e) => write!(f, "input outside the supported subset: {e}"),
            GptError::Service(s) => write!(f, "service fault: {s}"),
            GptError::InvalidResponse { violation, detail } => {
                write!(f, "invalid response ({}): {detail}", violation.tag())
            }
            GptError::RetriesExhausted { attempts, last } => {
                write!(f, "retries exhausted after {attempts} attempts: {last}")
            }
            GptError::BudgetExhausted { last } => {
                write!(f, "retry budget exhausted: {last}")
            }
            GptError::CircuitOpen {
                consecutive_failures,
            } => write!(
                f,
                "circuit breaker open after {consecutive_failures} consecutive failures"
            ),
        }
    }
}

impl Error for GptError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            GptError::Parse(e) => Some(e),
            GptError::RetriesExhausted { last, .. } | GptError::BudgetExhausted { last } => {
                Some(last.as_ref())
            }
            _ => None,
        }
    }
}

impl From<ParseError> for GptError {
    fn from(e: ParseError) -> Self {
        GptError::Parse(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn composes_with_box_dyn_error() {
        // The satellite guarantee: ParseError and GptError both erase
        // into Box<dyn Error> and chain through source().
        let parse = ParseError::new("expected ';'", 3);
        let boxed_parse: Box<dyn Error> = Box::new(parse.clone());
        assert!(boxed_parse.to_string().contains("line 3"));

        let err = GptError::RetriesExhausted {
            attempts: 4,
            last: Box::new(GptError::Parse(parse)),
        };
        let boxed: Box<dyn Error> = Box::new(err);
        let mid = boxed.source().expect("retries wrap a cause");
        let root = mid.source().expect("parse variant chains to ParseError");
        assert!(root.to_string().contains("expected ';'"));
    }

    #[test]
    fn retryability_classification() {
        assert!(GptError::Service(ServiceFault::Timeout { after_ms: 10 }).is_retryable());
        assert!(GptError::InvalidResponse {
            violation: ResponseViolation::Unparseable,
            detail: "eof".into(),
        }
        .is_retryable());
        assert!(!GptError::Parse(ParseError::new("x", 1)).is_retryable());
        assert!(!GptError::CircuitOpen {
            consecutive_failures: 5
        }
        .is_retryable());
        assert!(!GptError::BudgetExhausted {
            last: Box::new(GptError::Service(ServiceFault::Transient { code: 503 })),
        }
        .is_retryable());
    }

    #[test]
    fn tags_are_stable() {
        assert_eq!(
            GptError::Service(ServiceFault::RateLimited { retry_after_ms: 1 }).tag(),
            "rate-limited"
        );
        assert_eq!(
            GptError::InvalidResponse {
                violation: ResponseViolation::FingerprintMismatch,
                detail: String::new(),
            }
            .tag(),
            "fingerprint-mismatch"
        );
        assert_eq!(
            GptError::CircuitOpen {
                consecutive_failures: 1
            }
            .tag(),
            "circuit-open"
        );
    }

    #[test]
    fn display_is_informative() {
        let e = GptError::RetriesExhausted {
            attempts: 3,
            last: Box::new(GptError::Service(ServiceFault::Timeout { after_ms: 800 })),
        };
        let s = e.to_string();
        assert!(s.contains("3 attempts"));
        assert!(s.contains("800ms"));
    }
}
