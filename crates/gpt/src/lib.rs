//! A deterministic LLM style simulator.
//!
//! The reproduced paper drives its experiments with ChatGPT in two
//! roles: *generating* C++ solutions and *transforming* existing code
//! ("change the stylistic features, such as variable and function
//! names, code structures, and so on"). No offline artifact can call
//! the OpenAI API, so this crate substitutes a simulator that
//! reproduces the paper's empirically observed degrees of freedom
//! (DESIGN.md §2 documents the substitution argument):
//!
//! * a **bounded latent style pool** per year ([`pool::YearPool`]) —
//!   the paper observes at most 12 distinct styles, with heavily
//!   skewed usage (Tables IV–VII); the pool's size and weights are the
//!   explicit per-year calibration;
//! * a **transformation engine** ([`transform::Transformer`]) that
//!   parses the input, rewrites identifiers, casts, increments, loop
//!   forms, compound assignments, IO idioms and comments toward a
//!   sampled pool style, optionally extracts the per-case body into a
//!   helper function (the paper's Figure 4a), and re-renders the code
//!   in a blend of the source's and the target's layout;
//! * **NCT/CT chain drivers** ([`chain`]) implementing the paper's
//!   non-chaining (`c_i = GPT(c_0)`) and chaining
//!   (`c_{i+1} = GPT(c_i)`) protocols (Figure 2).
//!
//! # Example
//!
//! ```
//! use synthattr_gpt::pool::YearPool;
//! use synthattr_gpt::transform::Transformer;
//! use synthattr_util::Pcg64;
//!
//! let pool = YearPool::calibrated(2018, 1);
//! let gpt = Transformer::new(&pool);
//! let src = "int main() { int x = 0; x = x + 1; return x; }";
//! let out = gpt.transform(src, 0, &mut Pcg64::new(7)).unwrap();
//! synthattr_lang::parse(&out).unwrap(); // still valid C++
//! ```

pub mod chain;
pub mod error;
pub mod incr;
pub mod pool;
pub mod transform;

pub use chain::{
    run_ct, run_nct, try_run_ct, try_run_ct_steps, try_run_nct, try_run_nct_steps, ChainStep,
    TransformMode, TransformedSample,
};
pub use error::{GptError, ResponseViolation, ServiceFault};
pub use pool::YearPool;
pub use transform::Transformer;
