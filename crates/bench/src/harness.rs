//! The in-repo benchmark harness (criterion replacement).
//!
//! The workspace builds offline with zero registry dependencies, so
//! the seven bench targets under `benches/` drive this ~250-line
//! harness instead of criterion. It keeps the parts the trajectory
//! tooling actually consumes:
//!
//! * a warmup phase, then wall-clock samples of a closure;
//! * median / p95 / mean / min / max over the samples;
//! * optional bytes-per-iteration throughput;
//! * **one JSON line per benchmark on stdout** (human-readable
//!   progress goes to stderr), so `cargo bench` output can be
//!   appended to `BENCH_*.json` trajectory files directly, or teed
//!   via [`ENV_JSON_PATH`].
//!
//! # Example
//!
//! ```
//! use synthattr_bench::harness::Group;
//!
//! let mut group = Group::new("doc");
//! group.bench("sum", || {
//!     std::hint::black_box((0..1000u64).sum::<u64>());
//! });
//! ```
//!
//! # Tuning
//!
//! `SYNTHATTR_BENCH_WARMUP_MS`, `SYNTHATTR_BENCH_MEASURE_MS`, and
//! `SYNTHATTR_BENCH_SAMPLES` scale the run (CI smoke vs. a real
//! measurement session) without touching bench code.

use std::io::Write as _;
use std::time::{Duration, Instant};

/// Env var: warmup duration per benchmark, in milliseconds (default 300).
pub const ENV_WARMUP_MS: &str = "SYNTHATTR_BENCH_WARMUP_MS";
/// Env var: measurement budget per benchmark, in milliseconds (default 2000).
pub const ENV_MEASURE_MS: &str = "SYNTHATTR_BENCH_MEASURE_MS";
/// Env var: minimum sample count per benchmark (default 10).
pub const ENV_SAMPLES: &str = "SYNTHATTR_BENCH_SAMPLES";
/// Env var: if set, JSON lines are also appended to this file.
pub const ENV_JSON_PATH: &str = "SYNTHATTR_BENCH_JSON";

fn env_ms(var: &str, default_ms: u64) -> Duration {
    Duration::from_millis(
        std::env::var(var)
            .ok()
            .and_then(|v| v.trim().parse().ok())
            .unwrap_or(default_ms),
    )
}

/// A named group of benchmarks (mirrors criterion's `benchmark_group`).
pub struct Group {
    name: String,
    throughput_bytes: Option<u64>,
    measure_allocs: bool,
    warmup: Duration,
    measure: Duration,
    min_samples: usize,
}

impl Group {
    /// A group with budgets resolved from the environment.
    pub fn new(name: &str) -> Self {
        Group {
            name: name.to_string(),
            throughput_bytes: None,
            measure_allocs: false,
            warmup: env_ms(ENV_WARMUP_MS, 300),
            measure: env_ms(ENV_MEASURE_MS, 2000),
            min_samples: std::env::var(ENV_SAMPLES)
                .ok()
                .and_then(|v| v.trim().parse().ok())
                .filter(|&s| s > 0)
                .unwrap_or(10),
        }
    }

    /// Also report allocator traffic per iteration
    /// (`allocs_per_iter` / `alloc_bytes_per_iter` /
    /// `peak_alloc_bytes` in the JSON line), measured over one extra
    /// untimed iteration after sampling.
    ///
    /// Only meaningful in a binary whose `#[global_allocator]` is
    /// [`crate::alloc_counter::CountingAllocator`]; elsewhere all
    /// counts read as zero.
    pub fn measure_allocs(&mut self, yes: bool) {
        self.measure_allocs = yes;
    }

    /// Declares that one iteration processes `bytes` bytes; summaries
    /// gain a MB/s throughput field until the next call.
    pub fn throughput_bytes(&mut self, bytes: u64) {
        self.throughput_bytes = Some(bytes);
    }

    /// Clears the throughput declaration.
    pub fn clear_throughput(&mut self) {
        self.throughput_bytes = None;
    }

    /// Times `f`, prints progress to stderr and a JSON line to
    /// stdout, and returns the summary.
    ///
    /// One call of `f` is one iteration/sample; do internal batching
    /// inside `f` when a single pass is too fast to time (the
    /// existing targets all iterate over a source corpus per call).
    pub fn bench<F: FnMut()>(&mut self, name: &str, mut f: F) -> Summary {
        // Warmup: run until the budget elapses, at least once.
        let warm_start = Instant::now();
        loop {
            f();
            if warm_start.elapsed() >= self.warmup {
                break;
            }
        }

        // Measurement: at least `min_samples` samples, and keep
        // sampling until the time budget is spent.
        let mut samples_ns: Vec<u128> = Vec::with_capacity(self.min_samples * 2);
        let measure_start = Instant::now();
        while samples_ns.len() < self.min_samples || measure_start.elapsed() < self.measure {
            let t = Instant::now();
            f();
            samples_ns.push(t.elapsed().as_nanos());
            if samples_ns.len() >= 100_000 {
                break; // pathological: closure far faster than the budget
            }
        }
        samples_ns.sort_unstable();

        let mut summary =
            Summary::from_sorted(&self.name, name, &samples_ns, self.throughput_bytes);
        if self.measure_allocs {
            let (calls_before, bytes_before) = crate::alloc_counter::snapshot();
            crate::alloc_counter::reset_peak();
            f();
            let (calls_after, bytes_after) = crate::alloc_counter::snapshot();
            summary.allocs_per_iter = Some(calls_after - calls_before);
            summary.alloc_bytes_per_iter = Some(bytes_after - bytes_before);
            summary.peak_alloc_bytes = Some(crate::alloc_counter::bytes_peak());
        }
        self.emit(&summary);
        summary
    }

    /// Times exactly one run of `f` — no warmup, one sample — and
    /// reports the same JSON row shape as [`Group::bench`].
    ///
    /// For closures whose single execution is the measurement (a
    /// 20 000-author corpus build takes minutes; repeating it for a
    /// median would turn a bench sweep into an afternoon). When the
    /// group measures allocations, the peak gauge brackets this same
    /// run, so `peak_alloc_bytes` is the high-water mark of the timed
    /// region itself.
    pub fn bench_once<F: FnOnce()>(&mut self, name: &str, f: F) -> Summary {
        let measuring = self.measure_allocs;
        let (calls_before, bytes_before) = crate::alloc_counter::snapshot();
        if measuring {
            crate::alloc_counter::reset_peak();
        }
        let t = Instant::now();
        f();
        let elapsed = t.elapsed().as_nanos();
        let mut summary = Summary::from_sorted(&self.name, name, &[elapsed], self.throughput_bytes);
        if measuring {
            let (calls_after, bytes_after) = crate::alloc_counter::snapshot();
            summary.allocs_per_iter = Some(calls_after - calls_before);
            summary.alloc_bytes_per_iter = Some(bytes_after - bytes_before);
            summary.peak_alloc_bytes = Some(crate::alloc_counter::bytes_peak());
        }
        self.emit(&summary);
        summary
    }

    /// Prints the stderr progress line and the stdout JSON line, and
    /// tees the JSON to [`ENV_JSON_PATH`] when set.
    fn emit(&self, summary: &Summary) {
        eprintln!("{}", summary.human_line());
        println!("{}", summary.json_line());
        if let Ok(path) = std::env::var(ENV_JSON_PATH) {
            if let Ok(mut file) = std::fs::OpenOptions::new()
                .create(true)
                .append(true)
                .open(&path)
            {
                let _ = writeln!(file, "{}", summary.json_line());
            }
        }
    }
}

/// Summary statistics for one benchmark, in nanoseconds per iteration.
#[derive(Debug, Clone, PartialEq)]
pub struct Summary {
    /// Group name.
    pub group: String,
    /// Benchmark name within the group.
    pub bench: String,
    /// Number of timed iterations.
    pub samples: usize,
    /// Arithmetic mean.
    pub mean_ns: f64,
    /// 50th percentile.
    pub median_ns: f64,
    /// 95th percentile.
    pub p95_ns: f64,
    /// Fastest sample.
    pub min_ns: u128,
    /// Slowest sample.
    pub max_ns: u128,
    /// Bytes processed per iteration, if declared.
    pub bytes_per_iter: Option<u64>,
    /// Allocator calls in one iteration, when the group measures
    /// allocations under a counting global allocator.
    pub allocs_per_iter: Option<u64>,
    /// Bytes requested from the allocator in one iteration, under the
    /// same conditions.
    pub alloc_bytes_per_iter: Option<u64>,
    /// Live-bytes high-water mark over the measured iteration — the
    /// in-process stand-in for peak RSS (heap only; stacks and code
    /// pages excluded).
    pub peak_alloc_bytes: Option<u64>,
}

impl Summary {
    /// Builds a summary from an ascending-sorted sample vector.
    ///
    /// # Panics
    ///
    /// Panics if `sorted_ns` is empty.
    pub fn from_sorted(
        group: &str,
        bench: &str,
        sorted_ns: &[u128],
        bytes_per_iter: Option<u64>,
    ) -> Self {
        assert!(!sorted_ns.is_empty(), "benchmark produced no samples");
        let sum: u128 = sorted_ns.iter().sum();
        Summary {
            group: group.to_string(),
            bench: bench.to_string(),
            samples: sorted_ns.len(),
            mean_ns: sum as f64 / sorted_ns.len() as f64,
            median_ns: percentile(sorted_ns, 50.0),
            p95_ns: percentile(sorted_ns, 95.0),
            min_ns: sorted_ns[0],
            max_ns: *sorted_ns.last().unwrap(),
            bytes_per_iter,
            allocs_per_iter: None,
            alloc_bytes_per_iter: None,
            peak_alloc_bytes: None,
        }
    }

    /// Median throughput in MB/s, when a byte count was declared.
    pub fn throughput_mb_per_s(&self) -> Option<f64> {
        self.bytes_per_iter.map(|bytes| {
            let secs = self.median_ns / 1e9;
            (bytes as f64 / (1024.0 * 1024.0)) / secs.max(1e-12)
        })
    }

    /// The stderr progress line.
    pub fn human_line(&self) -> String {
        let mut line = format!(
            "{}/{}: median {} (p95 {}, {} samples)",
            self.group,
            self.bench,
            format_ns(self.median_ns),
            format_ns(self.p95_ns),
            self.samples
        );
        if let Some(mbs) = self.throughput_mb_per_s() {
            line.push_str(&format!(", {mbs:.1} MB/s"));
        }
        if let Some(allocs) = self.allocs_per_iter {
            line.push_str(&format!(", {allocs} allocs/iter"));
        }
        if let Some(peak) = self.peak_alloc_bytes {
            line.push_str(&format!(
                ", peak {:.1} MiB",
                peak as f64 / (1024.0 * 1024.0)
            ));
        }
        line
    }

    /// One self-contained JSON object (no trailing newline).
    pub fn json_line(&self) -> String {
        let mut fields = vec![
            format!("\"group\":{}", json_string(&self.group)),
            format!("\"bench\":{}", json_string(&self.bench)),
            format!("\"samples\":{}", self.samples),
            format!("\"mean_ns\":{:.1}", self.mean_ns),
            format!("\"median_ns\":{:.1}", self.median_ns),
            format!("\"p95_ns\":{:.1}", self.p95_ns),
            format!("\"min_ns\":{}", self.min_ns),
            format!("\"max_ns\":{}", self.max_ns),
        ];
        if let Some(bytes) = self.bytes_per_iter {
            fields.push(format!("\"bytes_per_iter\":{bytes}"));
            fields.push(format!(
                "\"throughput_mb_per_s\":{:.3}",
                self.throughput_mb_per_s().unwrap()
            ));
        }
        if let Some(allocs) = self.allocs_per_iter {
            fields.push(format!("\"allocs_per_iter\":{allocs}"));
        }
        if let Some(bytes) = self.alloc_bytes_per_iter {
            fields.push(format!("\"alloc_bytes_per_iter\":{bytes}"));
        }
        if let Some(peak) = self.peak_alloc_bytes {
            fields.push(format!("\"peak_alloc_bytes\":{peak}"));
        }
        format!("{{{}}}", fields.join(","))
    }
}

/// Linear-interpolated percentile over ascending-sorted samples.
fn percentile(sorted_ns: &[u128], pct: f64) -> f64 {
    if sorted_ns.len() == 1 {
        return sorted_ns[0] as f64;
    }
    let rank = pct / 100.0 * (sorted_ns.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    let frac = rank - lo as f64;
    sorted_ns[lo] as f64 * (1.0 - frac) + sorted_ns[hi] as f64 * frac
}

/// Human time formatting: picks ns/µs/ms/s.
fn format_ns(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.0} ns")
    } else if ns < 1e6 {
        format!("{:.1} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.2} s", ns / 1e9)
    }
}

/// JSON string escaping, shared with the serve writers.
fn json_string(s: &str) -> String {
    synthattr_util::json::escaped(s)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_summary() -> Summary {
        Summary::from_sorted("g", "b", &[100, 200, 300, 400, 1000], Some(1024 * 1024))
    }

    #[test]
    fn percentiles_interpolate() {
        let s = sample_summary();
        assert_eq!(s.median_ns, 300.0);
        assert_eq!(s.min_ns, 100);
        assert_eq!(s.max_ns, 1000);
        // p95 between the 4th and 5th of five samples.
        assert!(s.p95_ns > 400.0 && s.p95_ns < 1000.0, "{}", s.p95_ns);
        assert_eq!(percentile(&[7], 95.0), 7.0);
        assert_eq!(percentile(&[0, 100], 50.0), 50.0);
    }

    #[test]
    fn throughput_uses_median() {
        // 1 MiB per iteration at 300 ns/iter.
        let mbs = sample_summary().throughput_mb_per_s().unwrap();
        assert!((mbs - 1e9 / 300.0).abs() / mbs < 1e-6, "{mbs}");
    }

    #[test]
    fn json_line_is_valid_and_complete() {
        let line = sample_summary().json_line();
        assert!(line.starts_with('{') && line.ends_with('}'));
        for key in [
            "\"group\":\"g\"",
            "\"bench\":\"b\"",
            "\"samples\":5",
            "\"median_ns\":300.0",
            "\"bytes_per_iter\":1048576",
            "\"throughput_mb_per_s\":",
        ] {
            assert!(line.contains(key), "missing {key} in {line}");
        }
        // No throughput fields without a declared byte count.
        let plain = Summary::from_sorted("g", "b", &[5], None).json_line();
        assert!(!plain.contains("throughput"), "{plain}");
    }

    #[test]
    fn alloc_fields_appear_only_when_measured() {
        let mut s = sample_summary();
        assert!(!s.json_line().contains("allocs_per_iter"));
        assert!(!s.json_line().contains("peak_alloc_bytes"));
        s.allocs_per_iter = Some(42);
        s.alloc_bytes_per_iter = Some(4096);
        s.peak_alloc_bytes = Some(3 * 1024 * 1024);
        let line = s.json_line();
        assert!(line.contains("\"allocs_per_iter\":42"), "{line}");
        assert!(line.contains("\"alloc_bytes_per_iter\":4096"), "{line}");
        assert!(line.contains("\"peak_alloc_bytes\":3145728"), "{line}");
        assert!(s.human_line().contains("42 allocs/iter"));
        assert!(s.human_line().contains("peak 3.0 MiB"));
    }

    #[test]
    fn json_strings_escape_specials() {
        assert_eq!(json_string("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
        assert_eq!(json_string("\u{1}"), "\"\\u0001\"");
    }

    #[test]
    fn bench_runs_and_counts_samples() {
        // Keep this fast: tiny budgets via a locally-built group.
        let mut group = Group {
            name: "test".into(),
            throughput_bytes: None,
            measure_allocs: false,
            warmup: Duration::from_millis(1),
            measure: Duration::from_millis(5),
            min_samples: 3,
        };
        let summary = group.bench("spin", || {
            std::hint::black_box((0..100u64).sum::<u64>());
        });
        assert!(summary.samples >= 3);
        assert!(summary.min_ns <= summary.max_ns);
        assert!(summary.median_ns <= summary.p95_ns);
    }

    #[test]
    fn bench_once_takes_exactly_one_sample() {
        let _guard = crate::alloc_counter::TEST_GAUGE_LOCK.lock().unwrap();
        let mut group = Group {
            name: "test".into(),
            throughput_bytes: None,
            measure_allocs: true,
            warmup: Duration::from_millis(1),
            measure: Duration::from_millis(1),
            min_samples: 1,
        };
        let mut runs = 0u32;
        let summary = group.bench_once("one", || {
            runs += 1;
            std::hint::black_box(vec![0u8; 1024]);
        });
        assert_eq!(runs, 1);
        assert_eq!(summary.samples, 1);
        assert_eq!(summary.median_ns, summary.min_ns as f64);
        // The default allocator is installed in tests, so the gauge
        // reads zero — but the fields must still be present.
        assert!(summary.allocs_per_iter.is_some());
        assert!(summary.peak_alloc_bytes.is_some());
    }
}
