//! `lint`: aggregated per-year corpus diagnostics report.
//!
//! Generates each paper year's corpus (at a size controlled by
//! `SYNTHATTR_LINT_AUTHORS` / `SYNTHATTR_LINT_CHALLENGES`, default
//! 24x4), lints every program, and prints one JSON line per year:
//!
//! ```json
//! {"year":2017,"units":96,"errors":0,"warnings":12,"per_pass":{"unused-variable":12}}
//! ```
//!
//! Exits nonzero if any error-severity diagnostic is found — the CI
//! contract behind `scripts/verify.sh --lint`.

use std::collections::BTreeMap;
use synthattr_analysis::{Analyzer, Severity};
use synthattr_bench::YEARS;
use synthattr_gen::corpus::{generate_year, YearSpec};

fn env_size(var: &str, default: usize) -> usize {
    std::env::var(var)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn main() {
    let authors = env_size("SYNTHATTR_LINT_AUTHORS", 24);
    let challenges = env_size("SYNTHATTR_LINT_CHALLENGES", 4);
    let analyzer = Analyzer::new();
    let mut total_errors = 0usize;

    for year in YEARS {
        let spec = YearSpec::tiny(year, authors, challenges);
        let corpus = generate_year(&spec, 7);
        let mut errors = 0usize;
        let mut warnings = 0usize;
        let mut per_pass: BTreeMap<&'static str, usize> = BTreeMap::new();
        for sample in &corpus.samples {
            let diags = analyzer
                .analyze_source(&sample.source)
                .unwrap_or_else(|e| panic!("{year} corpus must parse: {e}\n{}", sample.source));
            for d in &diags {
                *per_pass.entry(d.pass).or_insert(0) += 1;
                match d.severity {
                    Severity::Error => {
                        errors += 1;
                        eprintln!("{year}: {d}");
                    }
                    Severity::Warning => warnings += 1,
                }
            }
        }
        let passes: Vec<String> = per_pass
            .iter()
            .map(|(p, n)| format!("\"{p}\":{n}"))
            .collect();
        println!(
            "{{\"year\":{year},\"units\":{},\"errors\":{errors},\"warnings\":{warnings},\"per_pass\":{{{}}}}}",
            corpus.samples.len(),
            passes.join(",")
        );
        total_errors += errors;
    }

    if total_errors > 0 {
        eprintln!("lint: {total_errors} error-severity diagnostics");
        std::process::exit(1);
    }
}
