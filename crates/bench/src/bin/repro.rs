//! Regenerates every table and figure of *Attributing
//! ChatGPT-Transformed Synthetic Code*.
//!
//! ```text
//! repro [--smoke] [--seed N] <target> [<target> ...]
//!
//! targets:
//!   table1 .. table10      the paper's tables
//!   figure1 .. figure5     the paper's figures
//!   ablation-features      feature-family ablation (design choice 3)
//!   ablation-chain         CT-stickiness ablation (design choice 4)
//!   ablation-grouping      grouping-strategy ablation (design choice 1)
//!   feature-importance     what gives ChatGPT away, by feature name
//!   all                    everything above
//! ```
//!
//! `--smoke` runs the reduced configuration (seconds instead of
//! minutes) through identical code paths.

use std::collections::HashMap;
use synthattr_bench::YEARS;
use synthattr_core::config::ExperimentConfig;
use synthattr_core::experiments::{attribution, binary, datasets, diversity, figures, styles};
use synthattr_core::pipeline::YearPipeline;
use synthattr_features::FeatureConfig;
use synthattr_gen::corpus::Origin;
use synthattr_gpt::chain::run_ct;
use synthattr_gpt::pool::YearPool;
use synthattr_gpt::transform::Transformer;
use synthattr_util::stats::distinct_count;
use synthattr_util::{pool, Pcg64, Table};

struct Runner {
    config: ExperimentConfig,
    pipelines: HashMap<u32, YearPipeline>,
}

impl Runner {
    fn new(config: ExperimentConfig) -> Self {
        Runner {
            config,
            pipelines: HashMap::new(),
        }
    }

    fn pipeline(&mut self, year: u32) -> &YearPipeline {
        if !self.pipelines.contains_key(&year) {
            eprintln!("[repro] building GCJ {year} pipeline ...");
            let p = YearPipeline::build(year, &self.config);
            report_frontend(year, &p);
            self.pipelines.insert(year, p);
        }
        &self.pipelines[&year]
    }

    /// Builds every missing year pipeline on the worker pool. Each
    /// year derives its own seed hierarchy before dispatch and the
    /// pool preserves input order, so the results are byte-identical
    /// to the sequential build for any worker count (asserted by
    /// `parallel_pipeline_build_is_worker_invariant` in
    /// `tests/e2e_pipeline.rs`).
    fn all_pipelines(&mut self) -> Vec<&YearPipeline> {
        let missing: Vec<u32> = YEARS
            .iter()
            .copied()
            .filter(|y| !self.pipelines.contains_key(y))
            .collect();
        if !missing.is_empty() {
            let config = self.config.clone();
            for year in &missing {
                eprintln!("[repro] building GCJ {year} pipeline ...");
            }
            let built =
                pool::parallel_map(missing.clone(), |year| YearPipeline::build(year, &config));
            for (year, p) in missing.iter().zip(&built) {
                report_frontend(*year, p);
            }
            self.pipelines.extend(missing.into_iter().zip(built));
        }
        YEARS.iter().map(|y| &self.pipelines[y]).collect()
    }

    fn run(&mut self, target: &str) {
        match target {
            "table1" => {
                let ps: Vec<YearPipeline> = self.all_pipelines().into_iter().cloned().collect();
                println!("{}", datasets::render_table_i(&datasets::table_i(&ps)));
            }
            "table2" => {
                let ps: Vec<YearPipeline> = self.all_pipelines().into_iter().cloned().collect();
                println!("{}", datasets::render_table_ii(&datasets::table_ii(&ps)));
            }
            "table3" => {
                let ps: Vec<YearPipeline> = self.all_pipelines().into_iter().cloned().collect();
                println!("{}", datasets::render_table_iii(&datasets::table_iii(&ps)));
            }
            "table4" => {
                let results: Vec<styles::StyleCounts> = YEARS
                    .iter()
                    .map(|&y| styles::run(self.pipeline(y)))
                    .collect();
                println!("{}", styles::render(&results));
                let max = results.iter().map(|r| r.max_styles).max().unwrap_or(0);
                println!("max styles observed: {max} (paper: 12)\n");
            }
            "table5" => self.diversity(2017),
            "table6" => self.diversity(2018),
            "table7" => self.diversity(2019),
            "table8" => {
                let results: Vec<attribution::AttributionResult> = YEARS
                    .iter()
                    .map(|&y| attribution::run(self.pipeline(y), attribution::Grouping::Naive))
                    .collect();
                println!("{}", attribution::render_naive(&results));
            }
            "table9" => {
                let results: Vec<attribution::AttributionResult> = YEARS
                    .iter()
                    .map(|&y| {
                        attribution::run(self.pipeline(y), attribution::Grouping::FeatureBased)
                    })
                    .collect();
                println!("{}", attribution::render_feature_based(&results));
            }
            "table10" => {
                let individual: Vec<binary::BinaryResult> = YEARS
                    .iter()
                    .map(|&y| binary::run_individual(self.pipeline(y)))
                    .collect();
                let ps: Vec<YearPipeline> = self.all_pipelines().into_iter().cloned().collect();
                let combined = binary::run_combined(&ps);
                println!("{}", binary::render(&individual, Some(&combined)));
            }
            "figure1" => {
                let p = self.pipeline(2018);
                println!("{}", figures::figure1(p));
            }
            "figure2" => println!("{}", figures::figure2(2018, self.config.seed, 5)),
            "figure3" => {
                println!(
                    "Figure 3 - original code:\n{}",
                    figures::figure3(self.config.seed)
                );
            }
            "figure4" => {
                let [a, b] = figures::figure4(2018, self.config.seed);
                println!("Figure 4a - first NCT transform:\n{a}");
                println!("Figure 4b - second NCT transform:\n{b}");
            }
            "figure5" => {
                let [a, b] = figures::figure5(2018, self.config.seed);
                println!("Figure 5a - first CT transform:\n{a}");
                println!("Figure 5b - second CT transform (of 5a):\n{b}");
            }
            "ablation-features" => self.ablation_features(),
            "ablation-chain" => self.ablation_chain(),
            "ablation-grouping" => self.ablation_grouping(),
            "feature-importance" => self.feature_importance(),
            "all" => {
                for t in [
                    "table1",
                    "table2",
                    "table3",
                    "table4",
                    "table5",
                    "table6",
                    "table7",
                    "table8",
                    "table9",
                    "table10",
                    "figure1",
                    "figure2",
                    "figure3",
                    "figure4",
                    "figure5",
                    "ablation-features",
                    "ablation-chain",
                    "ablation-grouping",
                    "feature-importance",
                ] {
                    self.run(t);
                }
            }
            other => {
                eprintln!("unknown target `{other}`; see --help");
                std::process::exit(2);
            }
        }
    }

    fn diversity(&mut self, year: u32) {
        let d = diversity::run(self.pipeline(year));
        println!("{}", diversity::render(&d));
        println!(
            "top-1 share {:.1}%  top-3 share {:.1}%\n",
            100.0 * d.top_share(),
            100.0 * d.top_k_share(3)
        );
    }

    /// Design-choice ablation: which feature families carry the
    /// attribution signal, and does information-gain selection keep it?
    fn ablation_features(&mut self) {
        let variants: [(&str, FeatureConfig); 4] = [
            ("lexical only", FeatureConfig::lexical_only()),
            ("lex+layout", FeatureConfig::without_syntactic()),
            ("full - dataflow", FeatureConfig::without_dataflow()),
            ("full", FeatureConfig::default()),
        ];
        let mut t = Table::new(vec!["Features", "Dim", "205-class avg", "ChatGPT set avg"])
            .with_title("Ablation: feature families (GCJ 2018, feature-based grouping)");
        for (name, features) in variants {
            let mut cfg = self.config.clone();
            cfg.features = features;
            let p = YearPipeline::build(2018, &cfg);
            let r = attribution::run(&p, attribution::Grouping::FeatureBased);
            t.row(vec![
                name.into(),
                p.oracle.extractor().dim().to_string(),
                format!("{:.1}", 100.0 * r.avg_accuracy()),
                format!("{:.1}", 100.0 * r.chatgpt_pct()),
            ]);
        }
        // Information-gain selection over the full set (the paper's
        // WEKA-style reduction).
        let p = self.pipeline(2018).clone();
        for k in [60usize, 120] {
            let r =
                attribution::run_with_selection(&p, attribution::Grouping::FeatureBased, Some(k));
            t.row(vec![
                format!("full, IG top-{k}"),
                k.to_string(),
                format!("{:.1}", 100.0 * r.avg_accuracy()),
                format!("{:.1}", 100.0 * r.chatgpt_pct()),
            ]);
        }
        println!("{t}");
    }

    /// Design-choice ablation: how fast do CT chains converge as a
    /// function of the stickiness parameter?
    fn ablation_chain(&mut self) {
        let mut t = Table::new(vec!["Stickiness", "Avg distinct styles (50-step CT)"])
            .with_title("Ablation: CT convergence vs stickiness (2018 pool)");
        let seed_src = figures::figure3(self.config.seed);
        for stickiness in [0.5, 0.7, 0.9, 0.95] {
            let mut pool = YearPool::calibrated(2018, self.config.seed);
            pool.ct_stickiness = stickiness;
            let transformer = Transformer::new(&pool);
            let mut totals = 0.0;
            let reps = 6;
            for rep in 0..reps {
                let mut rng =
                    Pcg64::seed_from(self.config.seed, &["ablate-chain", &rep.to_string()]);
                let out = run_ct(
                    &transformer,
                    &seed_src,
                    self.config.scale.transforms,
                    Origin::ChatGpt,
                    &mut rng,
                );
                let styles: Vec<usize> = out.iter().map(|s| s.pool_index).collect();
                totals += distinct_count(&styles) as f64;
            }
            t.row(vec![
                format!("{stickiness:.2}"),
                format!("{:.1}", totals / reps as f64),
            ]);
        }
        println!("{t}");
    }

    /// Which stylistic features give ChatGPT-transformed code away?
    /// Permutation importance of the binary (ChatGPT vs human) task,
    /// reported by feature name.
    fn feature_importance(&mut self) {
        use synthattr_ml::dataset::Dataset;
        use synthattr_ml::importance::top_permutation_features;
        let p = self.pipeline(2018).clone();
        // Balanced binary dataset, subsampled for the analysis forest.
        let mut ds = Dataset::new(2);
        let mut rng = Pcg64::seed_from(self.config.seed, &["importance"]);
        let take = p.transformed.len().min(400);
        for idx in rng.sample_indices(p.transformed.len(), take) {
            ds.push(p.transformed[idx].features.as_ref().clone(), 1);
        }
        for idx in rng.sample_indices(p.corpus.len(), take.min(p.corpus.len())) {
            ds.push(p.human_features[idx].clone(), 0);
        }
        let names = p.oracle.extractor().names();
        let top = top_permutation_features(&ds, 15, &mut rng);
        let mut t = Table::new(vec!["Rank", "Feature", "Permutation importance"])
            .with_title("What gives ChatGPT-transformed code away (GCJ 2018, binary task)");
        for (rank, (f, score)) in top.iter().enumerate() {
            t.row(vec![
                (rank + 1).to_string(),
                names[*f].clone(),
                format!("{score:.4}"),
            ]);
        }
        println!("{t}");
    }

    /// Deterministic cache accounting for every year pipeline this
    /// invocation built, on stdout so `repro_output.txt` records the
    /// single-parse frontend's behaviour. Hit/miss counters are
    /// worker-invariant pure functions of the inputs; wall-clock
    /// timing stays on stderr (see `report_frontend`) because it is
    /// machine-local.
    fn frontend_summary(&self) {
        if self.pipelines.is_empty() {
            return;
        }
        let mut years: Vec<u32> = self.pipelines.keys().copied().collect();
        years.sort_unstable();
        let mut t = Table::new(vec!["Year", "Parses", "Cache hits", "Hit rate"])
            .with_title("Single-parse frontend: artifact cache accounting");
        for year in years {
            let fe = &self.pipelines[&year].frontend;
            t.row(vec![
                year.to_string(),
                fe.cache_misses.to_string(),
                fe.cache_hits.to_string(),
                format!("{:.1}%", 100.0 * fe.hit_rate()),
            ]);
        }
        println!("{t}");
    }

    /// Design-choice ablation: naive vs feature-based grouping across
    /// years (the paper's core comparison, condensed).
    fn ablation_grouping(&mut self) {
        let mut t = Table::new(vec![
            "Year",
            "Naive set",
            "Naive ChatGPT%",
            "FB set",
            "FB ChatGPT%",
        ])
        .with_title("Ablation: grouping strategy");
        for &year in &YEARS {
            let p = self.pipeline(year).clone();
            let naive = attribution::run(&p, attribution::Grouping::Naive);
            let fb = attribution::run(&p, attribution::Grouping::FeatureBased);
            t.row(vec![
                year.to_string(),
                naive.set_size.to_string(),
                format!("{:.1}", 100.0 * naive.chatgpt_pct()),
                fb.set_size.to_string(),
                format!("{:.1}", 100.0 * fb.chatgpt_pct()),
            ]);
        }
        println!("{t}");
    }
}

/// One stderr line per pipeline build: how much of the frontend the
/// artifact cache absorbed, and what the frontend cost on this
/// machine.
fn report_frontend(year: u32, p: &YearPipeline) {
    let fe = &p.frontend;
    eprintln!(
        "[repro] GCJ {year} frontend: {} parses, {} cache hits ({:.1}% hit rate), {:.1} ms",
        fe.cache_misses,
        fe.cache_hits,
        100.0 * fe.hit_rate(),
        fe.frontend_ns as f64 / 1e6
    );
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut config = ExperimentConfig::paper();
    let mut targets = Vec::new();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--smoke" => config = ExperimentConfig::smoke(),
            "--seed" => {
                i += 1;
                config.seed = args.get(i).and_then(|s| s.parse().ok()).unwrap_or_else(|| {
                    eprintln!("--seed needs an integer");
                    std::process::exit(2);
                });
            }
            "--help" | "-h" => {
                println!(
                    "repro [--smoke] [--seed N] <target>...\n\
                     targets: table1..table10 figure1..figure5 \
                     ablation-features ablation-chain ablation-grouping \
                     feature-importance all"
                );
                return;
            }
            t => targets.push(t.to_string()),
        }
        i += 1;
    }
    if targets.is_empty() {
        targets.push("all".into());
    }
    let mut runner = Runner::new(config);
    for t in targets {
        runner.run(&t);
    }
    runner.frontend_summary();
}
