//! Shared fixtures for the benchmark harness and the `repro` binary.
//!
//! The `repro` binary regenerates every table and figure of the paper
//! (see `repro --help`); the benches under `benches/` drive the
//! in-repo [`harness`] (a criterion replacement, kept registry-free
//! for the offline build) over the substrates (frontend, features,
//! forest, transformation) and the end-to-end table pipelines at
//! smoke scale. Each bench emits one JSON line per target on stdout
//! for the `BENCH_*.json` trajectory files.

pub mod alloc_counter;
pub mod harness;

use synthattr_core::config::ExperimentConfig;
use synthattr_gen::challenges::ChallengeId;
use synthattr_gen::style::AuthorStyle;
use synthattr_util::Pcg64;

/// The three paper years.
pub const YEARS: [u32; 3] = [2017, 2018, 2019];

/// A deterministic set of generated C++ sources for micro-benchmarks.
pub fn sample_sources(n: usize) -> Vec<String> {
    let mut out = Vec::with_capacity(n);
    let challenges = ChallengeId::all();
    for i in 0..n {
        let mut rng = Pcg64::seed_from(0xBE7C, &["bench-src", &i.to_string()]);
        let style = AuthorStyle::sample(&mut rng);
        let ch = challenges[i % challenges.len()];
        out.push(ch.render_solution(&style, rng.fork(&["file"])));
    }
    out
}

/// The benchmark-scale experiment configuration (between smoke and
/// paper scale; large enough to be meaningful, small enough for
/// timed iteration).
pub fn bench_config() -> ExperimentConfig {
    let mut cfg = ExperimentConfig::smoke();
    cfg.scale.authors = 32;
    cfg.scale.challenges = 4;
    cfg.scale.transforms = 10;
    cfg.scale.n_trees = 40;
    cfg
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sample_sources_parse() {
        for s in sample_sources(8) {
            synthattr_lang::parse(&s).unwrap();
        }
    }

    #[test]
    fn bench_config_is_mid_scale() {
        let b = bench_config();
        let s = ExperimentConfig::smoke();
        let p = ExperimentConfig::paper();
        assert!(b.scale.authors >= s.scale.authors);
        assert!(b.scale.authors < p.scale.authors);
    }
}
