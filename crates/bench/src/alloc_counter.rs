//! A counting global allocator for allocation-profile benchmarks.
//!
//! [`CountingAllocator`] wraps the system allocator and counts every
//! allocation call and requested byte in relaxed atomics. A bench
//! binary opts in by declaring it as its global allocator:
//!
//! ```ignore
//! #[global_allocator]
//! static ALLOC: synthattr_bench::alloc_counter::CountingAllocator =
//!     synthattr_bench::alloc_counter::CountingAllocator;
//! ```
//!
//! and the harness's `Group::measure_allocs` then reports
//! `allocs_per_iter` / `alloc_bytes_per_iter` /
//! `peak_alloc_bytes` in each summary's JSON line. In a binary that
//! keeps the default allocator the counters simply stay at zero —
//! [`snapshot`], [`bytes_live`], and [`bytes_peak`] are always safe
//! to call.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

static ALLOC_CALLS: AtomicU64 = AtomicU64::new(0);
static ALLOC_BYTES: AtomicU64 = AtomicU64::new(0);
static LIVE_BYTES: AtomicU64 = AtomicU64::new(0);
static PEAK_BYTES: AtomicU64 = AtomicU64::new(0);

/// Adds `delta` live bytes and ratchets the high-water mark.
#[inline]
fn grow_live(delta: u64) {
    let live = LIVE_BYTES.fetch_add(delta, Ordering::Relaxed) + delta;
    PEAK_BYTES.fetch_max(live, Ordering::Relaxed);
}

/// The system allocator plus relaxed traffic counters and a live-set
/// gauge with a high-water mark.
///
/// The cumulative call/byte counters stay monotonic (the interesting
/// signal for the frontend cache is how much allocation work an
/// iteration *requests*); the live-bytes gauge additionally tracks
/// deallocations so the scale benches can report the peak resident
/// footprint of an out-of-core run.
pub struct CountingAllocator;

// SAFETY: defers every operation to `System`, which upholds the
// `GlobalAlloc` contract; the counter updates have no effect on the
// returned memory.
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        ALLOC_BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        grow_live(layout.size() as u64);
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        ALLOC_BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        grow_live(layout.size() as u64);
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        // Count only the growth; shrinking reallocs request nothing new.
        ALLOC_BYTES.fetch_add(
            new_size.saturating_sub(layout.size()) as u64,
            Ordering::Relaxed,
        );
        if new_size >= layout.size() {
            grow_live((new_size - layout.size()) as u64);
        } else {
            LIVE_BYTES.fetch_sub((layout.size() - new_size) as u64, Ordering::Relaxed);
        }
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        LIVE_BYTES.fetch_sub(layout.size() as u64, Ordering::Relaxed);
        System.dealloc(ptr, layout)
    }
}

/// Current totals as `(allocation_calls, requested_bytes)`.
///
/// Monotonic since process start; callers diff two snapshots around
/// the region of interest.
pub fn snapshot() -> (u64, u64) {
    (
        ALLOC_CALLS.load(Ordering::Relaxed),
        ALLOC_BYTES.load(Ordering::Relaxed),
    )
}

/// Bytes currently live (allocated and not yet freed).
///
/// Zero in binaries that keep the default allocator.
pub fn bytes_live() -> u64 {
    LIVE_BYTES.load(Ordering::Relaxed)
}

/// The live-bytes high-water mark since process start or the last
/// [`reset_peak`].
pub fn bytes_peak() -> u64 {
    PEAK_BYTES.load(Ordering::Relaxed)
}

/// Restarts the high-water mark at the current live-set size, so the
/// next [`bytes_peak`] reading covers only the region of interest.
///
/// Concurrent allocations may land between the load and the store;
/// with relaxed bench-grade accounting that slack is at most a few
/// in-flight allocations and never *hides* a peak reached after the
/// reset (the gauge ratchets up again immediately).
pub fn reset_peak() {
    PEAK_BYTES.store(LIVE_BYTES.load(Ordering::Relaxed), Ordering::Relaxed);
}

/// Serializes unit tests that reset or assert on the process-wide
/// gauge (they run in parallel threads of one test binary).
#[cfg(test)]
pub(crate) static TEST_GAUGE_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_is_monotonic_and_cheap() {
        // The test binary does not install the counting allocator, so
        // the counters stay frozen — but diffing must still be sound.
        let (a1, b1) = snapshot();
        let _v: Vec<u8> = Vec::with_capacity(4096);
        let (a2, b2) = snapshot();
        assert!(a2 >= a1);
        assert!(b2 >= b1);
    }

    #[test]
    fn peak_gauge_ratchets_and_resets() {
        let _guard = TEST_GAUGE_LOCK.lock().unwrap();
        // Drive the gauge directly (the test binary keeps the system
        // allocator, so the statics only move when we move them).
        reset_peak();
        let floor = bytes_peak();
        assert_eq!(floor, bytes_live());
        grow_live(10_000);
        assert_eq!(bytes_live(), floor + 10_000);
        assert_eq!(bytes_peak(), floor + 10_000);
        // Freeing drops the live gauge but never the mark.
        LIVE_BYTES.fetch_sub(10_000, Ordering::Relaxed);
        assert_eq!(bytes_live(), floor);
        assert_eq!(bytes_peak(), floor + 10_000);
        // Resetting re-anchors the mark at the (restored) live size.
        reset_peak();
        assert_eq!(bytes_peak(), floor);
    }
}
