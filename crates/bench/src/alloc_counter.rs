//! A counting global allocator for allocation-profile benchmarks.
//!
//! [`CountingAllocator`] wraps the system allocator and counts every
//! allocation call and requested byte in relaxed atomics. A bench
//! binary opts in by declaring it as its global allocator:
//!
//! ```ignore
//! #[global_allocator]
//! static ALLOC: synthattr_bench::alloc_counter::CountingAllocator =
//!     synthattr_bench::alloc_counter::CountingAllocator;
//! ```
//!
//! and the harness's `Group::measure_allocs` then reports
//! `allocs_per_iter` / `alloc_bytes_per_iter` in each summary's JSON
//! line. In a binary that keeps the default allocator the counters
//! simply stay at zero — [`snapshot`] is always safe to call.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

static ALLOC_CALLS: AtomicU64 = AtomicU64::new(0);
static ALLOC_BYTES: AtomicU64 = AtomicU64::new(0);

/// The system allocator plus two relaxed counters.
///
/// Deallocations are uncounted on purpose: the interesting signal for
/// the frontend cache is how much allocation work an iteration
/// *requests* (every parse builds a fresh AST; a cache hit builds
/// nothing), not the live-set size.
pub struct CountingAllocator;

// SAFETY: defers every operation to `System`, which upholds the
// `GlobalAlloc` contract; the counter updates have no effect on the
// returned memory.
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        ALLOC_BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        ALLOC_BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        // Count only the growth; shrinking reallocs request nothing new.
        ALLOC_BYTES.fetch_add(
            new_size.saturating_sub(layout.size()) as u64,
            Ordering::Relaxed,
        );
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

/// Current totals as `(allocation_calls, requested_bytes)`.
///
/// Monotonic since process start; callers diff two snapshots around
/// the region of interest.
pub fn snapshot() -> (u64, u64) {
    (
        ALLOC_CALLS.load(Ordering::Relaxed),
        ALLOC_BYTES.load(Ordering::Relaxed),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_is_monotonic_and_cheap() {
        // The test binary does not install the counting allocator, so
        // the counters stay frozen — but diffing must still be sound.
        let (a1, b1) = snapshot();
        let _v: Vec<u8> = Vec::with_capacity(4096);
        let (a2, b2) = snapshot();
        assert!(a2 >= a1);
        assert!(b2 >= b1);
    }
}
