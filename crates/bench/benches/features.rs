//! Feature-extraction benchmarks, including the family ablation
//! (lexical / +layout / full) called out in DESIGN.md.

use synthattr_bench::harness::Group;
use synthattr_bench::sample_sources;
use synthattr_features::{FeatureConfig, FeatureExtractor};

fn main() {
    let sources = sample_sources(32);
    let bytes: usize = sources.iter().map(String::len).sum();

    let mut group = Group::new("features");
    group.throughput_bytes(bytes as u64);

    for (name, cfg) in [
        ("lexical_only", FeatureConfig::lexical_only()),
        ("without_syntactic", FeatureConfig::without_syntactic()),
        ("full", FeatureConfig::default()),
    ] {
        let extractor = FeatureExtractor::new(cfg);
        group.bench(name, || {
            for s in &sources {
                std::hint::black_box(extractor.extract(s).unwrap());
            }
        });
    }

    // Pre-parsed path (what the pipelines actually use).
    let extractor = FeatureExtractor::new(FeatureConfig::default());
    let parsed: Vec<_> = sources
        .iter()
        .map(|s| (s.as_str(), synthattr_lang::parse(s).unwrap()))
        .collect();
    group.bench("full_preparsed", || {
        for (src, unit) in &parsed {
            std::hint::black_box(extractor.extract_parsed(src, unit));
        }
    });
}
