//! Feature-extraction benchmarks, including the family ablation
//! (lexical / +layout / full) called out in DESIGN.md.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use synthattr_bench::sample_sources;
use synthattr_features::{FeatureConfig, FeatureExtractor};

fn bench_features(c: &mut Criterion) {
    let sources = sample_sources(32);
    let bytes: usize = sources.iter().map(String::len).sum();

    let mut group = c.benchmark_group("features");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(4));
    group.warm_up_time(std::time::Duration::from_secs(1));
    group.throughput(Throughput::Bytes(bytes as u64));

    for (name, cfg) in [
        ("lexical_only", FeatureConfig::lexical_only()),
        ("without_syntactic", FeatureConfig::without_syntactic()),
        ("full", FeatureConfig::default()),
    ] {
        let extractor = FeatureExtractor::new(cfg);
        group.bench_function(name, |b| {
            b.iter(|| {
                for s in &sources {
                    std::hint::black_box(extractor.extract(s).unwrap());
                }
            })
        });
    }

    // Pre-parsed path (what the pipelines actually use).
    let extractor = FeatureExtractor::new(FeatureConfig::default());
    let parsed: Vec<_> = sources
        .iter()
        .map(|s| (s.as_str(), synthattr_lang::parse(s).unwrap()))
        .collect();
    group.bench_function("full_preparsed", |b| {
        b.iter(|| {
            for (src, unit) in &parsed {
                std::hint::black_box(extractor.extract_parsed(src, unit));
            }
        })
    });

    group.finish();
}

criterion_group!(benches, bench_features);
criterion_main!(benches);
