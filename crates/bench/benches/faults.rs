//! Fault-injection overhead: the chaos proxy vs. the bare simulator.
//!
//! Measures what resilience costs on the transformation hot path:
//!
//! * `nct/bare` — the plain `run_nct` driver, no service layer;
//! * `nct/rate0` / `nct/rate5` / `nct/rate20` — the resilient driver
//!   under the recoverable profile at 0%, 5%, and 20% fault rates
//!   (rate 0 isolates the proxy's bookkeeping overhead; the higher
//!   rates add real retry + validation + re-transform work);
//! * `ct/...` — the same sweep for the chaining protocol.
//!
//! Feeds `BENCH_faults.json` via `scripts/bench.sh` (the harness
//! prints one JSON line per benchmark on stdout).

use synthattr_bench::harness::Group;
use synthattr_bench::sample_sources;
use synthattr_faults::drivers::{run_ct_resilient, run_nct_resilient};
use synthattr_faults::{FaultProfile, FaultyTransformer};
use synthattr_gen::corpus::Origin;
use synthattr_gpt::chain::{run_ct, run_nct};
use synthattr_gpt::pool::YearPool;
use synthattr_gpt::transform::Transformer;
use synthattr_util::Pcg64;

const STEPS: usize = 10;

fn main() {
    let sources = sample_sources(4);
    let seed = &sources[0];
    let pool = YearPool::calibrated(2018, 1);
    let bare = Transformer::new(&pool);

    let mut group = Group::new("faults");

    group.bench("nct/bare", || {
        let mut rng = Pcg64::new(11);
        std::hint::black_box(run_nct(&bare, seed, STEPS, Origin::ChatGpt, &mut rng));
    });
    group.bench("ct/bare", || {
        let mut rng = Pcg64::new(12);
        std::hint::black_box(run_ct(&bare, seed, STEPS, Origin::ChatGpt, &mut rng));
    });

    for (label, rate) in [("rate0", 0.0), ("rate5", 0.05), ("rate20", 0.20)] {
        let profile = FaultProfile::recoverable(0xC4A05, rate);
        let svc = FaultyTransformer::new(&pool, profile.plan(), profile.policy.clone());
        group.bench(&format!("nct/{label}"), || {
            let mut rng = Pcg64::new(11);
            let mut cx = profile.stream_cx(1);
            std::hint::black_box(
                run_nct_resilient(
                    &svc,
                    seed,
                    STEPS,
                    Origin::ChatGpt,
                    &mut rng,
                    "bench",
                    &mut cx,
                )
                .unwrap(),
            );
        });
        group.bench(&format!("ct/{label}"), || {
            let mut rng = Pcg64::new(12);
            let mut cx = profile.stream_cx(1);
            std::hint::black_box(
                run_ct_resilient(
                    &svc,
                    seed,
                    STEPS,
                    Origin::ChatGpt,
                    &mut rng,
                    "bench",
                    &mut cx,
                )
                .unwrap(),
            );
        });
    }
}
