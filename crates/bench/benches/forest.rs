//! Random-forest benchmarks, including the forest-size ablation
//! called out in DESIGN.md.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use synthattr_ml::dataset::Dataset;
use synthattr_ml::forest::{ForestConfig, RandomForest};
use synthattr_ml::select::select_top_k;
use synthattr_util::Pcg64;

/// A synthetic multi-class dataset shaped like the attribution task
/// (many classes, wide features).
fn synthetic(n_classes: usize, per_class: usize, dim: usize, seed: u64) -> Dataset {
    let mut rng = Pcg64::new(seed);
    let mut ds = Dataset::new(n_classes);
    // Per-class centroids.
    let centroids: Vec<Vec<f64>> = (0..n_classes)
        .map(|_| (0..dim).map(|_| rng.next_f64() * 4.0).collect())
        .collect();
    for (label, centroid) in centroids.iter().enumerate() {
        for _ in 0..per_class {
            let row = centroid
                .iter()
                .map(|&c| c + rng.next_gaussian(0.0, 0.6))
                .collect();
            ds.push(row, label);
        }
    }
    ds
}

fn bench_forest(c: &mut Criterion) {
    let train = synthetic(24, 12, 150, 1);
    let test = synthetic(24, 4, 150, 2);

    let mut group = c.benchmark_group("forest");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(6));
    group.warm_up_time(std::time::Duration::from_secs(1));

    for n_trees in [25usize, 50, 100] {
        group.bench_with_input(
            BenchmarkId::new("train", n_trees),
            &n_trees,
            |b, &n_trees| {
                let cfg = ForestConfig {
                    n_trees,
                    ..ForestConfig::default()
                };
                b.iter(|| {
                    std::hint::black_box(RandomForest::fit(&train, &cfg, &mut Pcg64::new(7)))
                })
            },
        );
    }

    let forest = RandomForest::fit(&train, &ForestConfig::default(), &mut Pcg64::new(7));
    group.bench_function("predict_batch", |b| {
        b.iter(|| std::hint::black_box(forest.predict_all(&test)))
    });

    group.bench_function("info_gain_selection", |b| {
        b.iter(|| std::hint::black_box(select_top_k(&train, 50)))
    });

    // Feature-selection ablation: training on the top-50 projection.
    let projected = train.project(&select_top_k(&train, 50));
    group.bench_function("train_selected_features", |b| {
        let cfg = ForestConfig::default();
        b.iter(|| std::hint::black_box(RandomForest::fit(&projected, &cfg, &mut Pcg64::new(7))))
    });

    group.finish();
}

criterion_group!(benches, bench_forest);
criterion_main!(benches);
