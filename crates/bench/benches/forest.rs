//! Random-forest benchmarks, including the forest-size ablation
//! called out in DESIGN.md.
//!
//! Runs under [`CountingAllocator`], so every row carries allocator
//! traffic and the live-heap high-water mark (`peak_alloc_bytes`)
//! next to the wall-clock numbers.

use synthattr_bench::alloc_counter::CountingAllocator;
use synthattr_bench::harness::Group;
use synthattr_ml::dataset::Dataset;
use synthattr_ml::forest::{ForestConfig, RandomForest};
use synthattr_ml::select::select_top_k;
use synthattr_util::Pcg64;

#[global_allocator]
static ALLOC: CountingAllocator = CountingAllocator;

/// A synthetic multi-class dataset shaped like the attribution task
/// (many classes, wide features).
fn synthetic(n_classes: usize, per_class: usize, dim: usize, seed: u64) -> Dataset {
    let mut rng = Pcg64::new(seed);
    let mut ds = Dataset::new(n_classes);
    // Per-class centroids.
    let centroids: Vec<Vec<f64>> = (0..n_classes)
        .map(|_| (0..dim).map(|_| rng.next_f64() * 4.0).collect())
        .collect();
    for (label, centroid) in centroids.iter().enumerate() {
        for _ in 0..per_class {
            let row = centroid
                .iter()
                .map(|&c| c + rng.next_gaussian(0.0, 0.6))
                .collect();
            ds.push(row, label);
        }
    }
    ds
}

fn main() {
    let train = synthetic(24, 12, 150, 1);
    let test = synthetic(24, 4, 150, 2);

    let mut group = Group::new("forest");
    group.measure_allocs(true);

    for n_trees in [25usize, 50, 100] {
        let cfg = ForestConfig {
            n_trees,
            ..ForestConfig::default()
        };
        group.bench(&format!("train/{n_trees}"), || {
            std::hint::black_box(RandomForest::fit(&train, &cfg, &mut Pcg64::new(7)));
        });
    }

    // The naive-splitter baseline (same seeds, bit-identical forest):
    // scripts/bench.sh compares train/50 against this to report the
    // fast-path speedup in the same run.
    let cfg_50 = ForestConfig {
        n_trees: 50,
        ..ForestConfig::default()
    };
    group.bench("train_reference/50", || {
        std::hint::black_box(RandomForest::fit_reference(
            &train,
            &cfg_50,
            &mut Pcg64::new(7),
        ));
    });

    let forest = RandomForest::fit(&train, &ForestConfig::default(), &mut Pcg64::new(7));
    group.bench("predict_serial", || {
        for i in 0..test.len() {
            std::hint::black_box(forest.predict(test.row(i)));
        }
    });
    group.bench("predict_batch", || {
        std::hint::black_box(forest.predict_all(&test));
    });

    group.bench("info_gain_selection", || {
        std::hint::black_box(select_top_k(&train, 50));
    });

    // Feature-selection ablation: training on the top-50 projection.
    let projected = train.project(&select_top_k(&train, 50));
    let cfg = ForestConfig::default();
    group.bench("train_selected_features", || {
        std::hint::black_box(RandomForest::fit(&projected, &cfg, &mut Pcg64::new(7)));
    });
}
