//! End-to-end benchmarks: one per paper table pipeline, at bench
//! scale. These are the "regenerates Table N" targets of DESIGN.md
//! measured as workloads (the `repro` binary prints the actual
//! tables).

use synthattr_bench::bench_config;
use synthattr_bench::harness::Group;
use synthattr_core::experiments::{attribution, binary, diversity, styles};
use synthattr_core::pipeline::YearPipeline;

fn main() {
    let cfg = bench_config();
    // The pipeline build (corpus + oracle + transformations) is itself
    // the Table I/II workload.
    let mut group = Group::new("tables");

    group.bench("pipeline_build_tables_1_2", || {
        std::hint::black_box(YearPipeline::build(2018, &cfg));
    });

    let pipeline = YearPipeline::build(2018, &cfg);

    group.bench("table4_style_counts", || {
        std::hint::black_box(styles::run(&pipeline));
    });

    group.bench("table5_7_diversity", || {
        std::hint::black_box(diversity::run(&pipeline));
    });

    group.bench("table8_attribution_naive", || {
        std::hint::black_box(attribution::run(&pipeline, attribution::Grouping::Naive));
    });

    group.bench("table9_attribution_feature_based", || {
        std::hint::black_box(attribution::run(
            &pipeline,
            attribution::Grouping::FeatureBased,
        ));
    });

    group.bench("table10_binary", || {
        std::hint::black_box(binary::run_individual(&pipeline));
    });
}
