//! End-to-end benchmarks: one per paper table pipeline, at bench
//! scale. These are the "regenerates Table N" targets of DESIGN.md
//! measured as workloads (the `repro` binary prints the actual
//! tables).

use criterion::{criterion_group, criterion_main, Criterion};
use synthattr_bench::bench_config;
use synthattr_core::experiments::{attribution, binary, diversity, styles};
use synthattr_core::pipeline::YearPipeline;

fn bench_tables(c: &mut Criterion) {
    let cfg = bench_config();
    // The pipeline build (corpus + oracle + transformations) is itself
    // the Table I/II workload.
    let mut group = c.benchmark_group("tables");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(6));
    group.warm_up_time(std::time::Duration::from_secs(1));

    group.bench_function("pipeline_build_tables_1_2", |b| {
        b.iter(|| std::hint::black_box(YearPipeline::build(2018, &cfg)))
    });

    let pipeline = YearPipeline::build(2018, &cfg);

    group.bench_function("table4_style_counts", |b| {
        b.iter(|| std::hint::black_box(styles::run(&pipeline)))
    });

    group.bench_function("table5_7_diversity", |b| {
        b.iter(|| std::hint::black_box(diversity::run(&pipeline)))
    });

    group.bench_function("table8_attribution_naive", |b| {
        b.iter(|| {
            std::hint::black_box(attribution::run(&pipeline, attribution::Grouping::Naive))
        })
    });

    group.bench_function("table9_attribution_feature_based", |b| {
        b.iter(|| {
            std::hint::black_box(attribution::run(
                &pipeline,
                attribution::Grouping::FeatureBased,
            ))
        })
    });

    group.bench_function("table10_binary", |b| {
        b.iter(|| std::hint::black_box(binary::run_individual(&pipeline)))
    });

    group.finish();
}

criterion_group!(benches, bench_tables);
criterion_main!(benches);
