//! Corpus scale-out sweep: 204 / 2 000 / 20 000 authors end to end.
//!
//! Each cell runs three one-shot phases (the 20k build takes minutes,
//! so `bench_once` times a single execution instead of sampling for a
//! median):
//!
//! * `build/<authors>` — stream the year corpus in 256-author chunks
//!   ([`stream_year`]), featurize each chunk on the worker pool, and
//!   append the rows to two on-disk [`ColumnStore`]s (train + a
//!   per-author reservoir hold-out picked by [`reservoir_holdout`]).
//!   No chunk outlives its append, so the peak heap stays flat as the
//!   author count grows 100×.
//! * `train/<authors>` — shard-parallel forest training straight from
//!   the train store ([`RandomForest::fit_sharded`]); only one shard's
//!   rows are resident per worker at a time.
//! * `eval/<authors>` — stream the hold-out store and score the
//!   forest; an `accuracy/<authors>` JSON row records the resulting
//!   accuracy-vs-scale point next to the timing rows.
//!
//! The binary installs [`CountingAllocator`], so every row carries
//! `peak_alloc_bytes` — the live-heap high-water mark of that phase,
//! the in-process stand-in for peak RSS. `scripts/bench.sh scale`
//! lands the rows in `BENCH_scale.json`.
//!
//! `SYNTHATTR_SCALE_AUTHORS` (comma-separated, default
//! `204,2000,20000`) overrides the sweep — the verify script's smoke
//! pass sets it to a small value.

use std::io::Write as _;
use std::path::PathBuf;
use synthattr_bench::alloc_counter::CountingAllocator;
use synthattr_bench::harness::{Group, ENV_JSON_PATH};
use synthattr_features::{FeatureConfig, FeatureExtractor};
use synthattr_gen::corpus::{stream_year, YearSpec};
use synthattr_ml::colstore::{ColumnStore, ColumnStoreWriter};
use synthattr_ml::cv::reservoir_holdout;
use synthattr_ml::forest::{ForestConfig, RandomForest};
use synthattr_ml::source::for_each_row;
use synthattr_util::{pool, Pcg64};

#[global_allocator]
static ALLOC: CountingAllocator = CountingAllocator;

/// Challenges per author: three quarters of paper scale keeps the 20k
/// cell well under a minute while leaving 5 train rows per class
/// after the one-row holdout.
const CHALLENGES: usize = 6;
/// Authors generated (and featurized) per streamed chunk.
const CHUNK_AUTHORS: usize = 256;
/// Rows per column chunk in the on-disk stores.
const CHUNK_ROWS: usize = 1024;
/// Forest size for the sweep (accuracy trend, not peak accuracy).
const N_TREES: usize = 96;
/// Training shards: how many row ranges are resident at once.
const N_SHARDS: usize = 8;
/// Root seed shared by every cell (same seed as the corpus tests).
const SEED: u64 = 41;

fn author_counts() -> Vec<usize> {
    std::env::var("SYNTHATTR_SCALE_AUTHORS")
        .ok()
        .map(|v| {
            v.split(',')
                .filter_map(|s| s.trim().parse().ok())
                .filter(|&n| n > 0)
                .collect()
        })
        .filter(|v: &Vec<usize>| !v.is_empty())
        .unwrap_or_else(|| vec![204, 2000, 20000])
}

/// Emits a non-harness JSON row (the accuracy point) to the same
/// sinks as the harness: stdout, plus the [`ENV_JSON_PATH`] tee.
fn emit_row(json: &str) {
    println!("{json}");
    if let Ok(path) = std::env::var(ENV_JSON_PATH) {
        if let Ok(mut file) = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)
        {
            let _ = writeln!(file, "{json}");
        }
    }
}

fn store_path(tag: &str, authors: usize) -> PathBuf {
    let mut path = std::env::temp_dir();
    path.push(format!(
        "synthattr_scale_{}_{tag}_{authors}.cols",
        std::process::id()
    ));
    path
}

fn main() {
    let mut group = Group::new("scale");
    group.measure_allocs(true);
    let extractor = FeatureExtractor::new(FeatureConfig::default());
    let workers = pool::resolve_workers(None);

    for authors in author_counts() {
        let spec = YearSpec::tiny(2018, authors, CHALLENGES);
        let n_rows = authors * spec.challenges.len();

        // The label sequence is known before generation (author-major
        // order), so the per-author reservoir hold-out — one of each
        // author's solutions — is drawn up front and the build phase
        // routes each sample to the right store in a single pass.
        let fold = reservoir_holdout(
            (0..authors).flat_map(|a| std::iter::repeat_n(a, spec.challenges.len())),
            authors,
            1,
            Pcg64::seed_from(SEED, &["scale-fold", &authors.to_string()]),
        );
        let mut in_test = vec![false; n_rows];
        for &i in &fold.test {
            in_test[i] = true;
        }

        let train_path = store_path("train", authors);
        let test_path = store_path("test", authors);
        let mut stores: Option<(ColumnStore, ColumnStore)> = None;
        group.bench_once(&format!("build/{authors}"), || {
            let mut train_w =
                ColumnStoreWriter::create(&train_path, extractor.dim(), authors, CHUNK_ROWS)
                    .expect("create train store");
            let mut test_w =
                ColumnStoreWriter::create(&test_path, extractor.dim(), authors, CHUNK_ROWS)
                    .expect("create test store");
            let mut row = 0usize;
            for chunk in stream_year(&spec, SEED, CHUNK_AUTHORS) {
                let rows = pool::parallel_map_workers(workers, chunk, |sample| {
                    (
                        extractor
                            .extract(&sample.source)
                            .expect("generated sample must parse"),
                        sample.author,
                    )
                });
                for (features, label) in rows {
                    let w = if in_test[row] {
                        &mut test_w
                    } else {
                        &mut train_w
                    };
                    w.push_row(&features, label).expect("push row");
                    row += 1;
                }
            }
            assert_eq!(row, n_rows);
            stores = Some((
                train_w.finish().expect("finish train store"),
                test_w.finish().expect("finish test store"),
            ));
        });
        let (train_store, test_store) = stores.expect("build phase ran");

        let config = ForestConfig {
            n_trees: N_TREES,
            ..ForestConfig::default()
        };
        let mut forest: Option<RandomForest> = None;
        group.bench_once(&format!("train/{authors}"), || {
            let mut rng = Pcg64::seed_from(SEED, &["scale-train", &authors.to_string()]);
            forest = Some(
                RandomForest::fit_sharded(&train_store, N_SHARDS, &config, &mut rng)
                    .expect("sharded training"),
            );
        });
        let forest = forest.expect("train phase ran");

        let mut correct = 0usize;
        let mut total = 0usize;
        group.bench_once(&format!("eval/{authors}"), || {
            for_each_row(&test_store, CHUNK_ROWS, |features, label| {
                if forest.predict(features) == label {
                    correct += 1;
                }
                total += 1;
            })
            .expect("stream hold-out store");
        });
        assert_eq!(total, fold.test.len());

        let accuracy = correct as f64 / total.max(1) as f64;
        emit_row(&format!(
            "{{\"group\":\"scale\",\"bench\":\"accuracy/{authors}\",\"authors\":{authors},\
             \"challenges\":{CHALLENGES},\"train_rows\":{},\"test_rows\":{total},\
             \"dim\":{},\"n_trees\":{N_TREES},\"n_shards\":{N_SHARDS},\
             \"accuracy\":{accuracy:.4}}}",
            train_store.len(),
            extractor.dim(),
        ));
        eprintln!(
            "scale/accuracy/{authors}: {correct}/{total} = {accuracy:.4} \
             ({} train rows, dim {})",
            train_store.len(),
            extractor.dim(),
        );

        drop((train_store, test_store));
        let _ = std::fs::remove_file(&train_path);
        let _ = std::fs::remove_file(&test_path);
    }
}
