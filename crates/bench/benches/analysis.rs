//! Analyzer throughput benchmarks: full lint (resolve + passes) and
//! semantic fingerprinting over a generated 2017 corpus.
//!
//! The JSON lines include `units` iterated per measurement so
//! `scripts/bench.sh` (and readers) can derive units/sec from
//! `median_ns`: `units / (median_ns / 1e9)`.

use std::sync::Arc;
use synthattr_analysis::{dead_stores, fingerprint, resolve, use_before_init, Analyzer, Cfg};
use synthattr_bench::harness::Group;
use synthattr_features::incr::ItemFeatures;
use synthattr_features::layout::RegionLayout;
use synthattr_features::{FeatureConfig, FeatureExtractor};
use synthattr_gen::corpus::{generate_year, Origin, YearSpec};
use synthattr_gpt::incr::{try_run_ct_steps_cached, FrontendCache};
use synthattr_gpt::pool::YearPool;
use synthattr_gpt::transform::Transformer;
use synthattr_util::Pcg64;

fn main() {
    let spec = YearSpec::tiny(2017, 32, 4);
    let corpus = generate_year(&spec, 0xBE7C);
    let sources: Vec<&str> = corpus.samples.iter().map(|s| s.source.as_str()).collect();
    let units = sources.len();
    let bytes: usize = sources.iter().map(|s| s.len()).sum();
    let parsed: Vec<_> = sources
        .iter()
        .map(|s| synthattr_lang::parse(s).unwrap())
        .collect();

    eprintln!("analysis bench corpus: {units} units, {bytes} bytes (2017)");

    let mut group = Group::new("analysis");
    group.throughput_bytes(bytes as u64);

    let analyzer = Analyzer::new();
    group.bench(&format!("lint/{units}"), || {
        for s in &sources {
            std::hint::black_box(analyzer.analyze_source(s).unwrap());
        }
    });

    // Pre-parsed paths: what the pipeline gates actually pay.
    group.bench(&format!("lint_preparsed/{units}"), || {
        for u in &parsed {
            std::hint::black_box(analyzer.analyze(u));
        }
    });
    group.bench(&format!("resolve_preparsed/{units}"), || {
        for u in &parsed {
            std::hint::black_box(resolve(u));
        }
    });
    group.bench(&format!("fingerprint_preparsed/{units}"), || {
        for u in &parsed {
            std::hint::black_box(fingerprint(u));
        }
    });

    // Dataflow rows: CFG construction alone, then the full fixed-point
    // verdict path (reaching defs + liveness + definite-uninit walked
    // through `use_before_init` / `dead_stores`) over the same corpus.
    group.bench(&format!("cfg_preparsed/{units}"), || {
        for u in &parsed {
            std::hint::black_box(Cfg::build_all(u));
        }
    });
    group.bench(&format!("dataflow_preparsed/{units}"), || {
        for u in &parsed {
            for cfg in &Cfg::build_all(u) {
                std::hint::black_box(use_before_init(cfg));
                std::hint::black_box(dead_stores(cfg));
            }
        }
    });

    // Cached vs whole-unit dataflow-family extraction over a 256-step
    // CT chain: the workload the incremental frontend actually sees.
    // Each iteration of the cached row starts from a cold per-item
    // cache and shares partials across all 256 steps (chains change a
    // handful of items per step, so most lookups hit); the whole-unit
    // row rebuilds every function's CFG at every step. Both compute
    // the identical df.* vector (proved bit-for-bit by the features
    // crate's parts-vs-whole suite and the core A/B grid).
    let chain_steps = 256usize;
    let chain_pool = YearPool::calibrated(2018, 5);
    let chain_gpt = Transformer::new(&chain_pool);
    let seed_src = sources[0];
    let seed_unit = synthattr_lang::parse(seed_src).unwrap();
    let steps = {
        let mut rng = Pcg64::new(0xDF_256);
        let mut fc = FrontendCache::new();
        try_run_ct_steps_cached(
            &chain_gpt,
            seed_src,
            &seed_unit,
            chain_steps,
            Origin::ChatGpt,
            &mut rng,
            &mut fc,
        )
        .unwrap()
    };
    let df_only = FeatureConfig {
        lexical: false,
        layout: false,
        syntactic: false,
        ..FeatureConfig::default()
    };
    let ex = FeatureExtractor::new(df_only);

    group.bench(&format!("dataflow_whole/chain{chain_steps}"), || {
        for s in &steps {
            std::hint::black_box(ex.extract_parsed(&s.sample.source, &s.unit));
        }
    });
    group.bench(&format!("dataflow_cached/chain{chain_steps}"), || {
        let mut fc = FrontendCache::new();
        for s in &steps {
            let items: Vec<Arc<ItemFeatures>> = s
                .regions
                .item_hashes
                .iter()
                .zip(&s.unit.items)
                .map(|(&h, item)| fc.item_features_for(h, item))
                .collect();
            std::hint::black_box(ex.extract_from_parts(
                s.sample.source.len(),
                items.iter().map(|a| a.as_ref()),
                std::iter::empty::<(usize, &RegionLayout)>(),
            ));
        }
    });
}
