//! Analyzer throughput benchmarks: full lint (resolve + passes) and
//! semantic fingerprinting over a generated 2017 corpus.
//!
//! The JSON lines include `units` iterated per measurement so
//! `scripts/bench.sh` (and readers) can derive units/sec from
//! `median_ns`: `units / (median_ns / 1e9)`.

use synthattr_analysis::{fingerprint, resolve, Analyzer};
use synthattr_bench::harness::Group;
use synthattr_gen::corpus::{generate_year, YearSpec};

fn main() {
    let spec = YearSpec::tiny(2017, 32, 4);
    let corpus = generate_year(&spec, 0xBE7C);
    let sources: Vec<&str> = corpus.samples.iter().map(|s| s.source.as_str()).collect();
    let units = sources.len();
    let bytes: usize = sources.iter().map(|s| s.len()).sum();
    let parsed: Vec<_> = sources
        .iter()
        .map(|s| synthattr_lang::parse(s).unwrap())
        .collect();

    eprintln!("analysis bench corpus: {units} units, {bytes} bytes (2017)");

    let mut group = Group::new("analysis");
    group.throughput_bytes(bytes as u64);

    let analyzer = Analyzer::new();
    group.bench(&format!("lint/{units}"), || {
        for s in &sources {
            std::hint::black_box(analyzer.analyze_source(s).unwrap());
        }
    });

    // Pre-parsed paths: what the pipeline gates actually pay.
    group.bench(&format!("lint_preparsed/{units}"), || {
        for u in &parsed {
            std::hint::black_box(analyzer.analyze(u));
        }
    });
    group.bench(&format!("resolve_preparsed/{units}"), || {
        for u in &parsed {
            std::hint::black_box(resolve(u));
        }
    });
    group.bench(&format!("fingerprint_preparsed/{units}"), || {
        for u in &parsed {
            std::hint::black_box(fingerprint(u));
        }
    });
}
