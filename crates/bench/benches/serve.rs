//! Serving-path benchmark: a real `synthattr-serve` server on a
//! loopback socket under seeded open-loop load.
//!
//! Scenarios:
//!
//! * `attribute/serial` — one keep-alive client, per-request latency
//!   with no coalescing opportunity (every batch is a batch of one);
//! * `attribute/concurrent8` — eight keep-alive clients hammering the
//!   same server, which is where micro-batching earns its keep; the
//!   summary's p50/p95 are per-request latencies across all clients,
//!   and a separate `throughput` line reports sustained req/s;
//! * `healthz/serial` — the no-model control: pure parse + route +
//!   serialize overhead;
//! * `sweep/cN` (N ∈ 1, 8, 64, 256) — the saturating sweep: N
//!   keep-alive clients against a fixed 4-worker pool, which is where
//!   connection rotation earns its keep (workers park idle
//!   connections instead of camping, so 256 clients don't need 256
//!   threads server-side);
//! * `sweep+loris16/cN` — the same sweep with 16 slow-loris
//!   connections (from `synthattr_faults::TrafficProfile`) held open
//!   in the background, reconnecting whenever the header deadline
//!   cuts them — the survivability overhead, measured.
//!
//! Request sources are drawn per-client from a seeded [`Pcg64`], so
//! two runs issue the identical request streams. The registry is
//! preloaded and each client issues one discarded warmup request
//! before its measured stream — first-request latencies measure the
//! server, not connection or queue hand-off. Honors
//! `SYNTHATTR_BENCH_SAMPLES` (requests per scenario, default 256).
//! Feeds `BENCH_serve.json` via `scripts/bench.sh`.

use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::Instant;

use synthattr_bench::harness::Summary;
use synthattr_core::config::ExperimentConfig;
use synthattr_faults::{HostileKind, TrafficProfile};
use synthattr_serve::client::Client;
use synthattr_serve::server::{RunningServer, ServeConfig, Server};
use synthattr_util::Pcg64;

const YEAR: u32 = 2018;
const CLIENTS: usize = 8;
const SWEEP: [usize; 4] = [1, 8, 64, 256];
const LORIS: usize = 16;

fn samples_per_scenario() -> usize {
    std::env::var("SYNTHATTR_BENCH_SAMPLES")
        .ok()
        .and_then(|v| v.trim().parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or(256)
}

fn sources() -> Vec<String> {
    (0..16)
        .map(|i| {
            format!(
                "int work{i}(int x) {{ int y = x + {i}; return y * {m}; }}\n\
                 int main() {{ int acc = {i}; for (int k = 0; k < {n}; k = k + 1) {{ acc = acc + work{i}(k); }} return acc; }}\n",
                m = i + 1,
                n = 4 + i,
            )
        })
        .collect()
}

fn spawn_server() -> RunningServer {
    let mut config = ServeConfig::smoke();
    config.experiment = ExperimentConfig::smoke();
    config.years = vec![YEAR];
    config.rate = None;
    config.preload = true;
    // Connection rotation decouples the pool from the connection
    // count: workers park connections that yield no bytes, so a fixed
    // 4-worker pool serves every cell of the sweep — including 256
    // concurrent clients plus 16 hostile loris — without a
    // thread-per-connection anywhere.
    config.workers = Some(4);
    Server::bind("127.0.0.1:0", config)
        .expect("bind")
        .spawn()
        .expect("spawn")
}

/// One client's seeded request loop; returns per-request nanoseconds.
///
/// Issues one untimed warmup request after connecting — it absorbs
/// connection setup and the worker hand-off — and, when `ready` is
/// given, waits on it so every concurrent client starts its measured
/// stream together.
fn client_loop(
    server: &RunningServer,
    client_id: usize,
    requests: usize,
    sources: &[String],
    ready: Option<&std::sync::Barrier>,
) -> Vec<u128> {
    let mut rng = Pcg64::seed_from(0xB_E4C4, &["serve-load", &client_id.to_string()]);
    let mut client = Client::connect(server.addr()).expect("connect");
    let target = format!("/attribute?year={YEAR}");
    let warm = client
        .request("POST", &target, &[], sources[0].as_bytes())
        .expect("warmup");
    assert_eq!(warm.status, 200, "warmup failed: {}", warm.text());
    if let Some(barrier) = ready {
        barrier.wait();
    }
    let mut lat = Vec::with_capacity(requests);
    for _ in 0..requests {
        let src = &sources[rng.next_below(sources.len())];
        let started = Instant::now();
        let resp = client
            .request("POST", &target, &[], src.as_bytes())
            .expect("attribute");
        lat.push(started.elapsed().as_nanos());
        assert_eq!(resp.status, 200, "bench request failed: {}", resp.text());
    }
    lat
}

fn emit(summary: &Summary) {
    eprintln!("{}", summary.human_line());
    println!("{}", summary.json_line());
}

/// One sweep cell: `clients` concurrent keep-alive clients, shared
/// wall clock, emitted as a latency summary plus a throughput row.
fn sweep_cell(server: &RunningServer, tag: &str, clients: usize, n: usize, sources: &[String]) {
    let per_client = (n / clients).max(4);
    let ready = std::sync::Barrier::new(clients + 1);
    let (mut all, wall_ns): (Vec<u128>, u128) = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..clients)
            .map(|c| {
                let (server, sources, ready) = (&*server, &*sources, &ready);
                scope
                    .spawn(move || client_loop(server, 1_000 + c, per_client, sources, Some(ready)))
            })
            .collect();
        ready.wait();
        let wall = Instant::now();
        let all: Vec<u128> = handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect();
        (all, wall.elapsed().as_nanos())
    });
    all.sort_unstable();
    let bench = format!("{tag}/c{clients}");
    emit(&Summary::from_sorted("serve", &bench, &all, None));
    let requests = all.len();
    let req_per_s = requests as f64 / (wall_ns as f64 / 1e9).max(1e-12);
    eprintln!(
        "serve/{bench}: {req_per_s:.0} req/s sustained ({requests} requests, {clients} clients)"
    );
    println!(
        "{{\"group\":\"serve\",\"bench\":\"{bench}/throughput\",\"requests\":{requests},\
         \"clients\":{clients},\"wall_ns\":{wall_ns},\"req_per_s\":{req_per_s:.1}}}"
    );
}

/// Holds ~`LORIS` slow-loris connections open against the server for
/// the duration of the loaded sweep, reconnecting whenever the header
/// deadline cuts one. Scripts come from the fault layer's seeded
/// [`TrafficProfile`], so the hostile byte streams are reproducible.
fn with_loris_fleet(server: &RunningServer, body: impl FnOnce()) {
    let stop = AtomicBool::new(false);
    let addr = server.addr();
    let request = format!(
        "POST /attribute?year={YEAR} HTTP/1.1\r\nHost: synthattr\r\nContent-Length: 4\r\n\r\nvoid"
    )
    .into_bytes();
    std::thread::scope(|scope| {
        for i in 0..LORIS {
            let (stop, request) = (&stop, &request);
            let profile = TrafficProfile {
                loris_pause_ms: 150,
                ..TrafficProfile::new(0x10A15)
            };
            scope.spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    let Ok(mut stream) = TcpStream::connect(addr) else {
                        return;
                    };
                    let script = profile.script(HostileKind::SlowLoris, i, request);
                    let _ = script.play(&mut stream, |ms| {
                        let mut left = ms;
                        while left > 0 && !stop.load(Ordering::Relaxed) {
                            let step = left.min(50);
                            std::thread::sleep(std::time::Duration::from_millis(step));
                            left -= step;
                        }
                    });
                }
            });
        }
        body();
        stop.store(true, Ordering::Relaxed);
    });
}

fn main() {
    let n = samples_per_scenario();
    let sources = sources();
    let server = spawn_server();

    // Warm the cache and the batcher exactly once per source.
    for src in &sources {
        client_loop(&server, usize::MAX, 1, std::slice::from_ref(src), None);
    }

    // Serial: one client, no coalescing.
    let mut serial = client_loop(&server, 0, n, &sources, None);
    serial.sort_unstable();
    emit(&Summary::from_sorted(
        "serve",
        "attribute/serial",
        &serial,
        None,
    ));

    // Concurrent: 8 clients, shared wall clock for sustained req/s.
    // The barrier has one extra party — the main thread — so the wall
    // clock starts when every client is connected and warmed, not
    // before; warmup requests don't count toward throughput.
    let done = AtomicU64::new(0);
    let ready = std::sync::Barrier::new(CLIENTS + 1);
    let per_client = n.div_ceil(CLIENTS);
    let (mut all, wall_ns): (Vec<u128>, u128) = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..CLIENTS)
            .map(|c| {
                let server = &server;
                let sources = &sources;
                let done = &done;
                let ready = &ready;
                scope.spawn(move || {
                    let lat = client_loop(server, c + 1, per_client, sources, Some(ready));
                    done.fetch_add(lat.len() as u64, Ordering::Relaxed);
                    lat
                })
            })
            .collect();
        ready.wait();
        let wall = Instant::now();
        let all = handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect();
        (all, wall.elapsed().as_nanos())
    });
    all.sort_unstable();
    let concurrent = Summary::from_sorted("serve", "attribute/concurrent8", &all, None);
    emit(&concurrent);

    let requests = done.load(Ordering::Relaxed);
    let req_per_s = requests as f64 / (wall_ns as f64 / 1e9).max(1e-12);
    eprintln!("serve/attribute/throughput: {req_per_s:.0} req/s sustained ({requests} requests, {CLIENTS} clients)");
    println!(
        "{{\"group\":\"serve\",\"bench\":\"attribute/throughput\",\"requests\":{requests},\
         \"clients\":{CLIENTS},\"wall_ns\":{wall_ns},\"req_per_s\":{req_per_s:.1}}}"
    );

    // Control: routing + serialization floor, no model in the path.
    let mut client = Client::connect(server.addr()).expect("connect");
    let mut health = Vec::with_capacity(n);
    for _ in 0..n {
        let started = Instant::now();
        let resp = client
            .request("GET", "/healthz", &[], b"")
            .expect("healthz");
        health.push(started.elapsed().as_nanos());
        assert_eq!(resp.status, 200);
    }
    health.sort_unstable();
    emit(&Summary::from_sorted(
        "serve",
        "healthz/serial",
        &health,
        None,
    ));

    // The saturating sweep, clean and then under hostile background
    // load — the with/without delta is the survivability overhead.
    for clients in SWEEP {
        sweep_cell(&server, "sweep", clients, n, &sources);
    }
    with_loris_fleet(&server, || {
        for clients in SWEEP {
            sweep_cell(
                &server,
                &format!("sweep+loris{LORIS}"),
                clients,
                n,
                &sources,
            );
        }
    });

    server.shutdown();
}
