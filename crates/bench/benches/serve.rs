//! Serving-path benchmark: a real `synthattr-serve` server on a
//! loopback socket under seeded open-loop load.
//!
//! Scenarios:
//!
//! * `attribute/serial` — one keep-alive client, per-request latency
//!   with no coalescing opportunity (every batch is a batch of one);
//! * `attribute/concurrent8` — eight keep-alive clients hammering the
//!   same server, which is where micro-batching earns its keep; the
//!   summary's p50/p95 are per-request latencies across all clients,
//!   and a separate `throughput` line reports sustained req/s;
//! * `healthz/serial` — the no-model control: pure parse + route +
//!   serialize overhead.
//!
//! Request sources are drawn per-client from a seeded [`Pcg64`], so
//! two runs issue the identical request streams. The registry is
//! preloaded, the worker pool covers every concurrent client, and each
//! client issues one discarded warmup request before its measured
//! stream — first-request latencies measure the server, not connection
//! or queue hand-off. Honors `SYNTHATTR_BENCH_SAMPLES` (requests per
//! scenario, default 256). Feeds `BENCH_serve.json` via
//! `scripts/bench.sh`.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use synthattr_bench::harness::Summary;
use synthattr_core::config::ExperimentConfig;
use synthattr_serve::client::Client;
use synthattr_serve::server::{RunningServer, ServeConfig, Server};
use synthattr_util::Pcg64;

const YEAR: u32 = 2018;
const CLIENTS: usize = 8;

fn samples_per_scenario() -> usize {
    std::env::var("SYNTHATTR_BENCH_SAMPLES")
        .ok()
        .and_then(|v| v.trim().parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or(256)
}

fn sources() -> Vec<String> {
    (0..16)
        .map(|i| {
            format!(
                "int work{i}(int x) {{ int y = x + {i}; return y * {m}; }}\n\
                 int main() {{ int acc = {i}; for (int k = 0; k < {n}; k = k + 1) {{ acc = acc + work{i}(k); }} return acc; }}\n",
                m = i + 1,
                n = 4 + i,
            )
        })
        .collect()
}

fn spawn_server() -> RunningServer {
    let mut config = ServeConfig::smoke();
    config.experiment = ExperimentConfig::smoke();
    config.years = vec![YEAR];
    config.rate = None;
    config.preload = true;
    // A worker owns its keep-alive connection until the client hangs
    // up, so the pool must cover every concurrent bench client: with
    // fewer workers the late clients' first request absorbs the whole
    // queue wait (hundreds of ms against a ~2 ms median), and the
    // concurrent scenario measures queueing instead of batching.
    config.workers = Some(CLIENTS + 1);
    Server::bind("127.0.0.1:0", config)
        .expect("bind")
        .spawn()
        .expect("spawn")
}

/// One client's seeded request loop; returns per-request nanoseconds.
///
/// Issues one untimed warmup request after connecting — it absorbs
/// connection setup and the worker hand-off — and, when `ready` is
/// given, waits on it so every concurrent client starts its measured
/// stream together.
fn client_loop(
    server: &RunningServer,
    client_id: usize,
    requests: usize,
    sources: &[String],
    ready: Option<&std::sync::Barrier>,
) -> Vec<u128> {
    let mut rng = Pcg64::seed_from(0xB_E4C4, &["serve-load", &client_id.to_string()]);
    let mut client = Client::connect(server.addr()).expect("connect");
    let target = format!("/attribute?year={YEAR}");
    let warm = client
        .request("POST", &target, &[], sources[0].as_bytes())
        .expect("warmup");
    assert_eq!(warm.status, 200, "warmup failed: {}", warm.text());
    if let Some(barrier) = ready {
        barrier.wait();
    }
    let mut lat = Vec::with_capacity(requests);
    for _ in 0..requests {
        let src = &sources[rng.next_below(sources.len())];
        let started = Instant::now();
        let resp = client
            .request("POST", &target, &[], src.as_bytes())
            .expect("attribute");
        lat.push(started.elapsed().as_nanos());
        assert_eq!(resp.status, 200, "bench request failed: {}", resp.text());
    }
    lat
}

fn emit(summary: &Summary) {
    eprintln!("{}", summary.human_line());
    println!("{}", summary.json_line());
}

fn main() {
    let n = samples_per_scenario();
    let sources = sources();
    let server = spawn_server();

    // Warm the cache and the batcher exactly once per source.
    for src in &sources {
        client_loop(&server, usize::MAX, 1, std::slice::from_ref(src), None);
    }

    // Serial: one client, no coalescing.
    let mut serial = client_loop(&server, 0, n, &sources, None);
    serial.sort_unstable();
    emit(&Summary::from_sorted(
        "serve",
        "attribute/serial",
        &serial,
        None,
    ));

    // Concurrent: 8 clients, shared wall clock for sustained req/s.
    // The barrier has one extra party — the main thread — so the wall
    // clock starts when every client is connected and warmed, not
    // before; warmup requests don't count toward throughput.
    let done = AtomicU64::new(0);
    let ready = std::sync::Barrier::new(CLIENTS + 1);
    let per_client = n.div_ceil(CLIENTS);
    let (mut all, wall_ns): (Vec<u128>, u128) = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..CLIENTS)
            .map(|c| {
                let server = &server;
                let sources = &sources;
                let done = &done;
                let ready = &ready;
                scope.spawn(move || {
                    let lat = client_loop(server, c + 1, per_client, sources, Some(ready));
                    done.fetch_add(lat.len() as u64, Ordering::Relaxed);
                    lat
                })
            })
            .collect();
        ready.wait();
        let wall = Instant::now();
        let all = handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect();
        (all, wall.elapsed().as_nanos())
    });
    all.sort_unstable();
    let concurrent = Summary::from_sorted("serve", "attribute/concurrent8", &all, None);
    emit(&concurrent);

    let requests = done.load(Ordering::Relaxed);
    let req_per_s = requests as f64 / (wall_ns as f64 / 1e9).max(1e-12);
    eprintln!("serve/attribute/throughput: {req_per_s:.0} req/s sustained ({requests} requests, {CLIENTS} clients)");
    println!(
        "{{\"group\":\"serve\",\"bench\":\"attribute/throughput\",\"requests\":{requests},\
         \"clients\":{CLIENTS},\"wall_ns\":{wall_ns},\"req_per_s\":{req_per_s:.1}}}"
    );

    // Control: routing + serialization floor, no model in the path.
    let mut client = Client::connect(server.addr()).expect("connect");
    let mut health = Vec::with_capacity(n);
    for _ in 0..n {
        let started = Instant::now();
        let resp = client
            .request("GET", "/healthz", &[], b"")
            .expect("healthz");
        health.push(started.elapsed().as_nanos());
        assert_eq!(resp.status, 200);
    }
    health.sort_unstable();
    emit(&Summary::from_sorted(
        "serve",
        "healthz/serial",
        &health,
        None,
    ));

    server.shutdown();
}
