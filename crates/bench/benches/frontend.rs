//! Microbenchmarks for the C++ frontend: lexing, parsing, rendering.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use synthattr_bench::sample_sources;
use synthattr_lang::lexer::lex;
use synthattr_lang::render::{render, RenderStyle};
use synthattr_lang::parse;

fn bench_frontend(c: &mut Criterion) {
    let sources = sample_sources(32);
    let bytes: usize = sources.iter().map(String::len).sum();

    let mut group = c.benchmark_group("frontend");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(4));
    group.warm_up_time(std::time::Duration::from_secs(1));
    group.throughput(Throughput::Bytes(bytes as u64));

    group.bench_function("lex", |b| {
        b.iter(|| {
            for s in &sources {
                std::hint::black_box(lex(s).unwrap());
            }
        })
    });

    group.bench_function("parse", |b| {
        b.iter(|| {
            for s in &sources {
                std::hint::black_box(parse(s).unwrap());
            }
        })
    });

    let units: Vec<_> = sources.iter().map(|s| parse(s).unwrap()).collect();
    group.bench_function("render", |b| {
        let style = RenderStyle::default();
        b.iter(|| {
            for u in &units {
                std::hint::black_box(render(u, &style));
            }
        })
    });

    group.bench_function("roundtrip", |b| {
        let style = RenderStyle::default();
        b.iter_batched(
            || units.clone(),
            |units| {
                for u in units {
                    let text = render(&u, &style);
                    std::hint::black_box(parse(&text).unwrap());
                }
            },
            BatchSize::SmallInput,
        )
    });

    group.finish();
}

criterion_group!(benches, bench_frontend);
criterion_main!(benches);
