//! Microbenchmarks for the C++ frontend: lexing, parsing, rendering.

use synthattr_bench::harness::Group;
use synthattr_bench::sample_sources;
use synthattr_lang::lexer::lex;
use synthattr_lang::parse;
use synthattr_lang::render::{render, RenderStyle};

fn main() {
    let sources = sample_sources(32);
    let bytes: usize = sources.iter().map(String::len).sum();

    let mut group = Group::new("frontend");
    group.throughput_bytes(bytes as u64);

    group.bench("lex", || {
        for s in &sources {
            std::hint::black_box(lex(s).unwrap());
        }
    });

    group.bench("parse", || {
        for s in &sources {
            std::hint::black_box(parse(s).unwrap());
        }
    });

    let units: Vec<_> = sources.iter().map(|s| parse(s).unwrap()).collect();
    let style = RenderStyle::default();
    group.bench("render", || {
        for u in &units {
            std::hint::black_box(render(u, &style));
        }
    });

    group.bench("roundtrip", || {
        for u in &units {
            let text = render(u, &style);
            std::hint::black_box(parse(&text).unwrap());
        }
    });
}
