//! LLM-simulator benchmarks: single transformations and NCT/CT runs.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use synthattr_bench::sample_sources;
use synthattr_gen::corpus::Origin;
use synthattr_gpt::chain::{run_ct, run_nct};
use synthattr_gpt::pool::YearPool;
use synthattr_gpt::transform::Transformer;
use synthattr_util::Pcg64;

fn bench_transform(c: &mut Criterion) {
    let sources = sample_sources(8);
    let pool = YearPool::calibrated(2018, 1);
    let transformer = Transformer::new(&pool);

    let mut group = c.benchmark_group("transform");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(4));
    group.warm_up_time(std::time::Duration::from_secs(1));

    group.bench_function("single", |b| {
        b.iter(|| {
            let mut rng = Pcg64::new(3);
            for s in &sources {
                let idx = pool.sample_index(&mut rng);
                std::hint::black_box(transformer.transform(s, idx, &mut rng).unwrap());
            }
        })
    });

    for steps in [10usize, 25] {
        group.bench_with_input(BenchmarkId::new("nct", steps), &steps, |b, &steps| {
            b.iter(|| {
                let mut rng = Pcg64::new(4);
                std::hint::black_box(run_nct(
                    &transformer,
                    &sources[0],
                    steps,
                    Origin::ChatGpt,
                    &mut rng,
                ))
            })
        });
        group.bench_with_input(BenchmarkId::new("ct", steps), &steps, |b, &steps| {
            b.iter(|| {
                let mut rng = Pcg64::new(5);
                std::hint::black_box(run_ct(
                    &transformer,
                    &sources[0],
                    steps,
                    Origin::ChatGpt,
                    &mut rng,
                ))
            })
        });
    }

    group.finish();
}

criterion_group!(benches, bench_transform);
criterion_main!(benches);
