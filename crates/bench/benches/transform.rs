//! LLM-simulator benchmarks: single transformations and NCT/CT runs.

use synthattr_bench::harness::Group;
use synthattr_bench::sample_sources;
use synthattr_gen::corpus::Origin;
use synthattr_gpt::chain::{run_ct, run_nct};
use synthattr_gpt::pool::YearPool;
use synthattr_gpt::transform::Transformer;
use synthattr_util::Pcg64;

fn main() {
    let sources = sample_sources(8);
    let pool = YearPool::calibrated(2018, 1);
    let transformer = Transformer::new(&pool);

    let mut group = Group::new("transform");

    group.bench("single", || {
        let mut rng = Pcg64::new(3);
        for s in &sources {
            let idx = pool.sample_index(&mut rng);
            std::hint::black_box(transformer.transform(s, idx, &mut rng).unwrap());
        }
    });

    for steps in [10usize, 25] {
        group.bench(&format!("nct/{steps}"), || {
            let mut rng = Pcg64::new(4);
            std::hint::black_box(run_nct(
                &transformer,
                &sources[0],
                steps,
                Origin::ChatGpt,
                &mut rng,
            ));
        });
        group.bench(&format!("ct/{steps}"), || {
            let mut rng = Pcg64::new(5);
            std::hint::black_box(run_ct(
                &transformer,
                &sources[0],
                steps,
                Origin::ChatGpt,
                &mut rng,
            ));
        });
    }
}
