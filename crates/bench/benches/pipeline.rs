//! The single-parse frontend vs. the reference re-parse frontend,
//! end to end (ISSUE 5 acceptance: ≥ 1.5× median speedup in one run).
//!
//! Both sides build the *same* `YearPipeline` — the A/B suite in
//! `synthattr-core` proves the results bit-identical — so any timing
//! gap is pure frontend overhead:
//!
//! * `cached/plain` / `reference/plain` — fault-free build;
//! * `cached/chaos20` / `reference/chaos20` — the same build under
//!   the recoverable 20% fault profile (the fault layer's validator
//!   is one of the re-parse sites the cache eliminates: the reference
//!   service recomputes the parse + lint + fingerprint expectation of
//!   the input on every call and re-parses every candidate response;
//!   the cached service computes the expectation once per stream);
//!
//! The binary installs [`CountingAllocator`] as its global allocator
//! and the group reports `allocs_per_iter` / `alloc_bytes_per_iter`,
//! making the avoided AST churn visible next to the wall-clock.
//!
//! Feeds `BENCH_pipeline.json` via `scripts/bench.sh`; the script
//! prints the cached-vs-reference speedup from the medians.
//!
//! The config leans frontend-heavy on purpose (many transforms, small
//! forest): the oracle training and corpus generation are identical
//! work on both sides, and the point is to measure the frontend.

use synthattr_bench::alloc_counter::CountingAllocator;
use synthattr_bench::harness::Group;
use synthattr_core::config::ExperimentConfig;
use synthattr_core::pipeline::YearPipeline;
use synthattr_faults::FaultProfile;

#[global_allocator]
static ALLOC: CountingAllocator = CountingAllocator;

/// Frontend-dominated scale: 1024 transformed samples against a small
/// corpus and a shallow oracle forest.
fn frontend_config() -> ExperimentConfig {
    let mut cfg = ExperimentConfig::smoke();
    cfg.scale.authors = 8;
    cfg.scale.challenges = 4;
    cfg.scale.transforms = 64;
    cfg.scale.n_trees = 6;
    cfg
}

fn main() {
    let mut group = Group::new("pipeline");
    group.measure_allocs(true);

    let plain = frontend_config();
    let chaos20 = frontend_config().with_faults(FaultProfile::recoverable(7, 0.20));

    for (label, cfg) in [("plain", &plain), ("chaos20", &chaos20)] {
        group.bench(&format!("cached/{label}"), || {
            std::hint::black_box(YearPipeline::try_build(2018, cfg).unwrap());
        });
        group.bench(&format!("reference/{label}"), || {
            std::hint::black_box(YearPipeline::try_build_reference(2018, cfg).unwrap());
        });
    }
}
