//! The frontend generations raced end to end: node-level incremental
//! (ISSUE 7) vs. whole-file artifact cache (ISSUE 5) vs. the original
//! re-parse-everywhere reference.
//!
//! All sides build the *same* `YearPipeline` — the A/B suites in
//! `synthattr-core` prove the results bit-identical — so any timing
//! gap is pure frontend overhead:
//!
//! * `cached/plain` / `reference/plain` — fault-free build, incremental
//!   vs. pre-artifact-cache re-parse frontend;
//! * `cached/chaos20` / `reference/chaos20` — the same build under
//!   the recoverable 20% fault profile (the fault layer's validator
//!   is one of the re-parse sites the cache eliminates: the reference
//!   service recomputes the parse + lint + fingerprint expectation of
//!   the input on every call and re-parses every candidate response;
//!   the cached service computes the expectation once per stream);
//! * `cached/chain` / `wholefile/chain` — a chain-heavy build (ISSUE 7
//!   acceptance: ≥ 2× median speedup): long CT chains change a handful
//!   of AST sub-trees per step, so the incremental frontend re-renders,
//!   re-parses, and re-featurizes only the changed regions while the
//!   whole-file frontend pays full price for every new text.
//!
//! The binary installs [`CountingAllocator`] as its global allocator
//! and the group reports `allocs_per_iter` / `alloc_bytes_per_iter`,
//! making the avoided AST churn visible next to the wall-clock.
//!
//! Feeds `BENCH_pipeline.json` via `scripts/bench.sh`; the script
//! prints the cached-vs-reference speedup from the medians.
//!
//! The config leans frontend-heavy on purpose (many transforms, small
//! forest): the oracle training and corpus generation are identical
//! work on both sides, and the point is to measure the frontend.

use synthattr_bench::alloc_counter::CountingAllocator;
use synthattr_bench::harness::Group;
use synthattr_core::config::ExperimentConfig;
use synthattr_core::pipeline::YearPipeline;
use synthattr_faults::FaultProfile;

#[global_allocator]
static ALLOC: CountingAllocator = CountingAllocator;

/// Frontend-dominated scale: 1024 transformed samples against a small
/// corpus and a shallow oracle forest.
fn frontend_config() -> ExperimentConfig {
    let mut cfg = ExperimentConfig::smoke();
    cfg.scale.authors = 8;
    cfg.scale.challenges = 4;
    cfg.scale.transforms = 64;
    cfg.scale.n_trees = 6;
    cfg
}

/// Chain-heavy scale: one challenge with very long streams (256 steps
/// per setting) and a minimal corpus/forest, so the per-step frontend
/// work the node cache amortises dominates the build.
fn chain_config() -> ExperimentConfig {
    let mut cfg = ExperimentConfig::smoke();
    cfg.scale.authors = 4;
    cfg.scale.challenges = 1;
    cfg.scale.transforms = 256;
    cfg.scale.n_trees = 2;
    cfg
}

fn main() {
    let mut group = Group::new("pipeline");
    group.measure_allocs(true);

    let plain = frontend_config();
    let chaos20 = frontend_config().with_faults(FaultProfile::recoverable(7, 0.20));

    for (label, cfg) in [("plain", &plain), ("chaos20", &chaos20)] {
        group.bench(&format!("cached/{label}"), || {
            std::hint::black_box(YearPipeline::try_build(2018, cfg).unwrap());
        });
        group.bench(&format!("reference/{label}"), || {
            std::hint::black_box(YearPipeline::try_build_reference(2018, cfg).unwrap());
        });
    }

    let chain = chain_config().with_faults(FaultProfile::recoverable(7, 0.20));
    group.bench("cached/chain", || {
        std::hint::black_box(YearPipeline::try_build(2018, &chain).unwrap());
    });
    group.bench("wholefile/chain", || {
        std::hint::black_box(YearPipeline::try_build_wholefile(2018, &chain).unwrap());
    });
}
