//! # synthattr
//!
//! A full reproduction of **"Attributing ChatGPT-Transformed Synthetic
//! Code"** (ICDCS 2025) as a Rust workspace: stylometric authorship
//! attribution of LLM-transformed C++, built from scratch — C++
//! frontend, feature extraction, random forests, a synthetic GCJ
//! corpus generator, a seeded LLM style simulator, and drivers that
//! regenerate every table and figure of the paper.
//!
//! This umbrella crate re-exports the workspace members under short
//! names; depend on it to get the whole system, or on individual
//! `synthattr-*` crates for one layer.
//!
//! ```
//! use synthattr::core::config::ExperimentConfig;
//! use synthattr::core::pipeline::YearPipeline;
//! use synthattr::core::experiments::styles;
//!
//! let pipeline = YearPipeline::build(2018, &ExperimentConfig::smoke());
//! let table4 = styles::run(&pipeline);
//! assert!(table4.max_styles >= 1);
//! ```
//!
//! ## Layer map
//!
//! | Re-export | Crate | Role |
//! |---|---|---|
//! | [`util`] | `synthattr-util` | seeded PRNG, statistics, tables |
//! | [`lang`] | `synthattr-lang` | C++ subset lexer/parser/AST/renderer |
//! | [`analysis`] | `synthattr-analysis` | lint passes + semantic fingerprint |
//! | [`features`] | `synthattr-features` | stylometry feature set |
//! | [`ml`] | `synthattr-ml` | CART forests, CV, info gain |
//! | [`gen`] | `synthattr-gen` | author styles + GCJ-like corpora |
//! | [`gpt`] | `synthattr-gpt` | LLM style simulator (NCT/CT) |
//! | [`faults`] | `synthattr-faults` | deterministic chaos: fault injection, retry, breaker |
//! | [`core`] | `synthattr-core` | attribution pipelines + experiments |
//! | [`serve`] | `synthattr-serve` | attribution-as-a-service HTTP server |

pub use synthattr_analysis as analysis;
pub use synthattr_core as core;
pub use synthattr_faults as faults;
pub use synthattr_features as features;
pub use synthattr_gen as gen;
pub use synthattr_gpt as gpt;
pub use synthattr_lang as lang;
pub use synthattr_ml as ml;
pub use synthattr_serve as serve;
pub use synthattr_util as util;
