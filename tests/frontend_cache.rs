//! End-to-end properties of the single-parse artifact frontend
//! (ISSUE 5 acceptance).
//!
//! The crate-level A/B suite (`crates/core/src/frontend_ab.rs`) proves
//! the cached frontend is bit-identical to the reference re-parse
//! frontend; this suite closes the loop on the cache's own contract:
//!
//! 1. hit/miss totals — not just pipeline outputs — are invariant
//!    under the worker count, because caches are sharded per dispatch
//!    unit and merged in input order;
//! 2. identical source texts share one [`Artifact`] (pointer
//!    equality), so every frontend product is computed at most once
//!    per distinct text;
//! 3. degraded chaos runs (held CT steps, seed-code fallbacks) produce
//!    repeated texts and therefore real cache hits.

use std::sync::Arc;
use synthattr::core::artifact::{Artifact, ArtifactCache};
use synthattr::core::config::ExperimentConfig;
use synthattr::core::pipeline::YearPipeline;
use synthattr::faults::FaultProfile;

/// Hit/miss totals and every cached product are a pure function of the
/// inputs: worker counts 1, 2, and 8 must agree exactly.
#[test]
fn frontend_counters_are_worker_invariant() {
    let builds: Vec<YearPipeline> = [1usize, 2, 8]
        .into_iter()
        .map(|w| {
            let mut cfg = ExperimentConfig::smoke().with_faults(FaultProfile::brutal(11));
            cfg.workers = Some(w);
            YearPipeline::build(2019, &cfg)
        })
        .collect();
    let baseline = &builds[0];
    assert!(baseline.frontend.cache_misses > 0);
    for other in &builds[1..] {
        // FrontendStats equality compares the counters and ignores
        // wall-clock, which legitimately varies with the worker count.
        assert_eq!(baseline.frontend, other.frontend);
        assert_eq!(baseline.diagnostics, other.diagnostics);
        assert_eq!(baseline.resilience, other.resilience);
        assert_eq!(baseline.human_features, other.human_features);
        assert_eq!(baseline.transformed.len(), other.transformed.len());
        for (a, b) in baseline.transformed.iter().zip(&other.transformed) {
            assert_eq!(a.sample.source, b.sample.source);
            assert_eq!(a.oracle_label, b.oracle_label);
            assert_eq!(a.outcome, b.outcome);
        }
    }
}

/// Two interns of the same text return the *same allocation*, and the
/// shared artifact parses at most once no matter how many clients hold
/// it.
#[test]
fn identical_sources_share_one_artifact() {
    const SRC: &str = "int main() { int total = 0; total = total + 2; return total; }";
    let mut cache = ArtifactCache::new();
    let first = cache.intern(SRC);
    let second = cache.intern(SRC);
    assert!(
        Arc::ptr_eq(&first, &second),
        "identical text must share one artifact"
    );
    // Cache + two clients: the cache's own handle plus the two interns
    // above all point at a single allocation.
    assert_eq!(Arc::strong_count(&first), 3);
    assert_eq!((cache.hits(), cache.misses()), (1, 1));

    // One shared parse: both handles see the same AST storage.
    let a = first.unit().expect("valid source") as *const _;
    let b = second.unit().expect("valid source") as *const _;
    assert_eq!(a, b, "the AST is materialised once and shared");
}

/// The standalone artifact agrees with the from-scratch frontend, so
/// sharing can never change results.
#[test]
fn shared_artifacts_match_from_scratch_products() {
    const SRC: &str = "int f(int n) { if (n > 1) { return n; } return 1; }";
    let artifact = Artifact::new(SRC);
    assert_eq!(
        artifact.unit().unwrap(),
        &synthattr::lang::parse(SRC).unwrap()
    );
    assert_eq!(
        artifact.fingerprint().unwrap(),
        synthattr::analysis::fingerprint_source(SRC).unwrap()
    );
}

/// Under a brutal fault profile, CT streams hold their last good step
/// and NCT streams fall back to the seed — repeated texts that the
/// cache must serve as hits rather than re-running the frontend.
#[test]
fn degraded_chaos_runs_hit_the_cache() {
    let cfg = ExperimentConfig::smoke().with_faults(FaultProfile::brutal(5));
    let p = YearPipeline::build(2017, &cfg);
    assert!(
        p.resilience.degraded + p.resilience.failed > 0,
        "brutal profile should degrade: {:?}",
        p.resilience
    );
    // Floor without degradation: each challenge interns its two seeds
    // twice (one hit each). Held/fallback steps push it strictly past
    // the floor.
    let floor = 2 * p.config.scale.challenges as u64;
    assert!(
        p.frontend.cache_hits > floor,
        "expected held-step hits beyond the {floor}-hit seed floor: {:?}",
        p.frontend
    );
    let total = p.frontend.cache_hits + p.frontend.cache_misses;
    assert!(p.frontend.hit_rate() > 0.0 && p.frontend.hit_rate() < 1.0);
    // Every human sample and every transformed sample requested an
    // artifact, plus one seed intern per (challenge, setting).
    assert_eq!(
        total as usize,
        p.corpus.len() + p.transformed.len() + 4 * p.config.scale.challenges
    );
}

/// ISSUE 6 regression: the bounded LRU is a drop-in for the unbounded
/// cache. Across nine seeded request pools: a generous capacity gives
/// *identical* hit/miss totals and zero evictions; a tight capacity
/// keeps residency bounded, counts its evictions, and still returns
/// identical frontend products for every request (residency changes,
/// results never do).
#[test]
fn bounded_lru_preserves_semantics_and_bounds_memory() {
    use synthattr::util::Pcg64;

    const TIGHT: usize = 8;
    for pool_seed in 0..9u64 {
        let mut rng = Pcg64::seed_from(0xCA_C4E0, &["lru-ab", &pool_seed.to_string()]);
        let universe: Vec<String> = (0..32)
            .map(|i| format!("int main() {{ int v{i} = {i}; return v{i} * 2; }}"))
            .collect();

        let mut unbounded = ArtifactCache::new();
        let mut generous = ArtifactCache::bounded(universe.len() * 2);
        let mut tight = ArtifactCache::bounded(TIGHT);
        for _ in 0..400 {
            let src = &universe[rng.next_below(universe.len())];
            let a = unbounded.intern(src);
            let b = generous.intern(src);
            let c = tight.intern(src);
            // Same text, same products — no matter what got evicted.
            assert_eq!(a.fingerprint().unwrap(), b.fingerprint().unwrap());
            assert_eq!(a.fingerprint().unwrap(), c.fingerprint().unwrap());
            assert!(tight.len() <= TIGHT, "pool {pool_seed}: residency bound");
        }

        assert_eq!(
            (unbounded.hits(), unbounded.misses()),
            (generous.hits(), generous.misses()),
            "pool {pool_seed}: generous bound must not change hit/miss totals"
        );
        assert_eq!(generous.evictions(), 0, "pool {pool_seed}");
        assert_eq!(unbounded.capacity(), None);

        // The tight cache answered every request too — hits + misses
        // add up the same — it just re-parsed what it evicted.
        assert_eq!(
            tight.hits() + tight.misses(),
            unbounded.hits() + unbounded.misses(),
            "pool {pool_seed}"
        );
        assert!(
            tight.evictions() > 0 && tight.misses() > unbounded.misses(),
            "pool {pool_seed}: a tight cache must evict and re-miss: {} evictions",
            tight.evictions()
        );
        // Conservation: every miss inserted one entry, and every entry
        // not still resident was evicted.
        assert_eq!(
            tight.evictions(),
            tight.misses() - tight.len() as u64,
            "pool {pool_seed}: evictions = inserts - residents"
        );
    }
}
