//! Pipeline-level chaos suite (ISSUE 4 acceptance).
//!
//! The crate-level suite (`crates/faults/tests/chaos_properties.rs`)
//! proves the invisible-retry invariant for individual NCT/CT call
//! streams; this suite closes the loop end-to-end:
//!
//! 1. a full `YearPipeline` built under the recoverable fault profile
//!    at 5% and 20% rates reproduces the fault-free tables
//!    **byte-for-byte** (Tables IV–X are deterministic functions of
//!    the pipeline, so identical transformed sets ⇒ identical tables —
//!    asserted here over the table drivers' rendered output);
//! 2. a budget-exhausted (brutal) build still completes, with every
//!    loss visible as `Degraded`/`Failed` in `pipeline.resilience`;
//! 3. degraded builds are invariant under the worker count — the
//!    sharded per-stream budgets and breakers (DESIGN.md §9) make the
//!    chaos trajectory a pure function of the seed.

use synthattr::core::config::ExperimentConfig;
use synthattr::core::experiments::{diversity, styles};
use synthattr::core::pipeline::YearPipeline;
use synthattr::faults::{FaultProfile, Outcome};

/// Recoverable faults at 5% and 20% leave every table byte-identical
/// to the fault-free run.
#[test]
fn recoverable_chaos_reproduces_the_tables_byte_for_byte() {
    let plain = YearPipeline::build(2018, &ExperimentConfig::smoke());
    let plain_styles = format!("{:?}", styles::run(&plain));
    let plain_diversity = format!("{:?}", diversity::run(&plain));

    for rate in [0.05, 0.20] {
        let cfg = ExperimentConfig::smoke().with_faults(FaultProfile::recoverable(42, rate));
        let chaos = YearPipeline::build(2018, &cfg);

        assert_eq!(chaos.transformed.len(), plain.transformed.len());
        for (a, b) in plain.transformed.iter().zip(&chaos.transformed) {
            assert_eq!(a.sample.source, b.sample.source, "rate={rate}");
            assert_eq!(a.oracle_label, b.oracle_label, "rate={rate}");
        }
        assert_eq!(
            plain_styles,
            format!("{:?}", styles::run(&chaos)),
            "rate={rate}"
        );
        assert_eq!(
            plain_diversity,
            format!("{:?}", diversity::run(&chaos)),
            "rate={rate}"
        );

        // The sweep must actually exercise the retry machinery — a
        // vacuously fault-free pass would prove nothing.
        assert!(
            chaos.resilience.recovered > 0,
            "rate={rate}: {:?}",
            chaos.resilience
        );
        assert_eq!(chaos.resilience.fidelity(), 1.0, "rate={rate}");
        assert!(chaos.transformed.iter().all(|t| t.outcome.is_faithful()));
    }
}

/// When faults exceed the retry budget the pipeline still completes:
/// no panic, full sample counts, and the losses are accounted as
/// `Degraded`/`Failed` outcomes in the resilience stats.
#[test]
fn budget_exhausted_chaos_degrades_instead_of_panicking() {
    let cfg = ExperimentConfig::smoke().with_faults(FaultProfile::brutal(1312));
    let p = YearPipeline::build(2018, &cfg);
    let scale = &p.config.scale;

    assert_eq!(p.transformed.len(), 4 * scale.transforms * scale.challenges);
    let r = &p.resilience;
    assert_eq!(
        r.clean + r.recovered + r.degraded + r.failed,
        p.transformed.len() as u64,
        "every sample is accounted: {r:?}"
    );
    assert!(
        r.degraded + r.failed > 0,
        "the brutal profile must exceed the budget somewhere: {r:?}"
    );
    assert!(r.fidelity() < 1.0);
    let lossy = p
        .transformed
        .iter()
        .filter(|t| matches!(t.outcome, Outcome::Degraded { .. } | Outcome::Failed))
        .count() as u64;
    assert_eq!(lossy, r.degraded + r.failed);
}

/// The degraded trajectory is a pure function of the seed: serial and
/// wide builds agree on every sample, outcome, and counter even when
/// budgets run dry mid-run.
#[test]
fn degraded_builds_are_worker_count_invariant() {
    let mut serial_cfg = ExperimentConfig::smoke().with_faults(FaultProfile::brutal(7));
    serial_cfg.workers = Some(1);
    let mut wide_cfg = serial_cfg.clone();
    wide_cfg.workers = Some(8);

    let serial = YearPipeline::build(2017, &serial_cfg);
    let wide = YearPipeline::build(2017, &wide_cfg);

    assert_eq!(serial.resilience, wide.resilience);
    assert_eq!(serial.transformed.len(), wide.transformed.len());
    for (a, b) in serial.transformed.iter().zip(&wide.transformed) {
        assert_eq!(a.sample.source, b.sample.source);
        assert_eq!(a.outcome, b.outcome);
        assert_eq!(a.oracle_label, b.oracle_label);
    }
    assert!(
        serial.resilience.degraded + serial.resilience.failed > 0,
        "invariance must be proven on a genuinely degraded run: {:?}",
        serial.resilience
    );
}
