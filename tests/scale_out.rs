//! Scale-out A/B suite (DESIGN.md §15).
//!
//! The out-of-core training path — streamed corpus → on-disk
//! [`ColumnStore`] → [`RandomForest::fit_sharded`] — against the
//! retained in-RAM reference at paper scale (204 authors):
//!
//! * single-shard out-of-core training must be **bit-identical** to
//!   [`RandomForest::fit`] on the equivalent in-RAM `Dataset`, for
//!   any worker count (the shard-merge invariant: `n_shards == 1`
//!   replays the reference exactly, workers only change wall-clock);
//! * multi-shard training is a different estimator (shard-local
//!   bootstrap) and is pinned to be deterministic in the data and
//!   seed, and invariant to the worker count;
//! * a 2 000-author smoke (`--ignored`; `scripts/verify.sh --scale`
//!   runs it) proves the streamed path survives 10× paper scale and
//!   still attributes far above chance.

use synthattr_features::{FeatureConfig, FeatureExtractor};
use synthattr_gen::corpus::{stream_year, YearSpec};
use synthattr_ml::colstore::{ColumnStore, ColumnStoreWriter};
use synthattr_ml::cv::reservoir_holdout;
use synthattr_ml::dataset::Dataset;
use synthattr_ml::forest::{ForestConfig, RandomForest};
use synthattr_ml::source::for_each_row;
use synthattr_util::{pool, Pcg64};

const SEED: u64 = 41;

/// Streams `spec` through the extractor into both backends at once:
/// the on-disk store at `path` and an in-RAM `Dataset` — the A/B
/// inputs are built from the very same feature rows.
fn build_both(spec: &YearSpec, path: &std::path::Path) -> (ColumnStore, Dataset) {
    let extractor = FeatureExtractor::new(FeatureConfig::default());
    let workers = pool::resolve_workers(None);
    let mut writer =
        ColumnStoreWriter::create(path, extractor.dim(), spec.authors, 512).expect("create store");
    let mut ds = Dataset::new(spec.authors);
    for chunk in stream_year(spec, SEED, 64) {
        let rows = pool::parallel_map_workers(workers, chunk, |sample| {
            (
                extractor.extract(&sample.source).expect("sample parses"),
                sample.author,
            )
        });
        for (features, label) in rows {
            writer.push_row(&features, label).expect("push row");
            ds.push(features, label);
        }
    }
    (writer.finish().expect("finish store"), ds)
}

fn temp_store(tag: &str) -> std::path::PathBuf {
    let mut path = std::env::temp_dir();
    path.push(format!(
        "synthattr_scale_out_{tag}_{}.cols",
        std::process::id()
    ));
    path
}

/// Exact structural fingerprint: `Debug` prints every split
/// threshold with round-trip f64 formatting, so equal strings mean
/// bit-identical forests.
fn fingerprint(forest: &RandomForest) -> String {
    format!("{forest:?}")
}

#[test]
fn paper_scale_single_shard_matches_in_ram_reference_for_any_workers() {
    let spec = YearSpec::tiny(2018, 204, 4);
    let path = temp_store("ab204");
    let (store, ds) = build_both(&spec, &path);
    assert_eq!(store.len(), 204 * 4);
    assert_eq!(ds.len(), 204 * 4);

    let reference = RandomForest::fit(
        &ds,
        &ForestConfig {
            n_trees: 12,
            ..ForestConfig::default()
        },
        &mut Pcg64::seed_from(SEED, &["scale-ab"]),
    );
    let want = fingerprint(&reference);

    for workers in [1usize, 2, 8] {
        let config = ForestConfig {
            n_trees: 12,
            workers: Some(workers),
            ..ForestConfig::default()
        };
        let forest = RandomForest::fit_sharded(
            &store,
            1,
            &config,
            &mut Pcg64::seed_from(SEED, &["scale-ab"]),
        )
        .expect("single-shard training");
        assert_eq!(
            fingerprint(&forest),
            want,
            "single-shard out-of-core training diverged from the in-RAM reference at workers={workers}"
        );
    }
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn paper_scale_multi_shard_training_is_worker_invariant_and_deterministic() {
    let spec = YearSpec::tiny(2018, 204, 4);
    let path = temp_store("shard204");
    let (store, _ds) = build_both(&spec, &path);

    let fingerprints: Vec<String> = [1usize, 2, 8]
        .iter()
        .map(|&workers| {
            let config = ForestConfig {
                n_trees: 12,
                workers: Some(workers),
                ..ForestConfig::default()
            };
            let forest = RandomForest::fit_sharded(
                &store,
                8,
                &config,
                &mut Pcg64::seed_from(SEED, &["scale-shard"]),
            )
            .expect("sharded training");
            fingerprint(&forest)
        })
        .collect();
    assert_eq!(fingerprints[0], fingerprints[1], "workers 1 vs 2 diverged");
    assert_eq!(fingerprints[0], fingerprints[2], "workers 1 vs 8 diverged");

    // Same data + seed on a fresh run reproduces the same forest.
    let config = ForestConfig {
        n_trees: 12,
        ..ForestConfig::default()
    };
    let again = RandomForest::fit_sharded(
        &store,
        8,
        &config,
        &mut Pcg64::seed_from(SEED, &["scale-shard"]),
    )
    .expect("sharded training");
    assert_eq!(fingerprint(&again), fingerprints[0], "rerun diverged");
    std::fs::remove_file(&path).unwrap();
}

/// 10× paper scale through the full out-of-core path. Minutes-class
/// under the test profile, so ignored by default; `scripts/verify.sh
/// --scale` runs it (`--ignored`).
#[test]
#[ignore = "2k-author smoke; run via scripts/verify.sh --scale"]
fn two_thousand_author_out_of_core_smoke() {
    let authors = 2000usize;
    let spec = YearSpec::tiny(2018, authors, 4);
    let n_rows = authors * 4;

    // Per-author reservoir hold-out drawn from the (known) label
    // stream, exactly as the scale bench does it.
    let fold = reservoir_holdout(
        (0..authors).flat_map(|a| std::iter::repeat_n(a, 4)),
        authors,
        1,
        Pcg64::seed_from(SEED, &["smoke-fold"]),
    );
    let mut in_test = vec![false; n_rows];
    for &i in &fold.test {
        in_test[i] = true;
    }

    let extractor = FeatureExtractor::new(FeatureConfig::default());
    let workers = pool::resolve_workers(None);
    let train_path = temp_store("smoke2k_train");
    let test_path = temp_store("smoke2k_test");
    let mut train_w = ColumnStoreWriter::create(&train_path, extractor.dim(), authors, 1024)
        .expect("create train store");
    let mut test_w = ColumnStoreWriter::create(&test_path, extractor.dim(), authors, 1024)
        .expect("create test store");
    let mut row = 0usize;
    for chunk in stream_year(&spec, SEED, 256) {
        let rows = pool::parallel_map_workers(workers, chunk, |sample| {
            (
                extractor.extract(&sample.source).expect("sample parses"),
                sample.author,
            )
        });
        for (features, label) in rows {
            let w = if in_test[row] {
                &mut test_w
            } else {
                &mut train_w
            };
            w.push_row(&features, label).expect("push row");
            row += 1;
        }
    }
    assert_eq!(row, n_rows);
    let train_store = train_w.finish().expect("finish train store");
    let test_store = test_w.finish().expect("finish test store");
    assert_eq!(train_store.len(), n_rows - authors);
    assert_eq!(test_store.len(), authors);

    let config = ForestConfig {
        n_trees: 32,
        ..ForestConfig::default()
    };
    let forest = RandomForest::fit_sharded(
        &train_store,
        8,
        &config,
        &mut Pcg64::seed_from(SEED, &["smoke-train"]),
    )
    .expect("sharded training");

    let mut correct = 0usize;
    let mut total = 0usize;
    for_each_row(&test_store, 1024, |features, label| {
        if forest.predict(features) == label {
            correct += 1;
        }
        total += 1;
    })
    .expect("stream hold-out");
    assert_eq!(total, authors);
    let accuracy = correct as f64 / total as f64;
    // Chance is 1/2000 = 0.0005; the streamed path must land orders
    // of magnitude above it even with only 3 training rows per class.
    assert!(
        accuracy > 0.05,
        "2k-author out-of-core accuracy collapsed: {accuracy:.4}"
    );
    std::fs::remove_file(&train_path).unwrap();
    std::fs::remove_file(&test_path).unwrap();
}
