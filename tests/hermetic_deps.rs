//! Guard test for the hermetic zero-dependency policy.
//!
//! The reproduction environment is fully offline: any registry
//! dependency breaks `cargo build` before a single test runs. This
//! test walks every `Cargo.toml` in the workspace and fails if a
//! dependency section declares anything that is not an in-repo path
//! crate (directly via `path = ...` or through a `workspace = true`
//! reference whose root entry is a path).

use std::path::{Path, PathBuf};

/// Dependency-declaring sections; `[profile.*]`, `[workspace.package]`
/// etc. are exempt.
fn is_dependency_section(header: &str) -> bool {
    let h = header.trim_matches(['[', ']']);
    h == "dependencies"
        || h == "dev-dependencies"
        || h == "build-dependencies"
        || h == "workspace.dependencies"
        || h.starts_with("target.") && h.ends_with("dependencies")
}

/// Returns violations: `(file, line, text)` of dependency entries that
/// are neither path crates nor workspace references.
fn violations_in(path: &Path) -> Vec<(PathBuf, usize, String)> {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("cannot read {}: {e}", path.display()));
    let mut out = Vec::new();
    let mut in_dep_section = false;
    let mut section_is_single_dep_table = false;
    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        if line.starts_with('[') {
            // `[dependencies.foo]`-style per-dep tables: the whole
            // section describes one dependency.
            let h = line.trim_matches(['[', ']']);
            section_is_single_dep_table = h.starts_with("dependencies.")
                || h.starts_with("dev-dependencies.")
                || h.starts_with("build-dependencies.");
            in_dep_section = is_dependency_section(line) || section_is_single_dep_table;
            if section_is_single_dep_table {
                // Conservatively flag the table header itself unless a
                // `path =` line follows; handled by the key scan below
                // via a synthetic entry.
                out.push((path.to_path_buf(), lineno + 1, raw.to_string()));
            }
            continue;
        }
        if !in_dep_section {
            continue;
        }
        if section_is_single_dep_table {
            if line.starts_with("path") {
                // The per-dep table turned out to be a path dep:
                // un-flag its header.
                out.pop();
                section_is_single_dep_table = false;
            }
            continue;
        }
        // `name = <spec>` (or dotted `name.workspace = true`) inside a
        // dependency section.
        let Some((key, spec)) = line.split_once('=') else {
            continue;
        };
        let (key, spec) = (key.trim(), spec.trim());
        let hermetic = spec.contains("path")
            || spec.contains("workspace = true")
            || spec.contains("workspace=true")
            || (key.ends_with(".workspace") && spec == "true");
        if !hermetic {
            out.push((path.to_path_buf(), lineno + 1, raw.to_string()));
        }
    }
    out
}

#[test]
fn workspace_has_zero_registry_dependencies() {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    let mut manifests = vec![root.join("Cargo.toml")];
    let crates_dir = root.join("crates");
    for entry in std::fs::read_dir(&crates_dir).expect("crates/ directory exists") {
        let manifest = entry.expect("readable dir entry").path().join("Cargo.toml");
        if manifest.is_file() {
            manifests.push(manifest);
        }
    }
    assert!(
        manifests.len() >= 9,
        "expected the root + 8 crate manifests, found {}",
        manifests.len()
    );

    let mut all = Vec::new();
    for manifest in &manifests {
        all.extend(violations_in(manifest));
    }
    assert!(
        all.is_empty(),
        "non-path dependencies violate the hermetic policy (the build \
         environment is offline; see DESIGN.md). Offending lines:\n{}",
        all.iter()
            .map(|(f, l, t)| format!("  {}:{l}: {t}", f.display()))
            .collect::<Vec<_>>()
            .join("\n")
    );
}

#[test]
fn guard_detects_registry_deps() {
    // Self-test on a scratch manifest so regressions in the scanner
    // itself get caught.
    let dir = std::env::temp_dir().join("synthattr_hermetic_guard_test");
    std::fs::create_dir_all(&dir).unwrap();
    let bad = dir.join("Cargo.toml");
    std::fs::write(
        &bad,
        r#"[package]
name = "x"
version = "0.0.0"  # not a dependency: must not be flagged

[dependencies]
good = { path = "../good" }
also-good.workspace = true
serde = { version = "1", features = ["derive"] }

[dev-dependencies]
proptest = "1"

[dependencies.table-style]
version = "2"

[profile.release]
lto = "thin"
"#,
    )
    .unwrap();
    let found = violations_in(&bad);
    let lines: Vec<&str> = found.iter().map(|(_, _, t)| t.as_str()).collect();
    assert_eq!(found.len(), 3, "found: {lines:?}");
    assert!(lines.iter().any(|l| l.contains("serde")));
    assert!(lines.iter().any(|l| l.contains("proptest")));
    assert!(lines.iter().any(|l| l.contains("table-style")));

    let good = dir.join("Cargo_good.toml");
    std::fs::write(
        &good,
        r#"[dependencies]
a = { path = "../a" }

[dependencies.b]
path = "../b"
"#,
    )
    .unwrap();
    assert!(violations_in(&good).is_empty());
}
