//! Graceful drain under fire: `shutdown()` racing pipelined
//! keep-alive bursts must drop **zero** in-flight responses.
//!
//! The protocol under test (see DESIGN.md §14): `shutdown()` flips the
//! draining flag, the acceptor stops, the work queue closes, and every
//! worker answers all complete buffered requests on the connections it
//! still holds — marking the final response `Connection: close` — then
//! flushes with a bounded-blocking loop before the hard deadline
//! force-closes stragglers. A client that managed to get its bytes
//! onto an accepted connection gets complete answers, ending exactly
//! on a frame boundary.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

use synthattr::serve::server::{RunningServer, ServeConfig, Server};

const BURST: usize = 24;

fn spawn(workers: usize) -> RunningServer {
    let mut config = ServeConfig::smoke();
    config.years = vec![2018];
    config.workers = Some(workers);
    config.rate = None;
    config.drain_deadline_ms = 10_000;
    Server::bind("127.0.0.1:0", config)
        .expect("bind")
        .spawn()
        .expect("spawn")
}

/// One pipelined burst of `BURST` keep-alive requests in a single
/// write.
fn burst_bytes() -> Vec<u8> {
    let mut out = Vec::new();
    for i in 0..BURST {
        out.extend_from_slice(
            format!("GET /healthz HTTP/1.1\r\nHost: synthattr\r\nX-Seq: {i}\r\n\r\n").as_bytes(),
        );
    }
    out
}

/// Splits a raw reply into complete `Content-Length`-framed responses.
/// Returns `(status_codes, leftover_bytes)`; a half-written response
/// shows up as nonempty leftover.
fn parse_responses(mut raw: &[u8]) -> (Vec<u16>, usize) {
    let mut statuses = Vec::new();
    loop {
        let Some(head_end) = raw.windows(4).position(|w| w == b"\r\n\r\n") else {
            return (statuses, raw.len());
        };
        let head = String::from_utf8_lossy(&raw[..head_end]);
        let status: u16 = head
            .split(' ')
            .nth(1)
            .and_then(|s| s.parse().ok())
            .unwrap_or(0);
        let content_length: usize = head
            .lines()
            .find_map(|l| {
                let (name, value) = l.split_once(':')?;
                name.trim()
                    .eq_ignore_ascii_case("content-length")
                    .then(|| value.trim().parse().ok())?
            })
            .unwrap_or(0);
        let total = head_end + 4 + content_length;
        if raw.len() < total {
            return (statuses, raw.len() - head_end.min(raw.len()));
        }
        statuses.push(status);
        raw = &raw[total..];
        if raw.is_empty() {
            return (statuses, 0);
        }
    }
}

/// The core race, at a given worker count and shutdown stagger: a
/// pipelined burst lands on an accepted connection, `shutdown()` fires
/// mid-flight, and the client still collects `BURST` complete 200s.
fn race_once(workers: usize, stagger: Duration) {
    let server = spawn(workers);
    let mut stream = TcpStream::connect(server.addr()).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(15)))
        .expect("timeout");
    stream.set_nodelay(true).expect("nodelay");
    stream.write_all(&burst_bytes()).expect("burst");
    stream.flush().expect("flush");

    // Wait for the first response byte so we know the connection was
    // accepted and is mid-serve — *then* race the drain against the
    // rest of the burst.
    let mut reply = Vec::new();
    let mut buf = [0u8; 16 * 1024];
    let n = stream.read(&mut buf).expect("first bytes before drain");
    assert!(n > 0, "server closed before answering anything");
    reply.extend_from_slice(&buf[..n]);
    std::thread::sleep(stagger);

    let stats = server.shutdown();
    loop {
        match stream.read(&mut buf) {
            Ok(0) => break,
            Ok(n) => reply.extend_from_slice(&buf[..n]),
            Err(e) => panic!(
                "workers={workers} stagger={stagger:?}: read failed mid-drain \
                 after {} bytes: {e}",
                reply.len()
            ),
        }
    }

    let (statuses, leftover) = parse_responses(&reply);
    assert_eq!(
        statuses.len(),
        BURST,
        "workers={workers} stagger={stagger:?}: dropped responses (got {statuses:?})"
    );
    assert!(
        statuses.iter().all(|&s| s == 200),
        "workers={workers}: non-200 in {statuses:?}"
    );
    assert_eq!(
        leftover, 0,
        "workers={workers} stagger={stagger:?}: reply ends mid-frame ({leftover} dangling bytes)"
    );
    assert_eq!(
        stats.forced_closes, 0,
        "workers={workers}: drain had to force-close"
    );
    assert!(stats.clean, "workers={workers}: drain not clean: {stats:?}");
}

#[test]
fn drain_races_a_pipelined_burst_without_dropping_responses() {
    for workers in [1usize, 4] {
        for stagger_ms in [0u64, 2, 10] {
            race_once(workers, Duration::from_millis(stagger_ms));
        }
    }
}

/// Draining with no traffic at all is clean and immediate, and the
/// acceptor really stops: new connections are refused (or die unread)
/// after `shutdown()` returns.
#[test]
fn idle_drain_is_clean_and_stops_accepting() {
    let server = spawn(2);
    let addr = server.addr();
    let resp = synthattr::serve::client::request(addr, "GET", "/healthz", &[], b"")
        .expect("pre-drain healthz");
    assert_eq!(resp.status, 200);
    assert!(resp.text().contains("\"drain_state\":\"active\""));

    let stats = server.shutdown();
    assert_eq!(stats.forced_closes, 0);
    assert!(stats.clean);

    // The listener is gone with the server.
    let refused = match TcpStream::connect(addr) {
        Err(_) => true,
        Ok(mut stream) => {
            // Connected to a dead address reuse at worst — no one
            // answers.
            stream
                .set_read_timeout(Some(Duration::from_millis(500)))
                .expect("timeout");
            let _ = stream.write_all(b"GET /healthz HTTP/1.1\r\n\r\n");
            let mut buf = [0u8; 64];
            !matches!(stream.read(&mut buf), Ok(n) if n > 0)
        }
    };
    assert!(refused, "a drained server must not serve new connections");
}
