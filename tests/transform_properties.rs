//! Property-based integration tests over the generator → transformer →
//! frontend loop: for arbitrary author styles and seeds, generated
//! programs parse, survive re-rendering, and keep their behavioural
//! skeleton through LLM-style transformation.
//!
//! Driven by the in-repo harness (`synthattr::util::prop`) — see
//! DESIGN.md's hermetic zero-dependency policy.

use synthattr::analysis::{fingerprint_source, new_errors, Analyzer};
use synthattr::features::collect::CodeStats;
use synthattr::gen::challenges::ChallengeId;
use synthattr::gen::corpus::Origin;
use synthattr::gen::style::AuthorStyle;
use synthattr::gpt::chain::{run_ct, run_nct};
use synthattr::gpt::pool::YearPool;
use synthattr::gpt::transform::Transformer;
use synthattr::lang::parse;
use synthattr::lang::render::{render, RenderStyle};
use synthattr::util::prop::Runner;
use synthattr::util::Pcg64;
use synthattr_util::{prop_assert, prop_assert_eq};

/// Generates `(challenge, extra seeds...)` as shrinkable primitives;
/// the challenge is picked by index into [`ChallengeId::all`].
fn challenge(idx: usize) -> ChallengeId {
    let all = ChallengeId::all();
    all[idx % all.len()]
}

/// Every (style, challenge, seed) combination yields parseable
/// code whose re-rendered form parses to the same tree shape.
#[test]
fn generated_code_roundtrips() {
    Runner::new("generated_code_roundtrips").cases(48).run(
        |rng| {
            (
                rng.next_below(5000) as u64,
                rng.next_below(5000) as u64,
                rng.next_below(ChallengeId::all().len()),
            )
        },
        |&(style_seed, file_seed, ch_idx)| {
            let mut rng = Pcg64::new(style_seed);
            let style = AuthorStyle::sample(&mut rng);
            let src = challenge(ch_idx).render_solution(&style, Pcg64::new(file_seed));
            let unit = parse(&src).expect("generated code parses");
            let re = render(&unit, &RenderStyle::default());
            let unit2 = parse(&re).expect("re-rendered code parses");
            prop_assert_eq!(unit.shape_hash(), unit2.shape_hash());
            Ok(())
        },
    );
}

/// Transformation preserves the program's *behavioural skeleton*:
/// it still reads input, still prints the GCJ case banner, and
/// keeps the loop count within one structural rewrite of the
/// original (for/while conversion and helper extraction never
/// add or remove iteration logic).
#[test]
fn transformation_preserves_skeleton() {
    Runner::new("transformation_preserves_skeleton")
        .cases(48)
        .run(
            |rng| {
                (
                    rng.next_below(2000) as u64,
                    rng.next_below(2000) as u64,
                    rng.next_below(ChallengeId::all().len()),
                )
            },
            |&(style_seed, t_seed, ch_idx)| {
                let mut rng = Pcg64::new(style_seed);
                let style = AuthorStyle::sample(&mut rng);
                let src =
                    challenge(ch_idx).render_solution(&style, Pcg64::new(style_seed ^ 0xABCD));
                let pool = YearPool::calibrated(2018, 99);
                let gpt = Transformer::new(&pool);
                let mut t_rng = Pcg64::new(t_seed);
                let idx = pool.sample_index(&mut t_rng);
                let out = gpt.transform(&src, idx, &mut t_rng).expect("transforms");

                let before = CodeStats::collect(&parse(&src).unwrap());
                let after = CodeStats::collect(&parse(&out).unwrap());

                // IO protocol survives.
                prop_assert!(out.contains("Case #"), "banner lost:\n{}", out);
                let reads_before = before.stream_io_count + before.stdio_count;
                let reads_after = after.stream_io_count + after.stdio_count;
                prop_assert!(reads_after > 0, "all IO lost:\n{}", out);
                // IO statement count is stable (conversion maps 1:1; merged
                // reads stay merged).
                prop_assert_eq!(reads_before, reads_after, "IO count changed:\n{}", out);
                // Iteration structure is stable.
                prop_assert_eq!(
                    before.loop_count(),
                    after.loop_count(),
                    "loops changed:\n{}",
                    out
                );
                // Conditionals may be restyled but never invented from nothing:
                // ternary + if total is preserved.
                prop_assert_eq!(
                    before.if_count + before.ternary_count,
                    after.if_count + after.ternary_count,
                    "branching changed:\n{}",
                    out
                );
                Ok(())
            },
        );
}

/// Every transform output is analyzer-clean (no new error-severity
/// diagnostics over the seed) and keeps the seed's semantic
/// fingerprint — for arbitrary styles, challenges, and RNG streams.
#[test]
fn transforms_are_analyzer_clean_and_fingerprint_stable() {
    let analyzer = Analyzer::new();
    Runner::new("transforms_are_analyzer_clean_and_fingerprint_stable")
        .cases(48)
        .run(
            |rng| {
                (
                    rng.next_below(2000) as u64,
                    rng.next_below(2000) as u64,
                    rng.next_below(ChallengeId::all().len()),
                )
            },
            |&(style_seed, t_seed, ch_idx)| {
                let mut rng = Pcg64::new(style_seed);
                let style = AuthorStyle::sample(&mut rng);
                let src =
                    challenge(ch_idx).render_solution(&style, Pcg64::new(style_seed ^ 0x5EED));
                let pool = YearPool::calibrated(2017, 3);
                let gpt = Transformer::new(&pool);
                let mut t_rng = Pcg64::new(t_seed);
                let idx = pool.sample_index(&mut t_rng);
                let out = gpt.transform(&src, idx, &mut t_rng).expect("transforms");

                let pre = analyzer.analyze_source(&src).expect("seed parses");
                let post = analyzer.analyze_source(&out).expect("output parses");
                let fresh = new_errors(&pre, &post);
                prop_assert!(
                    fresh.is_empty(),
                    "new error diagnostics {:?}:\n{}",
                    fresh,
                    out
                );
                prop_assert_eq!(
                    fingerprint_source(&src).unwrap(),
                    fingerprint_source(&out).unwrap(),
                    "fingerprint drifted:\n--- seed ---\n{}\n--- out ---\n{}",
                    src,
                    out
                );
                Ok(())
            },
        );
}

/// The acceptance invariant in its strongest form: for every pool
/// seed (each challenge, rendered in a pool style), both the NCT fan
/// and a full 50-step CT chain stay analyzer-clean and keep the
/// seed's semantic fingerprint at every step.
#[test]
fn every_pool_seed_survives_a_50_step_chain() {
    let analyzer = Analyzer::new();
    for (ci, &ch) in ChallengeId::all().iter().enumerate() {
        let year = [2017u32, 2018, 2019][ci % 3];
        let pool = YearPool::calibrated(year, 11);
        let gpt = Transformer::new(&pool);
        let seed_src = ch.render_solution(
            &pool.style(ci % pool.styles.len()).clone(),
            Pcg64::new(1000 + ci as u64),
        );
        let seed_fp = fingerprint_source(&seed_src).expect("seed fingerprints");
        let pre = analyzer.analyze_source(&seed_src).expect("seed parses");

        let mut rng = Pcg64::seed_from(42, &["prop-ct", &ci.to_string()]);
        let ct = run_ct(&gpt, &seed_src, 50, Origin::ChatGpt, &mut rng);
        assert_eq!(ct.len(), 50);
        let mut rng = Pcg64::seed_from(42, &["prop-nct", &ci.to_string()]);
        let nct = run_nct(&gpt, &seed_src, 10, Origin::ChatGpt, &mut rng);

        for s in ct.iter().chain(nct.iter()) {
            let post = analyzer.analyze_source(&s.source).expect("step parses");
            let fresh = new_errors(&pre, &post);
            assert!(
                fresh.is_empty(),
                "{ch:?} {:?} step {}: new errors {fresh:?}\n{}",
                s.mode,
                s.step,
                s.source
            );
            assert_eq!(
                fingerprint_source(&s.source).unwrap(),
                seed_fp,
                "{ch:?} {:?} step {} drifted\n--- seed ---\n{seed_src}\n--- step ---\n{}",
                s.mode,
                s.step,
                s.source
            );
        }
    }
}

/// Chained transformation outputs always stay inside the subset.
#[test]
fn chains_never_leave_the_subset() {
    Runner::new("chains_never_leave_the_subset").cases(48).run(
        |rng| rng.next_below(300) as u64,
        |&seed| {
            let mut rng = Pcg64::new(seed);
            let style = AuthorStyle::sample(&mut rng);
            let src = ChallengeId::Gcd.render_solution(&style, Pcg64::new(seed));
            let pool = YearPool::calibrated(2019, 7);
            let gpt = Transformer::new(&pool);
            let mut current = src;
            let mut c_rng = Pcg64::new(seed ^ 0xFFFF);
            for _ in 0..4 {
                let idx = pool.sample_index(&mut c_rng);
                current = gpt
                    .transform(&current, idx, &mut c_rng)
                    .expect("chain step");
                parse(&current).expect("chain output parses");
            }
            Ok(())
        },
    );
}
