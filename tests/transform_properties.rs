//! Property-based integration tests over the generator → transformer →
//! frontend loop: for arbitrary author styles and seeds, generated
//! programs parse, survive re-rendering, and keep their behavioural
//! skeleton through LLM-style transformation.
//!
//! Driven by the in-repo harness (`synthattr::util::prop`) — see
//! DESIGN.md's hermetic zero-dependency policy.

use synthattr::features::collect::CodeStats;
use synthattr::gen::challenges::ChallengeId;
use synthattr::gen::style::AuthorStyle;
use synthattr::gpt::pool::YearPool;
use synthattr::gpt::transform::Transformer;
use synthattr::lang::parse;
use synthattr::lang::render::{render, RenderStyle};
use synthattr::util::prop::Runner;
use synthattr::util::Pcg64;
use synthattr_util::{prop_assert, prop_assert_eq};

/// Generates `(challenge, extra seeds...)` as shrinkable primitives;
/// the challenge is picked by index into [`ChallengeId::all`].
fn challenge(idx: usize) -> ChallengeId {
    let all = ChallengeId::all();
    all[idx % all.len()]
}

/// Every (style, challenge, seed) combination yields parseable
/// code whose re-rendered form parses to the same tree shape.
#[test]
fn generated_code_roundtrips() {
    Runner::new("generated_code_roundtrips").cases(48).run(
        |rng| {
            (
                rng.next_below(5000) as u64,
                rng.next_below(5000) as u64,
                rng.next_below(ChallengeId::all().len()),
            )
        },
        |&(style_seed, file_seed, ch_idx)| {
            let mut rng = Pcg64::new(style_seed);
            let style = AuthorStyle::sample(&mut rng);
            let src = challenge(ch_idx).render_solution(&style, Pcg64::new(file_seed));
            let unit = parse(&src).expect("generated code parses");
            let re = render(&unit, &RenderStyle::default());
            let unit2 = parse(&re).expect("re-rendered code parses");
            prop_assert_eq!(unit.shape_hash(), unit2.shape_hash());
            Ok(())
        },
    );
}

/// Transformation preserves the program's *behavioural skeleton*:
/// it still reads input, still prints the GCJ case banner, and
/// keeps the loop count within one structural rewrite of the
/// original (for/while conversion and helper extraction never
/// add or remove iteration logic).
#[test]
fn transformation_preserves_skeleton() {
    Runner::new("transformation_preserves_skeleton")
        .cases(48)
        .run(
            |rng| {
                (
                    rng.next_below(2000) as u64,
                    rng.next_below(2000) as u64,
                    rng.next_below(ChallengeId::all().len()),
                )
            },
            |&(style_seed, t_seed, ch_idx)| {
                let mut rng = Pcg64::new(style_seed);
                let style = AuthorStyle::sample(&mut rng);
                let src =
                    challenge(ch_idx).render_solution(&style, Pcg64::new(style_seed ^ 0xABCD));
                let pool = YearPool::calibrated(2018, 99);
                let gpt = Transformer::new(&pool);
                let mut t_rng = Pcg64::new(t_seed);
                let idx = pool.sample_index(&mut t_rng);
                let out = gpt.transform(&src, idx, &mut t_rng).expect("transforms");

                let before = CodeStats::collect(&parse(&src).unwrap());
                let after = CodeStats::collect(&parse(&out).unwrap());

                // IO protocol survives.
                prop_assert!(out.contains("Case #"), "banner lost:\n{}", out);
                let reads_before = before.stream_io_count + before.stdio_count;
                let reads_after = after.stream_io_count + after.stdio_count;
                prop_assert!(reads_after > 0, "all IO lost:\n{}", out);
                // IO statement count is stable (conversion maps 1:1; merged
                // reads stay merged).
                prop_assert_eq!(reads_before, reads_after, "IO count changed:\n{}", out);
                // Iteration structure is stable.
                prop_assert_eq!(
                    before.loop_count(),
                    after.loop_count(),
                    "loops changed:\n{}",
                    out
                );
                // Conditionals may be restyled but never invented from nothing:
                // ternary + if total is preserved.
                prop_assert_eq!(
                    before.if_count + before.ternary_count,
                    after.if_count + after.ternary_count,
                    "branching changed:\n{}",
                    out
                );
                Ok(())
            },
        );
}

/// Chained transformation outputs always stay inside the subset.
#[test]
fn chains_never_leave_the_subset() {
    Runner::new("chains_never_leave_the_subset").cases(48).run(
        |rng| rng.next_below(300) as u64,
        |&seed| {
            let mut rng = Pcg64::new(seed);
            let style = AuthorStyle::sample(&mut rng);
            let src = ChallengeId::Gcd.render_solution(&style, Pcg64::new(seed));
            let pool = YearPool::calibrated(2019, 7);
            let gpt = Transformer::new(&pool);
            let mut current = src;
            let mut c_rng = Pcg64::new(seed ^ 0xFFFF);
            for _ in 0..4 {
                let idx = pool.sample_index(&mut c_rng);
                current = gpt
                    .transform(&current, idx, &mut c_rng)
                    .expect("chain step");
                parse(&current).expect("chain output parses");
            }
            Ok(())
        },
    );
}
