//! Property-based integration tests for the dataflow layer: the CFG +
//! fixed-point verdicts must be *transform-invariant* (a style rewrite
//! can never make a program read uninitialized memory), and the cached
//! per-item dataflow partials feeding the attribution vector must be
//! worker-count invariant end to end.
//!
//! Driven by the in-repo harness (`synthattr::util::prop`) — see
//! DESIGN.md's hermetic zero-dependency policy.

use synthattr::analysis::cfg::Cfg;
use synthattr::analysis::dataflow::{dead_stores, use_before_init};
use synthattr::analysis::{new_errors, Analyzer};
use synthattr::gen::challenges::ChallengeId;
use synthattr::gen::corpus::Origin;
use synthattr::gen::style::AuthorStyle;
use synthattr::gpt::chain::run_ct;
use synthattr::gpt::pool::YearPool;
use synthattr::gpt::transform::Transformer;
use synthattr::lang::parse;
use synthattr::util::prop::Runner;
use synthattr::util::Pcg64;
use synthattr_util::{prop_assert, prop_assert_eq};

fn challenge(idx: usize) -> ChallengeId {
    let all = ChallengeId::all();
    all[idx % all.len()]
}

/// Unit-level dataflow verdict counts: reads of definitely-uninit
/// variables (the Error) and dead stores (the Warning).
fn verdicts(src: &str) -> (usize, usize) {
    let unit = parse(src).expect("source parses");
    let cfgs = Cfg::build_all(&unit);
    let uninit: usize = cfgs.iter().map(|c| use_before_init(c).len()).sum();
    let dead: usize = cfgs.iter().map(|c| dead_stores(c).len()).sum();
    (uninit, dead)
}

/// Every fingerprint-preserving transform keeps the dataflow verdicts:
/// the use-before-init count is exactly preserved, and a program with
/// no dead stores never acquires one.
#[test]
fn transforms_preserve_dataflow_verdicts() {
    let analyzer = Analyzer::new();
    Runner::new("transforms_preserve_dataflow_verdicts")
        .cases(48)
        .run(
            |rng| {
                (
                    rng.next_below(2000) as u64,
                    rng.next_below(2000) as u64,
                    rng.next_below(ChallengeId::all().len()),
                )
            },
            |&(style_seed, t_seed, ch_idx)| {
                let mut rng = Pcg64::new(style_seed);
                let style = AuthorStyle::sample(&mut rng);
                let src =
                    challenge(ch_idx).render_solution(&style, Pcg64::new(style_seed ^ 0xDF01));
                let pool = YearPool::calibrated(2018, 5);
                let gpt = Transformer::new(&pool);
                let mut t_rng = Pcg64::new(t_seed);
                let idx = pool.sample_index(&mut t_rng);
                let out = gpt.transform(&src, idx, &mut t_rng).expect("transforms");

                let (pre_uninit, pre_dead) = verdicts(&src);
                let (post_uninit, post_dead) = verdicts(&out);
                prop_assert_eq!(
                    pre_uninit,
                    post_uninit,
                    "use-before-init verdict changed:\n--- seed ---\n{}\n--- out ---\n{}",
                    src,
                    out
                );
                if pre_dead == 0 {
                    prop_assert_eq!(
                        post_dead,
                        0,
                        "transform invented a dead store:\n--- seed ---\n{}\n--- out ---\n{}",
                        src,
                        out
                    );
                }
                // The registered passes agree: no new error diagnostics.
                let pre = analyzer.analyze_source(&src).expect("seed parses");
                let post = analyzer.analyze_source(&out).expect("output parses");
                let fresh = new_errors(&pre, &post);
                prop_assert!(fresh.is_empty(), "new errors {:?}:\n{}", fresh, out);
                Ok(())
            },
        );
}

/// Over every pool seed (all nine challenges, pool-styled), a full
/// 50-step CT chain keeps the dataflow layer clean at every step: zero
/// uninitialized reads throughout, and no step invents a dead store
/// the seed did not have.
#[test]
fn every_pool_seed_keeps_dataflow_verdicts_through_ct_chains() {
    for (ci, &ch) in ChallengeId::all().iter().enumerate() {
        let year = [2017u32, 2018, 2019][ci % 3];
        let pool = YearPool::calibrated(year, 11);
        let gpt = Transformer::new(&pool);
        let seed_src = ch.render_solution(
            &pool.style(ci % pool.styles.len()).clone(),
            Pcg64::new(7000 + ci as u64),
        );
        let (seed_uninit, seed_dead) = verdicts(&seed_src);
        assert_eq!(seed_uninit, 0, "{ch:?}: generated seed reads uninit memory");

        let mut rng = Pcg64::seed_from(42, &["df-ct", &ci.to_string()]);
        let ct = run_ct(&gpt, &seed_src, 50, Origin::ChatGpt, &mut rng);
        assert_eq!(ct.len(), 50);
        for s in &ct {
            let (uninit, dead) = verdicts(&s.source);
            assert_eq!(
                uninit, 0,
                "{ch:?} step {}: uninitialized read appeared\n{}",
                s.step, s.source
            );
            if seed_dead == 0 {
                assert_eq!(
                    dead, 0,
                    "{ch:?} step {}: dead store appeared\n{}",
                    s.step, s.source
                );
            }
        }
    }
}

/// The dataflow family rides the per-item cache: whole pipelines built
/// with different worker counts must produce byte-identical feature
/// matrices (the `df.*` tail included) and identical node counters.
#[test]
fn cached_item_dataflow_is_worker_invariant() {
    use synthattr::core::config::{ExperimentConfig, Scale};
    use synthattr::core::pipeline::YearPipeline;

    let tiny = |workers: usize| {
        let mut cfg = ExperimentConfig::smoke();
        cfg.seed = 2;
        cfg.scale = Scale {
            authors: 6,
            challenges: 2,
            transforms: 4,
            n_trees: 4,
        };
        cfg.workers = Some(workers);
        cfg
    };
    let serial = YearPipeline::try_build(2018, &tiny(1)).unwrap();
    let wide = YearPipeline::try_build(2018, &tiny(4)).unwrap();
    assert_eq!(
        serial.human_features, wide.human_features,
        "human feature matrix depends on worker count"
    );
    assert_eq!(serial.transformed.len(), wide.transformed.len());
    for (a, b) in serial.transformed.iter().zip(&wide.transformed) {
        assert_eq!(a.features, b.features, "transformed features diverged");
    }
    assert_eq!(serial.frontend, wide.frontend, "node counters diverged");
    // Sanity: the configured extractor really carries the df. family.
    use synthattr::features::FeatureExtractor;
    let ex = FeatureExtractor::new(ExperimentConfig::smoke().features);
    assert!(ex.names().iter().any(|n| n.starts_with("df.")));
}
