//! End-to-end integration tests for `synthattr-serve`: a real server
//! on an ephemeral port, real TCP clients, and the load-bearing
//! invariant — served `/attribute` responses are **byte-identical** to
//! the offline pipeline's verdicts, at every worker count and client
//! concurrency in the matrix.

use std::collections::BTreeMap;
use std::net::SocketAddr;
use std::sync::atomic::{AtomicUsize, Ordering};

use synthattr::core::config::ExperimentConfig;
use synthattr::core::{year_oracle, ArtifactCache};
use synthattr::serve::client::{request, Client};
use synthattr::serve::limit::RateConfig;
use synthattr::serve::server::{attribution_body, RunningServer, ServeConfig, Server};

const YEAR: u32 = 2018;

/// A handful of distinct sources inside the supported C++ subset.
fn sources() -> Vec<String> {
    (0..6)
        .map(|i| {
            format!(
                "int helper{i}(int x) {{ int y = x * {m}; return y + {i}; }}\n\
                 int main() {{ int acc = 0; for (int i = 0; i < {n}; i = i + 1) {{ acc = acc + helper{i}(i); }} return acc; }}\n",
                m = i + 2,
                n = (i + 3) * 2,
            )
        })
        .collect()
}

fn serve_config() -> ServeConfig {
    let mut config = ServeConfig::smoke();
    config.years = vec![YEAR];
    config.rate = None; // the matrix would trip a realistic limiter by design
    config.preload = true; // train before the clients stampede
    config
}

fn spawn(workers: usize) -> RunningServer {
    let mut config = serve_config();
    config.workers = Some(workers);
    Server::bind("127.0.0.1:0", config)
        .expect("bind")
        .spawn()
        .expect("spawn")
}

/// The offline half of the byte-identity check: train the same oracle
/// the registry trains, featurize the same sources, serialize with the
/// same writer.
fn offline_expected(sources: &[String]) -> BTreeMap<String, String> {
    let oracle = year_oracle(YEAR, &ExperimentConfig::smoke()).expect("offline oracle");
    let mut cache = ArtifactCache::new();
    sources
        .iter()
        .map(|src| {
            let artifact = cache.intern(src);
            let features = artifact.features(oracle.extractor()).expect("featurize");
            let proba = oracle.forest().predict_proba(features);
            (src.clone(), attribution_body(YEAR, &proba))
        })
        .collect()
}

fn attribute(addr: SocketAddr, source: &str) -> String {
    let resp = request(
        addr,
        "POST",
        &format!("/attribute?year={YEAR}"),
        &[],
        source.as_bytes(),
    )
    .expect("attribute request");
    assert_eq!(resp.status, 200, "body: {}", resp.text());
    resp.text().to_string()
}

#[test]
fn served_attribution_is_byte_identical_to_the_offline_pipeline() {
    let sources = sources();
    let expected = offline_expected(&sources);

    // worker counts × client counts: batching, queueing, and cache
    // sharing change scheduling, never bytes.
    for workers in [1usize, 4] {
        let server = spawn(workers);
        let addr = server.addr();
        for clients in [1usize, 4] {
            let next = AtomicUsize::new(0);
            std::thread::scope(|scope| {
                for _ in 0..clients {
                    scope.spawn(|| {
                        let mut client = Client::connect(addr).expect("connect");
                        loop {
                            let i = next.fetch_add(1, Ordering::Relaxed);
                            // Each client walks the shared source list
                            // twice over, so identical sources arrive
                            // from different connections.
                            if i >= sources.len() * 2 {
                                return;
                            }
                            let src = &sources[i % sources.len()];
                            let resp = client
                                .request(
                                    "POST",
                                    &format!("/attribute?year={YEAR}"),
                                    &[],
                                    src.as_bytes(),
                                )
                                .expect("keep-alive attribute");
                            assert_eq!(resp.status, 200, "body: {}", resp.text());
                            assert_eq!(
                                resp.text(),
                                expected[src],
                                "workers={workers} clients={clients}: served bytes \
                                 diverged from the offline pipeline"
                            );
                        }
                    });
                }
            });
        }
        server.shutdown();
    }
}

#[test]
fn transform_chains_are_deterministic_across_server_instances() {
    let seed_code = "int main() { int value = 11; return value * 3; }";
    let run_one = || {
        let server = spawn(2);
        let resp = request(
            server.addr(),
            "POST",
            &format!("/transform?year={YEAR}&mode=ct&steps=3&seed=42"),
            &[],
            seed_code.as_bytes(),
        )
        .expect("transform request");
        assert_eq!(resp.status, 200, "body: {}", resp.text());
        let body = resp.text().to_string();
        server.shutdown();
        body
    };
    let first = run_one();
    let second = run_one();
    assert_eq!(
        first, second,
        "two fresh servers, same seed: same transformation chain"
    );
    assert!(first.contains("\"mode\":\"ct\""), "body: {first}");
}

#[test]
fn healthz_reflects_traffic_and_keep_alive_reuses_one_connection() {
    let server = spawn(2);
    let addr = server.addr();
    let sources = sources();

    // One keep-alive connection carries a whole conversation.
    let mut client = Client::connect(addr).expect("connect");
    for src in &sources {
        let resp = client
            .request(
                "POST",
                &format!("/attribute?year={YEAR}"),
                &[],
                src.as_bytes(),
            )
            .expect("keep-alive request");
        assert_eq!(resp.status, 200);
        assert_eq!(resp.header("connection"), Some("keep-alive"));
    }
    // Same source again: a shared-cache hit must not change the bytes.
    let repeat = attribute(addr, &sources[0]);
    assert_eq!(repeat, offline_expected(&sources[..1])[&sources[0]]);

    let health = client
        .request("GET", "/healthz", &[], b"")
        .expect("healthz");
    assert_eq!(health.status, 200);
    let text = health.text();
    assert!(text.contains("\"status\":\"ok\""), "body: {text}");
    assert!(
        text.contains(&format!("\"loaded\":[{YEAR}]")),
        "body: {text}"
    );
    assert!(text.contains("\"hits\":"), "cache stats present: {text}");
    // Connection-survivability gauges: this keep-alive connection is
    // open (and being driven) right now, nothing has been drained.
    assert!(text.contains("\"drain_state\":\"active\""), "body: {text}");
    assert!(text.contains("\"connections_open\":"), "body: {text}");
    assert!(text.contains("\"connections_parked\":"), "body: {text}");
    assert!(
        text.contains("\"connection_closes\":{\"peer_closed\":"),
        "body: {text}"
    );

    let stats = server.shutdown();
    assert!(stats.clean, "quiet shutdown must drain clean: {stats:?}");
    assert_eq!(stats.forced_closes, 0, "stats: {stats:?}");
}

#[test]
fn rate_limited_clients_get_429_and_recover_identity_isolation() {
    let mut config = serve_config();
    config.rate = Some(RateConfig {
        burst: 2,
        per_second: 0,
    });
    config.workers = Some(2);
    let server = Server::bind("127.0.0.1:0", config)
        .expect("bind")
        .spawn()
        .expect("spawn");
    let addr = server.addr();
    let src = &sources()[0];

    let mut statuses = Vec::new();
    for _ in 0..3 {
        let resp = request(
            addr,
            "POST",
            &format!("/attribute?year={YEAR}"),
            &[("X-Client-Id", "greedy")],
            src.as_bytes(),
        )
        .expect("limited request");
        statuses.push(resp.status);
    }
    assert_eq!(statuses, vec![200, 200, 429]);

    // A distinct identity still has its full burst.
    let resp = request(
        addr,
        "POST",
        &format!("/attribute?year={YEAR}"),
        &[("X-Client-Id", "patient")],
        src.as_bytes(),
    )
    .expect("other identity");
    assert_eq!(resp.status, 200);
    server.shutdown();
}

#[test]
fn unknown_routes_and_bad_requests_fail_clean_over_tcp() {
    let server = spawn(1);
    let addr = server.addr();
    assert_eq!(request(addr, "GET", "/", &[], b"").unwrap().status, 404);
    assert_eq!(
        request(addr, "DELETE", "/attribute", &[], b"")
            .unwrap()
            .status,
        405
    );
    assert_eq!(
        request(addr, "POST", "/attribute?year=1848", &[], b"x")
            .unwrap()
            .status,
        404,
        "out-of-registry year"
    );
    assert_eq!(
        request(addr, "POST", "/attribute?year=2018", &[], b"\xff\xfe")
            .unwrap()
            .status,
        400,
        "non-utf8 body"
    );
    // The server survives all of that and still serves.
    let ok = attribute(addr, &sources()[0]);
    assert!(ok.contains("\"year\":2018"));
    server.shutdown();
}
