//! End-to-end integration tests: miniature runs of every table
//! pipeline asserting the paper's *shape* relations (DESIGN.md §4).

use synthattr::core::config::ExperimentConfig;
use synthattr::core::experiments::{attribution, binary, datasets, diversity, figures, styles};
use synthattr::core::pipeline::{Setting, YearPipeline};

fn pipelines() -> Vec<YearPipeline> {
    let cfg = ExperimentConfig::smoke();
    [2017, 2018, 2019]
        .iter()
        .map(|&y| YearPipeline::build(y, &cfg))
        .collect()
}

#[test]
fn tables_1_to_3_report_consistent_dataset_sizes() {
    let ps = pipelines();
    let cfg = ExperimentConfig::smoke().scale;

    let t1 = datasets::table_i(&ps);
    assert_eq!(t1.len(), 3);
    for row in &t1 {
        assert_eq!(row.total, cfg.authors * cfg.challenges);
    }

    let t2 = datasets::table_ii(&ps);
    for row in &t2 {
        assert_eq!(row.per_setting, [cfg.transforms; 4]);
        assert_eq!(row.total, 4 * cfg.transforms * cfg.challenges);
    }

    let t3 = datasets::table_iii(&ps);
    let combined = t3.last().unwrap();
    assert_eq!(combined.name, "Combined");
    assert_eq!(
        combined.total,
        combined.challenges * combined.codes_per_challenge * 2
    );
}

#[test]
fn table4_shape_nct_exceeds_ct_and_styles_are_bounded() {
    let ps = pipelines();
    let mut nct_wins = 0usize;
    let mut comparisons = 0usize;
    for p in &ps {
        let r = styles::run(p);
        // Styles never exceed the sample count and at least one style
        // always appears.
        assert!(r.max_styles >= 1);
        assert!(r.max_styles <= p.config.scale.transforms);
        // Paper shape: NCT >= CT on average for both seed kinds.
        for (n, c) in [
            (Setting::GptNct, Setting::GptCt),
            (Setting::HumanNct, Setting::HumanCt),
        ] {
            comparisons += 1;
            if r.averages[n.index()] >= r.averages[c.index()] {
                nct_wins += 1;
            }
        }
    }
    assert!(
        nct_wins * 3 >= comparisons * 2,
        "NCT should out-diversify CT in most settings: {nct_wins}/{comparisons}"
    );
}

#[test]
fn diversity_skew_orders_2017_above_2018() {
    let ps = pipelines();
    let d17 = diversity::run(&ps[0]);
    let d18 = diversity::run(&ps[1]);
    assert!(
        d17.top_share() > d18.top_share(),
        "2017 ({:.2}) must be more skewed than 2018 ({:.2})",
        d17.top_share(),
        d18.top_share()
    );
    // Histograms cover the whole transformed set.
    assert_eq!(d17.total, ps[0].transformed.len());
}

#[test]
fn attribution_feature_based_dominates_naive() {
    let ps = pipelines();
    let mut fb_total = 0.0;
    let mut naive_total = 0.0;
    for p in &ps {
        let naive = attribution::run(p, attribution::Grouping::Naive);
        let fb = attribution::run(p, attribution::Grouping::FeatureBased);
        naive_total += naive.chatgpt_pct();
        fb_total += fb.chatgpt_pct();
        // 205-class accuracy stays in a sane band at smoke scale.
        assert!(naive.avg_accuracy() > 0.3, "{}", naive.avg_accuracy());
        assert!(fb.avg_accuracy() > 0.3, "{}", fb.avg_accuracy());
        // The feature-based set is style-pure and larger than naive's
        // when a style dominates.
        assert!(fb.set_size >= 1);
    }
    assert!(
        fb_total >= naive_total,
        "feature-based ({fb_total:.2}) must not lose to naive ({naive_total:.2}) overall"
    );
}

#[test]
fn binary_classification_beats_chance_soundly() {
    let ps = pipelines();
    for p in &ps {
        let r = binary::run_individual(p);
        assert!(
            r.avg() > 0.7,
            "GCJ {} binary accuracy too low: {:.3}",
            p.year,
            r.avg()
        );
    }
    let combined = binary::run_combined(&ps);
    assert!(
        combined.all_avg() > 0.7,
        "combined accuracy {:.3}",
        combined.all_avg()
    );
    // The All column is the mean of the cells.
    let cells: Vec<f64> = combined.cells.iter().flatten().copied().collect();
    let mean = cells.iter().sum::<f64>() / cells.len() as f64;
    assert!((combined.all_avg() - mean).abs() < 1e-12);
}

#[test]
fn figures_regenerate_and_parse() {
    let cfg = ExperimentConfig::smoke();
    let p = YearPipeline::build(2018, &cfg);
    assert!(figures::figure1(&p).contains("Figure 1"));
    assert!(figures::figure2(2018, cfg.seed, 3).contains("CT"));
    let f3 = figures::figure3(cfg.seed);
    synthattr::lang::parse(&f3).unwrap();
    for f in figures::figure4(2018, cfg.seed)
        .iter()
        .chain(figures::figure5(2018, cfg.seed).iter())
    {
        synthattr::lang::parse(f).unwrap();
    }
}

#[test]
fn parallel_pipeline_build_is_worker_invariant() {
    // The satellite guarantee behind `repro`'s parallel
    // `all_pipelines`: year pipelines fork their seed hierarchies
    // before dispatch and the pool preserves input order, so building
    // the three years on 1 or 8 workers yields identical results.
    use synthattr::util::pool;
    let cfg = ExperimentConfig::smoke();
    let build_all = |workers: usize| {
        pool::parallel_map_workers(workers, vec![2017u32, 2018, 2019], |y| {
            let p = YearPipeline::build(y, &cfg);
            (
                p.year,
                p.all_labels(),
                p.human_features.len(),
                p.seed_author,
            )
        })
    };
    let serial = build_all(1);
    let parallel = build_all(8);
    assert_eq!(serial, parallel);
    assert_eq!(serial.len(), 3);
}

#[test]
fn whole_run_is_deterministic() {
    let cfg = ExperimentConfig::smoke();
    let a = YearPipeline::build(2017, &cfg);
    let b = YearPipeline::build(2017, &cfg);
    assert_eq!(a.all_labels(), b.all_labels());
    let ra = attribution::run(&a, attribution::Grouping::FeatureBased);
    let rb = attribution::run(&b, attribution::Grouping::FeatureBased);
    assert_eq!(ra.fold_accuracy, rb.fold_accuracy);
    assert_eq!(ra.chatgpt_ok, rb.chatgpt_ok);
}
