//! Chaos at the socket: live-TCP proof of the connection-survivability
//! claims in `synthattr-serve`.
//!
//! Hostile traffic comes from the fault layer's seeded
//! [`synthattr::faults::TrafficProfile`] — slow-loris header writers,
//! mid-request stallers, byte-at-a-time drippers, abrupt disconnects —
//! replayed over real sockets against a real server. The headline
//! claim, from the connection-rotation design: **hostile connections
//! hold sockets, never threads**, so with 64 slow-loris connections
//! open a legitimate `/attribute` client's p95 stays within 5× its
//! unloaded p95 and no request times out.

use std::io::Read;
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::{Duration, Instant};

use synthattr::faults::{HostileKind, ScriptEnd, TrafficProfile};
use synthattr::serve::client::Client;
use synthattr::serve::server::{RunningServer, ServeConfig, Server};
use synthattr::serve::ConnPolicy;

const YEAR: u32 = 2018;
const SOURCE: &str = "int main() { int acc = 0; for (int i = 0; i < 6; i = i + 1) { acc = acc + i * 3; } return acc; }\n";

/// The legitimate request the hostile scripts mimic or mangle.
fn legit_request() -> Vec<u8> {
    format!(
        "POST /attribute?year={YEAR} HTTP/1.1\r\nHost: synthattr\r\nContent-Length: {}\r\n\r\n{SOURCE}",
        SOURCE.len()
    )
    .into_bytes()
}

fn spawn_with(conn: ConnPolicy, preload: bool) -> RunningServer {
    let mut config = ServeConfig::smoke();
    config.years = vec![YEAR];
    config.workers = Some(2);
    config.rate = None;
    config.preload = preload;
    config.conn = conn;
    Server::bind("127.0.0.1:0", config)
        .expect("bind")
        .spawn()
        .expect("spawn")
}

/// Reads the named close counter out of a `/healthz` body.
fn close_counter(health: &str, cause: &str) -> u64 {
    let key = format!("\"{cause}\":");
    let closes = health
        .split("\"connection_closes\":{")
        .nth(1)
        .unwrap_or_default();
    closes
        .split(&key)
        .nth(1)
        .and_then(|rest| {
            let digits: String = rest.chars().take_while(char::is_ascii_digit).collect();
            digits.parse().ok()
        })
        .unwrap_or(0)
}

fn healthz_text(addr: SocketAddr) -> String {
    let resp = synthattr::serve::client::request(addr, "GET", "/healthz", &[], b"")
        .expect("healthz under chaos");
    assert_eq!(resp.status, 200);
    resp.text().to_string()
}

/// p95 of a latency sample (nearest-rank).
fn p95(samples: &mut [Duration]) -> Duration {
    samples.sort_unstable();
    samples[(samples.len() * 95).div_ceil(100).saturating_sub(1)]
}

/// Runs `n` keep-alive `/attribute` requests and returns the latency
/// of each. Panics on any failure or timeout — that's the point.
fn measure_attribute(addr: SocketAddr, timeout: Duration, n: usize) -> Vec<Duration> {
    let mut client = Client::connect_with_timeout(addr, timeout).expect("connect");
    let target = format!("/attribute?year={YEAR}");
    (0..n)
        .map(|i| {
            let started = Instant::now();
            let resp = client
                .request("POST", &target, &[], SOURCE.as_bytes())
                .unwrap_or_else(|e| panic!("legit request {i} failed under load: {e}"));
            assert_eq!(resp.status, 200, "body: {}", resp.text());
            started.elapsed()
        })
        .collect()
}

/// The acceptance gate: 64 slow-loris connections held open, and the
/// legitimate client's p95 stays within 5× its unloaded p95 (with a
/// small absolute floor so scheduler noise on tiny baselines can't
/// flake the ratio). Afterwards every loris is cut by the header
/// deadline — visible in the `header_stall` close counter — so the
/// sockets are reclaimed too.
#[test]
fn legit_attribute_p95_stays_bounded_under_64_slow_loris() {
    // Header deadline long enough that all 64 loris are still open
    // while we measure, short enough that the cut is observable fast.
    let policy = ConnPolicy {
        header_deadline_ms: 2_500,
        ..ConnPolicy::default()
    };
    let timeout = policy.client_timeout();
    let server = spawn_with(policy, true);
    let addr = server.addr();

    // Unloaded baseline, after a short warmup.
    measure_attribute(addr, timeout, 5);
    let mut unloaded = measure_attribute(addr, timeout, 60);
    let unloaded_p95 = p95(&mut unloaded);

    // 64 hostile connections, each replaying its own seeded script.
    let profile = TrafficProfile {
        loris_pause_ms: 400,
        ..TrafficProfile::new(0xC4A05)
    };
    let request = legit_request();
    let open = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for i in 0..64 {
            let script = profile.script(HostileKind::SlowLoris, i, &request);
            let open = &open;
            scope.spawn(move || {
                let mut stream = TcpStream::connect(addr).expect("loris connect");
                open.fetch_add(1, Ordering::SeqCst);
                // The server cutting us mid-script is the expected
                // outcome; every loris ends in a write error.
                let _ = script.play(&mut stream, |ms| {
                    std::thread::sleep(Duration::from_millis(ms));
                });
            });
        }

        // Wait until the whole fleet is connected, then measure while
        // it is still inside its header deadline.
        let armed = Instant::now();
        while open.load(Ordering::SeqCst) < 64 {
            assert!(
                armed.elapsed() < Duration::from_secs(10),
                "loris fleet failed to connect"
            );
            std::thread::sleep(Duration::from_millis(1));
        }
        let mut loaded = measure_attribute(addr, timeout, 60);
        let loaded_p95 = p95(&mut loaded);

        let floor = Duration::from_millis(5);
        let bound = unloaded_p95.max(floor) * 5;
        assert!(
            loaded_p95 <= bound,
            "loaded p95 {loaded_p95:?} exceeds 5x unloaded p95 {unloaded_p95:?} (bound {bound:?})"
        );

        // The loris are eventually all cut by the header deadline.
        let deadline = Instant::now() + Duration::from_secs(20);
        loop {
            let cut = close_counter(&healthz_text(addr), "header_stall");
            if cut >= 64 {
                break;
            }
            assert!(
                Instant::now() < deadline,
                "only {cut}/64 loris cut by the header deadline"
            );
            std::thread::sleep(Duration::from_millis(200));
        }
    });

    let health = healthz_text(addr);
    assert!(health.contains("\"connections_opened\":"), "body: {health}");
    server.shutdown();
}

/// A byte dripper is slow, not hostile: it completes its request under
/// the header deadline and must be served, not cut.
#[test]
fn byte_drippers_are_legitimate_clients_and_get_served() {
    let server = spawn_with(ConnPolicy::default(), false);
    let profile = TrafficProfile::new(0xD21);
    let request = b"GET /healthz HTTP/1.1\r\nHost: synthattr\r\nConnection: close\r\n\r\n";
    for index in 0..3 {
        let script = profile.script(HostileKind::ByteDripper, index, request);
        let mut stream = TcpStream::connect(server.addr()).expect("connect");
        stream
            .set_read_timeout(Some(Duration::from_secs(10)))
            .expect("timeout");
        let end = script
            .play(&mut stream, |ms| {
                std::thread::sleep(Duration::from_millis(ms));
            })
            .expect("a dripper must never be cut mid-send");
        assert_eq!(end, ScriptEnd::Done);
        let mut reply = Vec::new();
        stream.read_to_end(&mut reply).expect("read response");
        let text = String::from_utf8_lossy(&reply);
        assert!(
            text.starts_with("HTTP/1.1 200"),
            "dripper {index} got: {text:.80}"
        );
    }
    server.shutdown();
}

/// A mid-request staller (complete head, body never finishes) is cut
/// by the body progress deadline, with a best-effort 408 on the way
/// out, and shows up in the `body_stall` close counter.
#[test]
fn mid_request_stallers_are_cut_by_the_body_deadline() {
    let policy = ConnPolicy {
        body_deadline_ms: 200,
        ..ConnPolicy::default()
    };
    let server = spawn_with(policy, false);
    let profile = TrafficProfile::new(0x57A11);
    let request = legit_request();
    let script = profile.script(HostileKind::MidRequestStall, 0, &request);

    let started = Instant::now();
    let mut stream = TcpStream::connect(server.addr()).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .expect("timeout");
    // Replay the head+partial-body, but read instead of honoring the
    // terminal 10 s stall — the server must cut us near 200 ms.
    let _ = script.play(&mut stream, |ms| {
        if ms < 1_000 {
            std::thread::sleep(Duration::from_millis(ms));
        }
    });
    let mut reply = Vec::new();
    let _ = stream.read_to_end(&mut reply);
    let waited = started.elapsed();
    assert!(
        waited < Duration::from_secs(5),
        "staller must be cut near the 200 ms body deadline, waited {waited:?}"
    );
    if !reply.is_empty() {
        assert!(
            String::from_utf8_lossy(&reply).starts_with("HTTP/1.1 408"),
            "got: {}",
            String::from_utf8_lossy(&reply)
        );
    }
    assert!(close_counter(&healthz_text(server.addr()), "body_stall") >= 1);
    server.shutdown();
}

/// A mixed fleet — loris, stallers, drippers, resets — thrown at the
/// server while a legitimate client keeps working. Abrupt disconnects
/// mid-request must never panic a worker or wedge the server.
#[test]
fn mixed_hostile_fleet_leaves_the_server_healthy() {
    let policy = ConnPolicy {
        header_deadline_ms: 300,
        body_deadline_ms: 300,
        ..ConnPolicy::default()
    };
    let server = spawn_with(policy, false);
    let addr = server.addr();
    let profile = TrafficProfile {
        loris_pause_ms: 100,
        stall_ms: 1_500,
        ..TrafficProfile::new(0xF1EE7)
    };
    // A bodyless request keeps the fleet's honest drippers on the
    // untrained-model-free path; stallers degrade to header stalls.
    let request = b"GET /healthz HTTP/1.1\r\nHost: synthattr\r\nConnection: close\r\n\r\n".to_vec();

    std::thread::scope(|scope| {
        for script in profile.fleet(24, &request) {
            scope.spawn(move || {
                let mut stream = match TcpStream::connect(addr) {
                    Ok(s) => s,
                    Err(_) => return,
                };
                match script.play(&mut stream, |ms| {
                    std::thread::sleep(Duration::from_millis(ms));
                }) {
                    // A plain drop mid-request: the kernel turns the
                    // unread/unflushed state into a reset or an EOF
                    // mid-parse; either way the worker must survive.
                    Ok(ScriptEnd::Reset) | Ok(ScriptEnd::Done) | Err(_) => drop(stream),
                }
            });
        }
        // Legit traffic flows throughout the assault.
        for _ in 0..20 {
            let health = healthz_text(addr);
            assert!(health.contains("\"drain_state\":\"active\""), "{health}");
            std::thread::sleep(Duration::from_millis(50));
        }
    });

    // Every hostile connection is eventually closed and accounted —
    // parked sockets are discovered on the next rotation sweep, so
    // give the counters a moment to converge.
    let causes = [
        "peer_closed",
        "client_close",
        "idle_budget",
        "header_stall",
        "body_stall",
        "write_stall",
        "max_requests",
        "bad_request",
        "hostile_reset",
    ];
    let deadline = Instant::now() + Duration::from_secs(20);
    loop {
        let health = healthz_text(addr);
        let total: u64 = causes.iter().map(|c| close_counter(&health, c)).sum();
        if total >= 24 {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "want >= 24 accounted closes, got {total}: {health}"
        );
        std::thread::sleep(Duration::from_millis(200));
    }
    server.shutdown();
}
